//! # aft — a fault-tolerance shim for serverless computing, in Rust
//!
//! This is the facade crate of a from-scratch reproduction of
//! *"A Fault-Tolerance Shim for Serverless Computing"* (Sreekanti et al.,
//! EuroSys 2020). It re-exports the workspace's crates so applications and
//! the examples can depend on a single crate:
//!
//! * [`core`] (`aft-core`) — the AFT shim node itself: the transactional
//!   key-value API of Table 1, the write-ordering commit protocol, the read
//!   atomic isolation protocol (Algorithm 1), supersedence (Algorithm 2),
//!   caches, and local garbage collection.
//! * [`storage`] (`aft-storage`) — the storage-engine abstraction plus
//!   simulated S3, DynamoDB (with transaction mode), and Redis-cluster
//!   backends with calibrated latency models.
//! * [`cluster`] (`aft-cluster`) — multi-node deployments: routing, commit
//!   multicast with pruning, the fault manager, and global garbage
//!   collection.
//! * [`net`] (`aft-net`) — the service layer: a TCP wire-protocol server
//!   fronting a cluster, and the pooled, pipelined client SDK that speaks
//!   it (with seeded connection-fault injection), so AFT runs as a real
//!   networked service rather than only as a library.
//! * [`faas`] (`aft-faas`) — the simulated FaaS platform (function
//!   compositions, retries, failure injection, concurrency limits).
//! * [`workload`] (`aft-workload`) — workload generation, baseline drivers,
//!   anomaly detection, and the closed-loop experiment runner.
//! * [`chaos`] (`aft-chaos`) — the unified fault-schedule vocabulary: one
//!   seeded, order-independent [`ChaosSpec`](aft_chaos::ChaosSpec) drives
//!   storage faults, connection faults, platform failures, and node kills
//!   in the same trial.
//! * [`types`] (`aft-types`) — shared identifiers, records, codec, clocks.
//!
//! ## Quickstart
//!
//! ```
//! use aft::core::{AftNode, NodeConfig};
//! use aft::storage::InMemoryStore;
//! use aft::types::Key;
//! use bytes::Bytes;
//!
//! // An AFT node over any durable key-value store (here: in-memory).
//! let node = AftNode::new(NodeConfig::default(), InMemoryStore::shared()).unwrap();
//!
//! // A logical request: buffered writes, committed atomically.
//! let txn = node.start_transaction();
//! node.put(&txn, Key::new("cart:alice"), Bytes::from_static(b"3 items")).unwrap();
//! node.put(&txn, Key::new("total:alice"), Bytes::from_static(b"$42")).unwrap();
//! node.commit(&txn).unwrap();
//!
//! // Later requests see either all of the request's writes or none of them.
//! let reader = node.start_transaction();
//! assert!(node.get(&reader, &Key::new("cart:alice")).unwrap().is_some());
//! assert!(node.get(&reader, &Key::new("total:alice")).unwrap().is_some());
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios (shopping cart over
//! a simulated FaaS platform, a social timeline, failure injection and
//! recovery) and the `aft-bench` crate for the full reproduction of the
//! paper's evaluation.

pub use aft_chaos as chaos;
pub use aft_cluster as cluster;
pub use aft_core as core;
pub use aft_faas as faas;
pub use aft_net as net;
pub use aft_storage as storage;
pub use aft_types as types;
pub use aft_workload as workload;
