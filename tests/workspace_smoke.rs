//! Workspace smoke test: the facade crate's re-exports compose.
//!
//! This is deliberately shallow — deeper protocol properties live in the
//! proptest suites — but it exercises the public API surface end-to-end
//! exactly the way a downstream user of the `aft` crate would: open a node
//! over the in-memory backend, run a transaction through it, and observe
//! read-your-writes, commit atomicity, and cluster/faas/workload re-exports
//! resolving through `aft::*` paths alone.

use aft::cluster::{Cluster, ClusterConfig};
use aft::core::{AftNode, NodeConfig};
use aft::storage::InMemoryStore;
use aft::types::clock::TickingClock;
use aft::types::Key;
use bytes::Bytes;

#[test]
fn facade_node_round_trip_with_read_your_writes() {
    // Open a node over the in-memory backend through facade paths only.
    let node = AftNode::new(NodeConfig::default(), InMemoryStore::shared())
        .expect("facade node construction");

    // Begin a transaction, buffer a write.
    let txn = node.start_transaction();
    let key = Key::new("smoke:cart");
    let value = Bytes::from_static(b"3 items");
    node.put(&txn, key.clone(), value.clone()).expect("put");

    // Read-your-writes: the uncommitted write is visible inside the
    // transaction that buffered it...
    let seen = node.get(&txn, &key).expect("get inside txn");
    assert_eq!(seen, Some(value.clone()), "read-your-writes through facade");

    // ...but not to a concurrent transaction.
    let other = node.start_transaction();
    let hidden = node.get(&other, &key).expect("get from other txn");
    assert_eq!(hidden, None, "uncommitted data must stay invisible");

    // Commit, then a fresh transaction observes the write.
    node.commit(&txn).expect("commit");
    let fresh = node.start_transaction();
    let observed = node.get(&fresh, &key).expect("get after commit");
    assert_eq!(
        observed,
        Some(value),
        "committed write visible after commit"
    );
}

#[test]
fn facade_cluster_and_types_compose() {
    // The cluster layer, clock, and storage compose through facade paths.
    let cluster = Cluster::with_clock(
        ClusterConfig {
            initial_nodes: 2,
            ..ClusterConfig::default()
        },
        InMemoryStore::shared(),
        TickingClock::shared(1, 1),
    )
    .expect("facade cluster construction");

    let nodes = cluster.active_nodes();
    assert_eq!(nodes.len(), 2);

    // Commit through one node, then any node serves the value after a
    // maintenance round.
    let writer = &nodes[0];
    let txn = writer.start_transaction();
    let key = Key::new("smoke:cluster");
    writer
        .put(&txn, key.clone(), Bytes::from_static(b"v1"))
        .expect("put");
    writer.commit(&txn).expect("commit");
    cluster.run_maintenance_round().expect("maintenance");

    for node in cluster.active_nodes() {
        let txn = node.start_transaction();
        let got = node.get(&txn, &key).expect("read");
        assert_eq!(
            got,
            Some(Bytes::from_static(b"v1")),
            "node {} must serve the committed value",
            node.node_id()
        );
    }
}

#[test]
fn facade_module_surface_is_complete() {
    // One symbol per re-exported module: if any of these stop resolving the
    // facade lost part of its surface.
    let _config: aft::core::NodeConfig = aft::core::NodeConfig::default();
    let _cluster_config: aft::cluster::ClusterConfig = aft::cluster::ClusterConfig::default();
    let _retry: aft::faas::RetryPolicy = aft::faas::RetryPolicy::default();
    let _workload: aft::workload::WorkloadConfig = aft::workload::WorkloadConfig::standard();
    let _key: aft::types::Key = aft::types::Key::new("k");
    let _store = aft::storage::InMemoryStore::shared();
}
