//! Property-based integration test: random multi-node histories with
//! interleaved maintenance (broadcast, local GC, global GC, node replacement)
//! preserve AFT's guarantees.

use std::collections::HashMap;

use aft::cluster::{Cluster, ClusterConfig};
use aft::core::NodeConfig;
use aft::storage::InMemoryStore;
use aft::types::clock::TickingClock;
use aft::types::Key;
use bytes::Bytes;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Commit a transaction writing `keys` (by index) through node `node % active`.
    Commit { node: usize, keys: Vec<u8> },
    /// Run one maintenance round (broadcast + GC).
    Maintain,
    /// Kill one node and immediately replace it.
    FailOver(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..4usize, proptest::collection::vec(0..6u8, 1..4))
            .prop_map(|(node, keys)| Op::Commit { node, keys }),
        2 => Just(Op::Maintain),
        1 => (0..4usize).prop_map(Op::FailOver),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_cluster_histories_never_lose_committed_data(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let cluster = Cluster::with_clock(
            ClusterConfig {
                initial_nodes: 3,
                node_template: NodeConfig::default(),
                replacement_delay: std::time::Duration::ZERO,
                ..ClusterConfig::default()
            },
            InMemoryStore::shared(),
            TickingClock::shared(1, 1),
        )
        .unwrap();

        // The latest committed value per key, in commit order (single-threaded
        // history, so "last committed" is well defined).
        let mut latest: HashMap<Key, Bytes> = HashMap::new();
        let mut counter = 0u64;

        for op in ops {
            match op {
                Op::Commit { node, keys } => {
                    let active = cluster.active_nodes();
                    let node = &active[node % active.len()];
                    let txn = node.start_transaction();
                    let mut writes = Vec::new();
                    for k in keys {
                        counter += 1;
                        let key = Key::new(format!("key-{k}"));
                        let value = Bytes::from(format!("value-{counter}"));
                        node.put(&txn, key.clone(), value.clone()).unwrap();
                        writes.push((key, value));
                    }
                    node.commit(&txn).unwrap();
                    for (key, value) in writes {
                        latest.insert(key, value);
                    }
                }
                Op::Maintain => {
                    cluster.run_maintenance_round().unwrap();
                }
                Op::FailOver(index) => {
                    let active = cluster.active_nodes();
                    let victim = active[index % active.len()].node_id().to_owned();
                    cluster.kill_node(&victim);
                    cluster.replace_failed_nodes().unwrap();
                }
            }
        }

        // After a final maintenance round, every node serves the latest
        // committed value of every key.
        cluster.run_maintenance_round().unwrap();
        for node in cluster.active_nodes() {
            let txn = node.start_transaction();
            for (key, expected) in &latest {
                let got = node.get(&txn, key).unwrap();
                prop_assert_eq!(
                    got.as_ref(),
                    Some(expected),
                    "node {} lost the latest value of {}",
                    node.node_id(),
                    key
                );
            }
            node.commit(&txn).unwrap();
        }

        // Every key with a committed value still has at least one live data
        // version in storage (garbage collection may remove superseded
        // versions but never the newest one).
        for key in latest.keys() {
            let versions = cluster
                .storage()
                .list_prefix(&format!("data/{key}/"))
                .unwrap();
            prop_assert!(!versions.is_empty(), "no surviving data version for {}", key);
        }
    }
}
