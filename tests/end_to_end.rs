//! Cross-crate integration tests: the full stack (FaaS platform → AFT cluster
//! → simulated storage) exercised the way the paper's evaluation uses it.

use std::sync::Arc;

use aft::chaos::FaasChaos;
use aft::cluster::{Cluster, ClusterConfig};
use aft::core::NodeConfig;
use aft::faas::{FaasPlatform, PlatformConfig, RetryPolicy};
use aft::storage::{BackendConfig, BackendKind};
use aft::types::clock::TickingClock;
use aft::types::Key;
use aft::workload::{
    run_closed_loop, AftDriver, DynamoTxnDriver, PlainDriver, RunConfig, WorkloadConfig,
};
use bytes::Bytes;

fn small_workload() -> WorkloadConfig {
    WorkloadConfig::standard()
        .with_keys(64)
        .with_value_size(256)
}

fn test_cluster(nodes: usize) -> Arc<Cluster> {
    Cluster::with_clock(
        ClusterConfig {
            initial_nodes: nodes,
            node_template: NodeConfig::default(),
            replacement_delay: std::time::Duration::ZERO,
            ..ClusterConfig::default()
        },
        aft::storage::make_backend(BackendConfig::test(BackendKind::DynamoDb)),
        TickingClock::shared(1, 1),
    )
    .unwrap()
}

#[test]
fn aft_requests_over_every_backend_are_anomaly_free() {
    for kind in [BackendKind::S3, BackendKind::DynamoDb, BackendKind::Redis] {
        let storage = aft::storage::make_backend(BackendConfig::test(kind));
        let node = aft::core::AftNode::new(NodeConfig::default(), storage).unwrap();
        let driver = AftDriver::single_node(
            node,
            FaasPlatform::new(PlatformConfig::test()),
            RetryPolicy::with_attempts(5),
        );
        let result = run_closed_loop(
            &driver,
            &RunConfig::new(small_workload())
                .with_clients(4)
                .with_requests(30),
        )
        .unwrap();
        assert_eq!(result.completed, 120, "backend {kind:?}");
        assert_eq!(result.anomalies.ryw_transactions, 0, "backend {kind:?}");
        assert_eq!(result.anomalies.fr_transactions, 0, "backend {kind:?}");
    }
}

#[test]
fn clustered_aft_keeps_read_atomicity_with_background_maintenance() {
    let cluster = test_cluster(3);
    cluster.start_background();
    let driver = AftDriver::clustered(
        Arc::clone(&cluster),
        FaasPlatform::new(PlatformConfig::test()),
        RetryPolicy::with_attempts(8),
    );
    let result = run_closed_loop(
        &driver,
        &RunConfig::new(small_workload().with_zipf(1.5))
            .with_clients(6)
            .with_requests(50),
    )
    .unwrap();
    cluster.shutdown();

    assert_eq!(result.completed + result.failed, 300);
    assert_eq!(result.anomalies.ryw_transactions, 0);
    assert_eq!(result.anomalies.fr_transactions, 0);
    // Every committed transaction has a durable commit record. GC deletes
    // metadata per node (so the sum across nodes can exceed the number of
    // committed transactions once the clock-paced maintenance loop free-runs
    // on a virtual clock); saturate rather than underflow.
    let commit_records = cluster.storage().list_prefix("commit/").unwrap().len() as u64;
    let lower_bound = cluster
        .total_committed()
        .saturating_sub(cluster.total_gc_deleted());
    assert!(commit_records >= lower_bound);
}

#[test]
fn injected_function_failures_never_leak_partial_state_through_aft() {
    let cluster = test_cluster(2);
    let platform = FaasPlatform::new(PlatformConfig::test().with_chaos(FaasChaos::uniform(0.35)));
    let driver = AftDriver::clustered(
        Arc::clone(&cluster),
        platform,
        RetryPolicy::with_attempts(15),
    );
    let result = run_closed_loop(
        &driver,
        &RunConfig::new(small_workload())
            .with_clients(4)
            .with_requests(50),
    )
    .unwrap();

    // Despite heavy failure injection nearly every request eventually
    // completes (retries), and none observes an anomaly.
    assert!(result.completed >= 190, "completed {}", result.completed);
    assert_eq!(result.anomalies.ryw_transactions, 0);
    assert_eq!(result.anomalies.fr_transactions, 0);

    // No dangling in-flight transactions remain on any node.
    for node in cluster.active_nodes() {
        assert_eq!(node.in_flight(), 0, "node {}", node.node_id());
    }
}

#[test]
fn plain_baseline_shows_anomalies_under_contention_but_aft_does_not() {
    // The Table 2 comparison in miniature: a hot key space hammered by many
    // clients.
    let contended = WorkloadConfig::standard()
        .with_keys(4)
        .with_zipf(2.0)
        .with_value_size(128);

    // Whether the racing clients actually interleave badly is up to the
    // scheduler: on a loaded machine (e.g. CI running many test binaries at
    // once) a run can finish with zero anomalies. Retry a few times — one
    // anomalous run is all the comparison needs — so the assertion tests the
    // baseline's lack of a guarantee, not one scheduler interleaving.
    let mut plain_result = None;
    for _ in 0..5 {
        let plain = PlainDriver::new(
            aft::storage::make_backend(BackendConfig::test(BackendKind::DynamoDb)),
            FaasPlatform::new(PlatformConfig::test()),
            RetryPolicy::with_attempts(3),
        );
        let result = run_closed_loop(
            &plain,
            &RunConfig::new(contended.clone())
                .with_clients(8)
                .with_requests(100),
        )
        .unwrap();
        let anomalous = result.anomalies.ryw_transactions + result.anomalies.fr_transactions > 0;
        plain_result = Some(result);
        if anomalous {
            break;
        }
    }
    let plain_result = plain_result.expect("at least one plain run");

    let node = aft::core::AftNode::new(
        NodeConfig::default(),
        aft::storage::make_backend(BackendConfig::test(BackendKind::DynamoDb)),
    )
    .unwrap();
    let aft = AftDriver::single_node(
        node,
        FaasPlatform::new(PlatformConfig::test()),
        RetryPolicy::with_attempts(8),
    );
    let aft_result = run_closed_loop(
        &aft,
        &RunConfig::new(contended).with_clients(8).with_requests(100),
    )
    .unwrap();

    assert!(
        plain_result.anomalies.ryw_transactions + plain_result.anomalies.fr_transactions > 0,
        "plain storage under contention should show anomalies"
    );
    assert_eq!(aft_result.anomalies.ryw_transactions, 0);
    assert_eq!(aft_result.anomalies.fr_transactions, 0);
}

#[test]
fn dynamo_transaction_mode_eliminates_ryw_but_not_fractured_reads() {
    // §6.1.2: grouping all writes into one TransactWriteItems call removes
    // read-your-writes anomalies by construction; reads still span two
    // transactions so fractured reads remain possible. We assert the RYW half
    // (deterministic) and merely run the FR half (statistical).
    let table = aft::storage::SimDynamo::with_profile(
        aft::storage::ServiceProfile::zero(),
        aft::storage::LatencyModel::disabled(),
        9,
    );
    let driver = DynamoTxnDriver::new(
        table.transaction_mode(),
        FaasPlatform::new(PlatformConfig::test()),
        RetryPolicy::with_attempts(10),
    );
    let result = run_closed_loop(
        &driver,
        &RunConfig::new(
            WorkloadConfig::standard()
                .with_keys(4)
                .with_zipf(2.0)
                .with_value_size(128),
        )
        .with_clients(8)
        .with_requests(100),
    )
    .unwrap();
    assert_eq!(result.anomalies.ryw_transactions, 0);
    assert!(result.completed > 0);
}

#[test]
fn cross_node_visibility_follows_the_broadcast() {
    let cluster = test_cluster(3);
    let nodes = cluster.active_nodes();

    // Commit on node 0 only.
    let writer = &nodes[0];
    let txn = writer.start_transaction();
    writer
        .put(&txn, Key::new("broadcast-me"), Bytes::from_static(b"hello"))
        .unwrap();
    writer.commit(&txn).unwrap();

    // Before any maintenance the other nodes do not serve it...
    for node in &nodes[1..] {
        let t = node.start_transaction();
        assert!(node.get(&t, &Key::new("broadcast-me")).unwrap().is_none());
        node.abort(&t).unwrap();
    }
    // ...and after one maintenance round they all do.
    cluster.run_maintenance_round().unwrap();
    for node in &nodes {
        let t = node.start_transaction();
        assert_eq!(
            node.get(&t, &Key::new("broadcast-me")).unwrap().unwrap(),
            Bytes::from_static(b"hello"),
            "node {}",
            node.node_id()
        );
        node.commit(&t).unwrap();
    }
}
