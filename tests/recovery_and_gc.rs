//! Integration tests for fault recovery (§3.3.1, §4.2, §6.7) and garbage
//! collection (§5) across the whole stack.

use std::sync::Arc;

use aft::cluster::{broadcast_round, Cluster, ClusterConfig, FaultManager, GlobalGc};
use aft::core::{AftNode, LocalGcConfig, NodeConfig};
use aft::storage::io::{IoConfig, IoEngine};
use aft::storage::{BackendConfig, BackendKind, InMemoryStore, SharedStorage};
use aft::types::clock::TickingClock;
use aft::types::{AftError, Key};
use bytes::Bytes;

fn node_over(storage: SharedStorage, id: &str) -> Arc<AftNode> {
    AftNode::with_clock(
        NodeConfig::default().with_node_id(id),
        storage,
        TickingClock::shared(1, 1),
    )
    .unwrap()
}

#[test]
fn committed_data_survives_total_node_loss() {
    let storage: SharedStorage = InMemoryStore::shared();
    {
        let node = node_over(storage.clone(), "original");
        for i in 0..20 {
            let t = node.start_transaction();
            node.put(
                &t,
                Key::new(format!("durable-{i}")),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
            node.commit(&t).unwrap();
        }
        // The node and every cache die here.
    }
    let replacement = node_over(storage, "replacement");
    let t = replacement.start_transaction();
    for i in 0..20 {
        assert_eq!(
            replacement
                .get(&t, &Key::new(format!("durable-{i}")))
                .unwrap()
                .unwrap(),
            Bytes::from(format!("v{i}"))
        );
    }
    replacement.commit(&t).unwrap();
}

#[test]
fn uncommitted_work_is_lost_on_node_failure_and_clients_retry() {
    let storage: SharedStorage = InMemoryStore::shared();
    let in_flight_txn;
    {
        let node = node_over(storage.clone(), "doomed");
        let t = node.start_transaction();
        node.put(&t, Key::new("half-done"), Bytes::from_static(b"x"))
            .unwrap();
        in_flight_txn = t;
        // Node fails before commit.
    }
    let replacement = node_over(storage, "replacement");
    // The replacement knows nothing about the in-flight transaction; the
    // client's retry gets UnknownTransaction and must redo the request.
    let err = replacement
        .put(
            &in_flight_txn,
            Key::new("half-done"),
            Bytes::from_static(b"y"),
        )
        .unwrap_err();
    assert!(matches!(err, AftError::UnknownTransaction(_)));
    // And nothing of the half-done work is visible.
    let t = replacement.start_transaction();
    assert!(replacement
        .get(&t, &Key::new("half-done"))
        .unwrap()
        .is_none());
}

#[test]
fn fault_manager_recovers_commits_lost_before_broadcast() {
    let storage: SharedStorage = InMemoryStore::shared();
    let clock = TickingClock::shared(1, 1);
    let make = |id: &str| {
        AftNode::with_clock(
            NodeConfig::default().with_node_id(id),
            storage.clone(),
            clock.clone(),
        )
        .unwrap()
    };
    let dying = make("dying");
    let survivor_a = make("survivor-a");
    let survivor_b = make("survivor-b");

    // The dying node commits and acknowledges but never broadcasts.
    let t = dying.start_transaction();
    dying
        .put(&t, Key::new("acked"), Bytes::from_static(b"important"))
        .unwrap();
    dying.commit(&t).unwrap();
    drop(dying);

    // Liveness (§4.2): the fault manager scans the commit set and tells the
    // survivors, so the acknowledged data becomes visible.
    let fm = FaultManager::new();
    let io = IoEngine::new(storage.clone(), IoConfig::pipelined());
    let survivors = vec![Arc::clone(&survivor_a), Arc::clone(&survivor_b)];
    let recovered = fm.scan_commit_set(&io, &survivors).unwrap();
    assert_eq!(recovered, 1);
    for node in &survivors {
        let t = node.start_transaction();
        assert_eq!(
            node.get(&t, &Key::new("acked")).unwrap().unwrap(),
            Bytes::from_static(b"important")
        );
        node.commit(&t).unwrap();
    }
}

#[test]
fn global_gc_reclaims_superseded_versions_without_losing_the_latest() {
    let storage: SharedStorage = InMemoryStore::shared();
    let clock = TickingClock::shared(1, 1);
    let nodes: Vec<Arc<AftNode>> = (0..2)
        .map(|i| {
            AftNode::with_clock(
                NodeConfig::default().with_node_id(format!("n{i}")),
                storage.clone(),
                clock.clone(),
            )
            .unwrap()
        })
        .collect();
    let fm = FaultManager::new();
    let gc = GlobalGc::default();

    // 50 versions of 5 hot keys, interleaved across both nodes.
    for i in 0..50u32 {
        let node = &nodes[(i % 2) as usize];
        let t = node.start_transaction();
        node.put(
            &t,
            Key::new(format!("hot-{}", i % 5)),
            Bytes::from(format!("v{i}")),
        )
        .unwrap();
        node.commit(&t).unwrap();
    }
    broadcast_round(&nodes, Some(&fm));
    for node in &nodes {
        node.run_local_gc(&LocalGcConfig::aggressive());
    }
    let io = IoEngine::new(storage.clone(), IoConfig::pipelined());
    let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
    assert!(
        outcome.deleted >= 40,
        "most superseded versions deleted, got {outcome:?}"
    );

    // Exactly one live version per key remains in storage.
    let remaining = storage.list_prefix("data/").unwrap();
    assert_eq!(
        remaining.len(),
        5,
        "one surviving version per hot key: {remaining:?}"
    );

    // And every key still reads its newest value on every node.
    for node in &nodes {
        let t = node.start_transaction();
        for k in 0..5u32 {
            let value = node
                .get(&t, &Key::new(format!("hot-{k}")))
                .unwrap()
                .unwrap();
            let expected = format!("v{}", 45 + k); // last writer of hot-k
            assert_eq!(value, Bytes::from(expected));
        }
        node.commit(&t).unwrap();
    }
}

#[test]
fn gc_racing_a_long_transaction_forces_retry_not_fracture() {
    // The §5.2.1 limitation: deleting old versions can force a long-running
    // transaction to abort and retry, but it must never fracture its reads.
    let storage: SharedStorage = InMemoryStore::shared();
    let clock = TickingClock::shared(1, 1);
    let node = AftNode::with_clock(NodeConfig::default(), storage.clone(), clock.clone()).unwrap();
    let fm = FaultManager::new();
    let gc = GlobalGc::default();

    // T_a writes {k, l}; the long-running reader reads k from T_a.
    let ta = node.start_transaction();
    node.put(&ta, Key::new("k"), Bytes::from_static(b"ka"))
        .unwrap();
    node.put(&ta, Key::new("l"), Bytes::from_static(b"la"))
        .unwrap();
    node.commit(&ta).unwrap();

    let reader = node.start_transaction();
    assert_eq!(
        node.get(&reader, &Key::new("k")).unwrap().unwrap(),
        Bytes::from_static(b"ka")
    );

    // Newer transactions supersede T_a entirely.
    for i in 0..3 {
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), Bytes::from(format!("k{i}")))
            .unwrap();
        node.put(&t, Key::new("l"), Bytes::from(format!("l{i}")))
            .unwrap();
        node.commit(&t).unwrap();
    }
    let nodes = vec![Arc::clone(&node)];
    broadcast_round(&nodes, Some(&fm));
    // Local GC keeps T_a because the reader depends on it...
    let outcome = node.run_local_gc(&LocalGcConfig::aggressive());
    assert!(outcome.retained_for_readers >= 1);
    let io = IoEngine::new(storage.clone(), IoConfig::pipelined());
    let _ = gc.run_round(&fm, &nodes, &io).unwrap();

    // ...so the reader still gets an atomic (if stale) view of l, or a clean
    // retryable error — never a fractured read.
    match node.get(&reader, &Key::new("l")) {
        Ok(Some(value)) => assert_eq!(value, Bytes::from_static(b"la")),
        Ok(None) => panic!("l must not silently disappear"),
        Err(AftError::NoValidVersion { .. }) => {} // acceptable: retry
        Err(other) => panic!("unexpected error {other}"),
    }
}

#[test]
fn cluster_failover_preserves_all_committed_data_under_load() {
    let storage = aft::storage::make_backend(BackendConfig::test(BackendKind::DynamoDb));
    let cluster = Cluster::with_clock(
        ClusterConfig {
            initial_nodes: 4,
            node_template: NodeConfig::default(),
            replacement_delay: std::time::Duration::ZERO,
            ..ClusterConfig::default()
        },
        storage,
        TickingClock::shared(1, 1),
    )
    .unwrap();

    // Commit 100 transactions spread over the cluster.
    for i in 0..100u32 {
        let node = cluster.route().unwrap();
        let t = node.start_transaction();
        node.put(
            &t,
            Key::new(format!("key-{}", i % 25)),
            Bytes::from(format!("v{i}")),
        )
        .unwrap();
        node.commit(&t).unwrap();
    }
    cluster.run_maintenance_round().unwrap();

    // Kill two nodes and replace them.
    cluster.kill_node("aft-node-0");
    cluster.kill_node("aft-node-2");
    assert_eq!(cluster.registry().active_count(), 2);
    assert_eq!(cluster.replace_failed_nodes().unwrap(), 2);
    assert_eq!(cluster.registry().active_count(), 4);
    cluster.run_maintenance_round().unwrap();

    // Every key is readable from every (old or replacement) node.
    for node in cluster.active_nodes() {
        let t = node.start_transaction();
        for k in 0..25u32 {
            assert!(
                node.get(&t, &Key::new(format!("key-{k}")))
                    .unwrap()
                    .is_some(),
                "key-{k} missing on {}",
                node.node_id()
            );
        }
        node.commit(&t).unwrap();
    }
}
