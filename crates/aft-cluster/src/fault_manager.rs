//! The fault manager (§4.2, §6.7).
//!
//! The fault manager lives outside the request critical path and provides two
//! guarantees:
//!
//! * **Liveness of committed data.** It receives every node's commit stream
//!   *without* the pruning optimisation and periodically scans the
//!   Transaction Commit Set in storage for commit records it has not seen via
//!   broadcast — which happens exactly when a node acknowledged a commit and
//!   failed before multicasting it. Any such record is pushed to all nodes so
//!   the data becomes visible.
//! * **Failure detection and replacement.** It notices failed nodes and
//!   configures replacements (standby nodes with a container-download /
//!   cache-warm delay, §6.7). The mechanics of replacement live in
//!   [`crate::cluster`]; the detection hook lives here.
//!
//! The fault manager is stateless in the sense of §4.2: everything it tracks
//! can be rebuilt by re-scanning the commit set, so its own failure is
//! harmless.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aft_core::bootstrap::fetch_commit_records;
use aft_core::{AftNode, MetadataCache};
use aft_storage::io::{IoEngine, StorageRequest};
use aft_types::{AftResult, TransactionRecord};

/// The fault manager's view of the cluster's committed transactions.
pub struct FaultManager {
    /// Every commit record the manager has learned about (via the unpruned
    /// broadcast stream or by scanning storage). Also serves as the metadata
    /// view the global GC runs Algorithm 2 against (§5.2).
    metadata: MetadataCache,
    /// Commit records discovered only by scanning storage — i.e. commits
    /// whose broadcast was lost to a node failure.
    recovered_commits: AtomicU64,
}

impl Default for FaultManager {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultManager {
    /// Creates a fault manager with an empty view.
    pub fn new() -> Self {
        FaultManager {
            metadata: MetadataCache::new(),
            recovered_commits: AtomicU64::new(0),
        }
    }

    /// The manager's commit metadata view (used by the global GC).
    pub fn metadata(&self) -> &MetadataCache {
        &self.metadata
    }

    /// Ingests commit records from the unpruned broadcast stream.
    pub fn observe_commits(&self, records: impl IntoIterator<Item = Arc<TransactionRecord>>) {
        for record in records {
            self.metadata.insert(record);
        }
    }

    /// Number of commits that had to be recovered from storage because their
    /// broadcast never arrived.
    pub fn recovered_commits(&self) -> u64 {
        self.recovered_commits.load(Ordering::Relaxed)
    }

    /// Scans the Transaction Commit Set for records the manager has not seen
    /// and notifies every active node of them (§4.2). Returns how many
    /// missing commits were found in this scan.
    ///
    /// The scan goes through the pipelined I/O engine: one list round trip,
    /// then the unseen records are fetched in overlapped waves instead of one
    /// storage round trip per record — the scan is off the critical path, but
    /// its wall-clock time bounds how stale a recovered commit can be.
    pub fn scan_commit_set(&self, io: &IoEngine, nodes: &[Arc<AftNode>]) -> AftResult<usize> {
        let keys = io
            .execute(StorageRequest::List(TransactionRecord::storage_prefix()))
            .result?
            .into_keys();
        let missing: Vec<String> = keys
            .into_iter()
            .filter(|key| match TransactionRecord::id_from_storage_key(key) {
                Ok(id) => !self.metadata.is_committed(&id),
                Err(_) => false,
            })
            .collect();
        let mut found = 0;
        fetch_commit_records(io, &missing, |record| {
            let record = Arc::new(record);
            self.metadata.insert(Arc::clone(&record));
            self.recovered_commits.fetch_add(1, Ordering::Relaxed);
            found += 1;
            for node in nodes {
                node.receive_peer_commits([Arc::clone(&record)]);
            }
        })?;
        Ok(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_core::NodeConfig;
    use aft_storage::io::IoConfig;
    use aft_storage::{InMemoryStore, SharedStorage};
    use aft_types::clock::TickingClock;
    use aft_types::Key;
    use bytes::Bytes;

    fn engine_over(storage: &SharedStorage) -> IoEngine {
        IoEngine::new(storage.clone(), IoConfig::pipelined())
    }

    fn cluster_of(n: usize) -> (Vec<Arc<AftNode>>, SharedStorage) {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = TickingClock::shared(1, 1);
        let nodes = (0..n)
            .map(|i| {
                AftNode::with_clock(
                    NodeConfig::test()
                        .with_node_id(format!("node-{i}"))
                        .with_seed(i as u64),
                    storage.clone(),
                    clock.clone(),
                )
                .unwrap()
            })
            .collect();
        (nodes, storage)
    }

    #[test]
    fn observe_commits_populates_the_view() {
        let fm = FaultManager::new();
        let record = Arc::new(TransactionRecord::new(
            aft_types::TransactionId::new(5, aft_types::Uuid::from_u128(1)),
            vec![Key::new("k")],
        ));
        fm.observe_commits([Arc::clone(&record)]);
        assert!(fm.metadata().is_committed(&record.id));
        assert_eq!(fm.recovered_commits(), 0);
    }

    #[test]
    fn scan_recovers_commits_whose_broadcast_was_lost() {
        let (nodes, storage) = cluster_of(3);

        // Node 0 commits and then "fails" before broadcasting: we simply never
        // run a broadcast round that includes it.
        let t = nodes[0].start_transaction();
        nodes[0]
            .put(&t, Key::new("orphan"), Bytes::from_static(b"value"))
            .unwrap();
        let id = nodes[0].commit(&t).unwrap();
        assert!(!nodes[1].metadata().is_committed(&id));

        let fm = FaultManager::new();
        let io = engine_over(&storage);
        let survivors = vec![Arc::clone(&nodes[1]), Arc::clone(&nodes[2])];
        let found = fm.scan_commit_set(&io, &survivors).unwrap();
        assert_eq!(found, 1);
        assert_eq!(fm.recovered_commits(), 1);
        assert!(nodes[1].metadata().is_committed(&id));
        assert!(nodes[2].metadata().is_committed(&id));

        // The data committed by the failed node is now readable elsewhere.
        let t = nodes[1].start_transaction();
        assert_eq!(
            nodes[1].get(&t, &Key::new("orphan")).unwrap().unwrap(),
            Bytes::from_static(b"value")
        );

        // A second scan finds nothing new.
        assert_eq!(fm.scan_commit_set(&io, &survivors).unwrap(), 0);
    }

    #[test]
    fn scan_skips_commits_already_seen_via_broadcast() {
        let (nodes, storage) = cluster_of(2);
        let t = nodes[0].start_transaction();
        nodes[0]
            .put(&t, Key::new("k"), Bytes::from_static(b"v"))
            .unwrap();
        nodes[0].commit(&t).unwrap();

        let fm = FaultManager::new();
        // The broadcast reached the fault manager normally.
        fm.observe_commits(nodes[0].drain_recent_commits());
        assert_eq!(
            fm.scan_commit_set(&engine_over(&storage), &nodes).unwrap(),
            0
        );
        assert_eq!(fm.recovered_commits(), 0);
    }

    #[test]
    fn empty_storage_scan_is_harmless() {
        let (nodes, storage) = cluster_of(1);
        let fm = FaultManager::new();
        assert_eq!(
            fm.scan_commit_set(&engine_over(&storage), &nodes).unwrap(),
            0
        );
    }

    #[test]
    fn large_scan_recovers_every_orphan_across_waves() {
        // More orphaned commits than one 256-request wave: the overlapped
        // scan must still recover all of them.
        let (nodes, storage) = cluster_of(2);
        for i in 0..300 {
            let t = nodes[0].start_transaction();
            nodes[0]
                .put(
                    &t,
                    Key::new(format!("orphan/{i}")),
                    Bytes::from_static(b"v"),
                )
                .unwrap();
            nodes[0].commit(&t).unwrap();
        }
        // Node 0 "fails" before any broadcast; node 1 learns via the scan.
        let fm = FaultManager::new();
        let survivors = vec![Arc::clone(&nodes[1])];
        let found = fm
            .scan_commit_set(&engine_over(&storage), &survivors)
            .unwrap();
        assert_eq!(found, 300);
        assert_eq!(fm.recovered_commits(), 300);
        let t = nodes[1].start_transaction();
        assert!(nodes[1].get(&t, &Key::new("orphan/299")).unwrap().is_some());
    }
}
