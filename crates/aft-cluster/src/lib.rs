//! Distributed AFT deployments (§4 and §5.2 of the paper).
//!
//! A single AFT node already provides read atomic isolation for the
//! transactions it serves; scaling to many nodes requires nothing on the
//! transaction critical path, because every node may commit data for every
//! key and each transaction's writes land at unique storage keys. What the
//! cluster layer adds is everything *off* the critical path:
//!
//! * [`membership`] — the node registry (the role Kubernetes plays in the
//!   paper's deployment, §4.3): which nodes exist and which are alive.
//! * [`router`] — the stateless round-robin load balancer that assigns each
//!   logical request to one AFT node (§6).
//! * [`broadcast`] — the periodic commit-set multicast between nodes, with
//!   supersedence pruning (§4, §4.1).
//! * [`dissemination`] — pluggable topologies for that multicast: the flat
//!   all-to-all baseline, a batched k-ary spanning-tree relay, and seeded
//!   epidemic gossip, so metadata traffic scales O(n) instead of O(n²) on
//!   large clusters, with seeded edge-cut (partition) injection.
//! * [`fault_manager`] — the out-of-band process that receives the unpruned
//!   commit stream, scans the Transaction Commit Set for commits whose
//!   broadcast was lost (liveness, §4.2), detects failed nodes and brings up
//!   replacements (§6.7).
//! * [`global_gc`] — the global data garbage collector, combined with the
//!   fault manager as in §5.2: deletes a transaction's data and commit record
//!   only after *every* node has locally deleted its metadata.
//! * [`cluster`] — the orchestrator that wires all of the above together and
//!   optionally drives it with background threads.
//! * [`chaos`] — deterministic node-kill injection: [`ChaosController`] arms
//!   crashes at precise commit phases (the §4.2 lost-broadcast window among
//!   them) and drives scan → standby replacement, reporting
//!   time-to-recovery.

pub mod broadcast;
pub mod chaos;
pub mod cluster;
pub mod dissemination;
pub mod fault_manager;
pub mod global_gc;
pub mod membership;
pub mod router;

pub use broadcast::{broadcast_round, BroadcastStats};
pub use chaos::{ChaosController, KillPlan, RecoveryOutcome};
pub use cluster::{Cluster, ClusterConfig};
pub use dissemination::{DisseminationConfig, Disseminator, Topology};
pub use fault_manager::FaultManager;
pub use global_gc::{GlobalGc, GlobalGcConfig, GlobalGcOutcome};
pub use membership::{NodeRegistry, NodeState};
pub use router::RoundRobinRouter;
