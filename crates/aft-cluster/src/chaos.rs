//! Cluster-level chaos: killing nodes mid-commit and measuring recovery.
//!
//! [`ChaosController`] turns the commit-phase crash hooks of
//! [`aft_core::CommitProbe`] into cluster scenarios: it arms a kill on one
//! node at a precise [`CommitPhase`] (each phase is a distinct scenario of
//! the paper's fault model — see the phase docs), marks the node failed in
//! the registry the instant the crash fires, and then drives the recovery
//! machinery — fault-manager commit-set scans (§4.2) and standby replacement
//! (§6.7) — until the cluster converges, reporting time-to-recovery.
//!
//! Everything is deterministic modulo thread scheduling: the kill fires on
//! the N-th commit reaching the armed phase on the target node, so a seeded
//! workload reproduces the same crash point run after run.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aft_chaos::ChaosSpec;
use aft_core::{AftNode, CommitPhase, CommitProbe};
use aft_types::{AftError, AftResult, TransactionId};
use parking_lot::Mutex;

use crate::cluster::Cluster;
use crate::membership::{NodeRegistry, NodeState};

// The kill vocabulary is canonical in `aft-chaos` (a kill is the fourth leg
// of a cross-layer `ChaosSpec`); re-exported here because this is the layer
// that executes it.
pub use aft_chaos::KillPlan;

/// What one [`ChaosController::drive_recovery`] call observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryOutcome {
    /// Maintenance rounds driven (including the quiet confirmation rounds).
    pub rounds: usize,
    /// Commits the fault manager recovered from storage during the drive —
    /// commits whose broadcast died with a node.
    pub recovered_commits: u64,
    /// Failed nodes replaced with fresh standbys during the drive.
    pub replaced_nodes: usize,
    /// Maintenance rounds that failed outright (chaos faults surviving the
    /// I/O retry budget) and were retried.
    pub failed_rounds: usize,
    /// Wall-clock time from the armed kill's firing (or, if no kill fired,
    /// from the start of the drive) to convergence — i.e. time-to-recovery
    /// *from the failure*, which includes however long the workload kept
    /// running before the recovery machinery was driven.
    pub elapsed: Duration,
    /// Whether the cluster converged (two consecutive quiet rounds with no
    /// failed nodes) within the round budget.
    pub converged: bool,
}

/// The probe a [`ChaosController`] installs on its target node.
struct KillProbe {
    registry: Arc<NodeRegistry>,
    phase: CommitPhase,
    after_commits: u64,
    commits_seen: AtomicU64,
    fired: AtomicBool,
    killed_at: Mutex<Option<Instant>>,
}

impl CommitProbe for KillProbe {
    fn before_phase(
        &self,
        node_id: &str,
        _txid: &TransactionId,
        phase: CommitPhase,
    ) -> AftResult<()> {
        // A dead node stays dead: every commit after the crash fails too
        // (stragglers that routed here before the registry update).
        if self.fired.load(Ordering::Acquire) {
            return Err(AftError::Unavailable(format!(
                "chaos: node {node_id} is down"
            )));
        }
        if phase != self.phase {
            return Ok(());
        }
        let seen = self.commits_seen.fetch_add(1, Ordering::AcqRel);
        if seen < self.after_commits {
            return Ok(());
        }
        if !self.fired.swap(true, Ordering::AcqRel) {
            self.registry.set_state(node_id, NodeState::Failed);
            *self.killed_at.lock() = Some(Instant::now());
        }
        Err(AftError::Unavailable(format!(
            "chaos: node {node_id} crashed {}",
            phase.label()
        )))
    }
}

/// The one-shot probe a [`ChaosController`] installs for
/// [`CommitPhase::DuringCheckpointBootstrap`] kills: it tears the *first*
/// bootstrap that reaches the checkpoint phase after arming (the victim's
/// replacement) and lets every later attempt proceed, so the retried
/// replacement converges and the drive can prove a torn bootstrap is
/// harmless.
struct BootstrapInterrupter {
    fired: AtomicBool,
    interruptions: AtomicU64,
}

impl CommitProbe for BootstrapInterrupter {
    fn before_phase(
        &self,
        node_id: &str,
        _txid: &TransactionId,
        phase: CommitPhase,
    ) -> AftResult<()> {
        if phase != CommitPhase::DuringCheckpointBootstrap {
            return Ok(());
        }
        if !self.fired.swap(true, Ordering::AcqRel) {
            self.interruptions.fetch_add(1, Ordering::Relaxed);
            return Err(AftError::Unavailable(format!(
                "chaos: node {node_id} killed mid-bootstrap"
            )));
        }
        Ok(())
    }
}

/// Arms node kills and drives the cluster's recovery machinery.
pub struct ChaosController {
    cluster: Arc<Cluster>,
    kills: Mutex<Vec<Arc<KillProbe>>>,
    interrupters: Mutex<Vec<Arc<BootstrapInterrupter>>>,
}

impl ChaosController {
    /// A controller over `cluster`.
    pub fn new(cluster: Arc<Cluster>) -> Self {
        ChaosController {
            cluster,
            kills: Mutex::new(Vec::new()),
            interrupters: Mutex::new(Vec::new()),
        }
    }

    /// The controlled cluster.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Arms `plan`: installs a crash probe on the target node. Fails if the
    /// node is not registered. Arming again *adds* a kill — one trial may
    /// crash several nodes.
    ///
    /// A [`CommitPhase::DuringCheckpointBootstrap`] plan is a two-part
    /// scenario: the victim is killed in the §4.2 lost-broadcast window
    /// (after `after_commits` commits), and a one-shot interrupter is
    /// registered with the cluster so the replacement's first
    /// checkpoint-bootstrap is torn mid-flight. The retried replacement must
    /// still converge to the full-replay state.
    pub fn arm_kill(&self, plan: KillPlan) -> AftResult<Arc<AftNode>> {
        let node = self.cluster.registry().get(&plan.node_id).ok_or_else(|| {
            AftError::InvalidRequest(format!("chaos: unknown node {:?}", plan.node_id))
        })?;
        let phase = if plan.phase == CommitPhase::DuringCheckpointBootstrap {
            let interrupter = Arc::new(BootstrapInterrupter {
                fired: AtomicBool::new(false),
                interruptions: AtomicU64::new(0),
            });
            self.cluster
                .set_bootstrap_interrupter(Arc::clone(&interrupter) as Arc<dyn CommitProbe>);
            self.interrupters.lock().push(interrupter);
            // The victim itself dies at the most demanding commit phase: its
            // last commit is durable but silent, so recovery must both find
            // the lost commit *and* survive the torn bootstrap.
            CommitPhase::BeforeBroadcast
        } else {
            plan.phase
        };
        let probe = Arc::new(KillProbe {
            registry: Arc::clone(self.cluster.registry()),
            phase,
            after_commits: plan.after_commits,
            commits_seen: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            killed_at: Mutex::new(None),
        });
        node.install_commit_probe(Arc::clone(&probe) as Arc<dyn CommitProbe>);
        self.kills.lock().push(probe);
        Ok(node)
    }

    /// Arms every cluster-level leg of a unified cross-layer `spec`: its
    /// kills (returning the target nodes in spec order) and, when the spec
    /// carries partition pressure, the seeded edge-cut schedule on the
    /// cluster's disseminator. Fails (arming nothing further) on the first
    /// unknown kill target.
    pub fn arm_spec(&self, spec: &ChaosSpec) -> AftResult<Vec<Arc<AftNode>>> {
        if !spec.partition.is_quiet() {
            self.cluster.disseminator().arm_partition(spec.schedule());
        }
        spec.kills
            .iter()
            .map(|plan| self.arm_kill(plan.clone()))
            .collect()
    }

    /// Whether any armed kill has fired.
    pub fn kill_fired(&self) -> bool {
        self.kills
            .lock()
            .iter()
            .any(|p| p.fired.load(Ordering::Acquire))
    }

    /// Number of armed kills that have fired.
    pub fn kills_fired(&self) -> usize {
        self.kills
            .lock()
            .iter()
            .filter(|p| p.fired.load(Ordering::Acquire))
            .count()
    }

    /// Bootstraps torn by armed checkpoint-bootstrap kills so far.
    pub fn bootstrap_interruptions(&self) -> u64 {
        self.interrupters
            .lock()
            .iter()
            .map(|p| p.interruptions.load(Ordering::Relaxed))
            .sum()
    }

    /// When the *first* armed kill fired, if any has.
    pub fn killed_at(&self) -> Option<Instant> {
        self.kills
            .lock()
            .iter()
            .filter_map(|p| *p.killed_at.lock())
            .min()
    }

    /// Drives replacement and maintenance rounds until the cluster
    /// converges: no failed nodes remain and two consecutive rounds recover
    /// nothing new from storage. Rounds that fail outright (chaos faults
    /// outliving the I/O retry budget, a replacement bootstrap dying) are
    /// counted and retried — recovery must be *live* under the same fault
    /// injection that caused the damage.
    pub fn drive_recovery(&self, max_rounds: usize) -> RecoveryOutcome {
        let start = self.killed_at().unwrap_or_else(Instant::now);
        let fault_manager = self.cluster.fault_manager();
        let recovered_before = fault_manager.recovered_commits();
        let mut outcome = RecoveryOutcome::default();
        let mut quiet_rounds = 0;
        while outcome.rounds < max_rounds {
            outcome.rounds += 1;
            match self.cluster.replace_failed_nodes() {
                Ok(replaced) => outcome.replaced_nodes += replaced,
                Err(_) => {
                    outcome.failed_rounds += 1;
                    continue;
                }
            }
            match self.cluster.run_maintenance_round() {
                Ok(stats) => {
                    // "Quiet" must also cover dissemination: metadata parked
                    // on cut edges (or just drained from it) is recovery
                    // still in flight, not convergence.
                    let nothing_new = stats.recovered_commits == 0
                        && stats.broadcast.retried == 0
                        && self.cluster.disseminator().pending_retries() == 0;
                    let all_up = self.cluster.registry().failed_node_ids().is_empty();
                    if nothing_new && all_up {
                        quiet_rounds += 1;
                        if quiet_rounds >= 2 {
                            outcome.converged = true;
                            break;
                        }
                    } else {
                        quiet_rounds = 0;
                    }
                }
                Err(_) => {
                    outcome.failed_rounds += 1;
                    quiet_rounds = 0;
                }
            }
        }
        outcome.recovered_commits = fault_manager.recovered_commits() - recovered_before;
        outcome.elapsed = start.elapsed();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use aft_storage::InMemoryStore;
    use aft_types::Key;
    use bytes::Bytes;

    fn test_cluster(nodes: usize) -> Arc<Cluster> {
        Cluster::with_clock(
            ClusterConfig::test(nodes),
            InMemoryStore::shared(),
            aft_types::clock::TickingClock::shared(1, 1),
        )
        .unwrap()
    }

    fn commit_on(node: &Arc<AftNode>, key: &str, value: &str) -> AftResult<TransactionId> {
        let t = node.start_transaction();
        node.put(&t, Key::new(key), Bytes::copy_from_slice(value.as_bytes()))?;
        node.commit(&t)
    }

    #[test]
    fn arming_an_unknown_node_is_an_error() {
        let controller = ChaosController::new(test_cluster(1));
        match controller.arm_kill(KillPlan::immediate("ghost", CommitPhase::BeforeBroadcast)) {
            Err(AftError::InvalidRequest(msg)) => assert!(msg.contains("ghost")),
            Err(other) => panic!("expected InvalidRequest, got {other:?}"),
            Ok(_) => panic!("arming a ghost node must fail"),
        }
        assert!(!controller.kill_fired());
        assert!(controller.killed_at().is_none());
    }

    #[test]
    fn kill_fires_on_the_configured_commit_and_stays_down() {
        let cluster = test_cluster(2);
        let controller = ChaosController::new(Arc::clone(&cluster));
        let victim = controller
            .arm_kill(
                KillPlan::immediate("aft-node-0", CommitPhase::BeforeDataPut).after_commits(2),
            )
            .unwrap();

        // Two commits pass unharmed, the third crashes.
        commit_on(&victim, "a", "1").unwrap();
        commit_on(&victim, "b", "2").unwrap();
        assert!(!controller.kill_fired());
        let err = commit_on(&victim, "c", "3").unwrap_err();
        assert!(matches!(err, AftError::Unavailable(_)));
        assert!(controller.kill_fired());
        assert!(controller.killed_at().is_some());
        assert_eq!(
            cluster.registry().state_of("aft-node-0"),
            Some(NodeState::Failed)
        );
        // Nothing of the crashed commit reached storage (BeforeDataPut).
        assert!(cluster.storage().list_prefix("data/c/").unwrap().is_empty());
        // A straggler commit on the dead node also fails.
        assert!(matches!(
            commit_on(&victim, "d", "4").unwrap_err(),
            AftError::Unavailable(_)
        ));
    }

    #[test]
    fn silent_commit_is_recovered_and_node_replaced() {
        let cluster = test_cluster(3);
        let controller = ChaosController::new(Arc::clone(&cluster));
        let victim = controller
            .arm_kill(KillPlan::immediate(
                "aft-node-1",
                CommitPhase::BeforeBroadcast,
            ))
            .unwrap();

        // The victim's commit is durable but unacknowledged and never
        // broadcast (§4.2's lost-broadcast window).
        let err = commit_on(&victim, "silent", "payload").unwrap_err();
        assert!(matches!(err, AftError::Unavailable(_)));
        assert_eq!(cluster.storage().list_prefix("commit/").unwrap().len(), 1);

        let outcome = controller.drive_recovery(20);
        assert!(outcome.converged, "recovery must converge: {outcome:?}");
        assert_eq!(outcome.recovered_commits, 1, "the silent commit is found");
        assert_eq!(outcome.replaced_nodes, 1);
        assert_eq!(outcome.failed_rounds, 0);
        assert_eq!(cluster.registry().active_count(), 3);

        // Every active node (including the fresh replacement) now serves the
        // recovered commit.
        for node in cluster.active_nodes() {
            let t = node.start_transaction();
            assert_eq!(
                node.get(&t, &Key::new("silent")).unwrap().unwrap(),
                Bytes::from_static(b"payload"),
                "node {} must see the recovered commit",
                node.node_id()
            );
        }
    }

    #[test]
    fn arm_spec_arms_every_kill_of_a_cross_layer_spec() {
        let cluster = test_cluster(3);
        let controller = ChaosController::new(Arc::clone(&cluster));
        let spec = ChaosSpec::new(0xC0FFEE)
            .kill(KillPlan::immediate(
                "aft-node-0",
                CommitPhase::BeforeDataPut,
            ))
            .kill(KillPlan::immediate(
                "aft-node-1",
                CommitPhase::BeforeBroadcast,
            ));
        let victims = controller.arm_spec(&spec).unwrap();
        assert_eq!(victims.len(), 2);
        assert_eq!(controller.kills_fired(), 0);

        assert!(commit_on(&victims[0], "a", "1").is_err());
        assert_eq!(controller.kills_fired(), 1);
        assert!(commit_on(&victims[1], "b", "2").is_err());
        assert_eq!(controller.kills_fired(), 2);
        assert!(controller.kill_fired());

        let outcome = controller.drive_recovery(30);
        assert!(outcome.converged, "recovery must converge: {outcome:?}");
        assert_eq!(outcome.replaced_nodes, 2, "both victims are replaced");
        assert_eq!(cluster.registry().active_count(), 3);
    }

    #[test]
    fn arm_spec_rejects_unknown_nodes() {
        let controller = ChaosController::new(test_cluster(1));
        let spec = ChaosSpec::new(1).kill(KillPlan::immediate("ghost", CommitPhase::BeforeDataPut));
        assert!(matches!(
            controller.arm_spec(&spec),
            Err(AftError::InvalidRequest(_))
        ));
    }

    #[test]
    fn checkpoint_write_kill_marks_node_failed_and_recovery_converges() {
        use aft_core::CheckpointPolicy;
        let cluster = Cluster::with_clock(
            ClusterConfig::test(3).with_checkpoint_policy(CheckpointPolicy::every_commits(2)),
            InMemoryStore::shared(),
            aft_types::clock::TickingClock::shared(1, 1),
        )
        .unwrap();
        let controller = ChaosController::new(Arc::clone(&cluster));
        let victim = controller
            .arm_kill(KillPlan::immediate(
                "aft-node-0",
                CommitPhase::DuringCheckpointWrite,
            ))
            .unwrap();

        // Commits pass unharmed (the probe only matches the checkpoint
        // phase); the maintenance round's checkpoint write fires the kill.
        commit_on(&victim, "a", "1").unwrap();
        commit_on(&victim, "b", "2").unwrap();
        let stats = cluster.run_maintenance_round().unwrap();
        assert_eq!(stats.checkpoint_failures, 1);
        assert!(controller.kill_fired());
        assert_eq!(
            cluster.registry().state_of("aft-node-0"),
            Some(NodeState::Failed)
        );
        // The torn checkpoint published no manifest: nothing to load.
        let load = aft_storage::load_latest_checkpoint(cluster.io()).unwrap();
        assert!(load.checkpoint.is_none(), "manifest was never published");

        let outcome = controller.drive_recovery(30);
        assert!(outcome.converged, "recovery must converge: {outcome:?}");
        assert_eq!(outcome.replaced_nodes, 1);
        for node in cluster.active_nodes() {
            let t = node.start_transaction();
            assert_eq!(
                node.get(&t, &Key::new("b")).unwrap().unwrap(),
                Bytes::from_static(b"2")
            );
        }
    }

    #[test]
    fn torn_bootstrap_is_retried_and_recovery_converges() {
        use aft_core::CheckpointPolicy;
        let cluster = Cluster::with_clock(
            ClusterConfig::test(3).with_checkpoint_policy(CheckpointPolicy::every_commits(2)),
            InMemoryStore::shared(),
            aft_types::clock::TickingClock::shared(1, 1),
        )
        .unwrap();
        let controller = ChaosController::new(Arc::clone(&cluster));
        let victim = controller
            .arm_kill(KillPlan::immediate(
                "aft-node-1",
                CommitPhase::DuringCheckpointBootstrap,
            ))
            .unwrap();

        // Seed a checkpoint so the replacement really bootstraps from
        // checkpoint + tail, then kill the victim (silent durable commit).
        let healthy = cluster.registry().get("aft-node-0").unwrap();
        commit_on(&healthy, "warm", "1").unwrap();
        commit_on(&healthy, "warm", "2").unwrap();
        let stats = cluster.run_maintenance_round().unwrap();
        assert_eq!(stats.checkpoints_written, 1, "only the committer is due");
        let err = commit_on(&victim, "silent", "payload").unwrap_err();
        assert!(matches!(err, AftError::Unavailable(_)));

        let outcome = controller.drive_recovery(30);
        assert!(outcome.converged, "recovery must converge: {outcome:?}");
        assert_eq!(
            controller.bootstrap_interruptions(),
            1,
            "exactly one bootstrap is torn"
        );
        assert!(
            outcome.failed_rounds >= 1,
            "the torn bootstrap costs a round: {outcome:?}"
        );
        assert_eq!(outcome.replaced_nodes, 1, "the retry succeeds");
        assert_eq!(cluster.registry().active_count(), 3);
        for node in cluster.active_nodes() {
            let t = node.start_transaction();
            assert_eq!(
                node.get(&t, &Key::new("silent")).unwrap().unwrap(),
                Bytes::from_static(b"payload"),
                "node {} must serve the recovered commit",
                node.node_id()
            );
        }
    }

    #[test]
    fn recovery_converges_quickly_when_nothing_is_wrong() {
        let cluster = test_cluster(2);
        let controller = ChaosController::new(Arc::clone(&cluster));
        let outcome = controller.drive_recovery(10);
        assert!(outcome.converged);
        assert_eq!(outcome.recovered_commits, 0);
        assert_eq!(outcome.replaced_nodes, 0);
        assert!(outcome.rounds <= 3, "quiet cluster converges in 2 rounds");
    }
}
