//! Pluggable commit-metadata dissemination topologies (§4.2 at scale).
//!
//! The paper's multicast hands every drained commit record to every peer —
//! O(n²) messages per round, fine at the paper's 3 nodes and quadratic death
//! at 100. This module generalises the broadcast into a [`Disseminator`]
//! with three interchangeable topologies behind one
//! [`DisseminationConfig`]:
//!
//! * **All-to-all** — the paper's §4.2 behaviour, kept as the baseline:
//!   every origin sends its batch directly to every peer (n·(n−1) messages
//!   per all-origins round).
//! * **Tree** — a k-ary spanning tree over the deterministically sorted
//!   active nodes (heap indexing: the parent of position `p` is `(p−1)/k`).
//!   Each round runs one convergecast/broadcast sweep: every node batches
//!   its own commits with its children's contributions into ONE upward
//!   message (leaves first), then the root's aggregate flows back down,
//!   each child excluded from what it contributed. The whole round costs
//!   at most 2·(n−1) messages *no matter how many nodes committed* — the
//!   flat baseline pays origins·(n−1).
//! * **Gossip** — seeded epidemic push: every node that learns a fresh
//!   record forwards it to its ring successor plus `fanout − 1` seeded
//!   random peers and then goes quiet for that record (infect-and-die).
//!   The ring edge makes coverage deterministic — the infected set is
//!   closed under ring succession, so one round always reaches every node —
//!   while the random edges keep path diversity under partitions.
//!
//! Relays forward inside the same maintenance round (store-and-forward is
//! microseconds against a 1 s dissemination interval), so propagation lag
//! stays ≈ one interval for every topology while the *message* count —
//! what actually limits cluster scale — drops from O(n²) to O(n). Each
//! node-to-node send coalesces its records into batches of at most
//! [`DisseminationConfig::batch_bytes`] encoded bytes, and each batch is
//! one counted message.
//!
//! Two invariants survive every topology:
//!
//! * The fault manager still observes the *unpruned* firehose at drain time
//!   (§4.2's liveness backstop), before any topology, pruning, or partition
//!   can thin the stream.
//! * A [partitioned](Disseminator::arm_partition) edge delays metadata but
//!   never loses it: cut deliveries park in per-edge retry queues and
//!   re-enter the cascade when the partition heals; queues whose receiver
//!   was replaced are drained by delivering to every live node (dedup
//!   absorbs the redundancy).
//!
//! Relay-side pruning is free: a relay only forwards records that were
//! *new* to it ([`AftNode::receive_peer_commit`] returns `false` for
//! duplicates and locally superseded records), which both terminates the
//! flood and drops stale versions mid-flight — safe because the newest
//! record of a key is never superseded anywhere and therefore always
//! floods the full graph.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aft_chaos::FaultSchedule;
use aft_core::{is_superseded, AftNode};
use aft_types::codec::encode_commit_record;
use aft_types::{TransactionId, TransactionRecord};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::broadcast::BroadcastStats;
use crate::fault_manager::FaultManager;

/// Salt for the gossip target stream (decorrelates target selection from
/// every other consumer of the cluster seed).
const GOSSIP_SALT: u64 = 0x6055_1000_7A26_E75B;

/// How commit metadata moves between nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every origin sends to every peer directly (§4.2 baseline).
    AllToAll,
    /// Flood along a k-ary spanning tree (k = `fanout`); n−1 edge
    /// crossings per record.
    Tree,
    /// Epidemic push to the ring successor plus `fanout − 1` seeded random
    /// peers; duplicates dedup at the receiver (infect-and-die).
    Gossip,
}

impl Topology {
    /// Every topology, in report order.
    pub const ALL: [Topology; 3] = [Topology::AllToAll, Topology::Tree, Topology::Gossip];

    /// A short label for reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::AllToAll => "all_to_all",
            Topology::Tree => "tree",
            Topology::Gossip => "gossip",
        }
    }

    /// Parses a [`Topology::label`].
    pub fn from_label(label: &str) -> Option<Topology> {
        Topology::ALL.into_iter().find(|t| t.label() == label)
    }
}

/// The one knob set for commit-metadata dissemination, selected from
/// `ClusterConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisseminationConfig {
    /// The dissemination topology.
    pub topology: Topology,
    /// Tree arity, or gossip push targets per fresh batch (ignored by
    /// all-to-all).
    pub fanout: usize,
    /// Maximum encoded bytes coalesced into one message; a bigger batch is
    /// split and each piece counted as its own message.
    pub batch_bytes: usize,
    /// How often the background loop runs a dissemination round (paper:
    /// 1 s). Slept on the *cluster clock*, so virtual-clock deployments run
    /// rounds at simulation speed.
    pub interval: Duration,
}

impl Default for DisseminationConfig {
    fn default() -> Self {
        DisseminationConfig {
            topology: Topology::AllToAll,
            fanout: 3,
            batch_bytes: 16 * 1024,
            interval: Duration::from_secs(1),
        }
    }
}

impl DisseminationConfig {
    /// The paper's flat broadcast (the default).
    pub fn all_to_all() -> Self {
        DisseminationConfig::default()
    }

    /// A k-ary spanning-tree relay.
    pub fn tree(fanout: usize) -> Self {
        DisseminationConfig {
            topology: Topology::Tree,
            fanout: fanout.max(1),
            ..DisseminationConfig::default()
        }
    }

    /// Epidemic gossip with `fanout` push targets.
    pub fn gossip(fanout: usize) -> Self {
        DisseminationConfig {
            topology: Topology::Gossip,
            fanout: fanout.max(1),
            ..DisseminationConfig::default()
        }
    }

    /// Sets the round interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the per-message batch budget.
    pub fn with_batch_bytes(mut self, batch_bytes: usize) -> Self {
        self.batch_bytes = batch_bytes.max(1);
        self
    }

    /// Sets the fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout.max(1);
        self
    }
}

/// A batch parked on a cut edge, waiting for the partition to heal.
#[derive(Debug)]
struct RetryEntry {
    sender: String,
    receiver: String,
    records: Vec<Arc<TransactionRecord>>,
}

/// An armed partition: the seeded edge-cut schedule plus the round at which
/// it was armed (cut windows are relative to arming, so a spec partitions
/// the *next* rounds regardless of how many rounds already ran).
#[derive(Debug)]
struct ArmedPartition {
    schedule: FaultSchedule,
    base_round: u64,
}

/// One batch mid-flood: `holder` has applied (or originated) `records` and
/// owes them to its topology neighbours; `from` is the tree edge the batch
/// arrived on (excluded when forwarding).
struct CascadeItem {
    holder: usize,
    from: Option<usize>,
    records: Vec<Arc<TransactionRecord>>,
}

/// The cluster's dissemination engine: drains every node's recent commits
/// each round and moves them through the configured [`Topology`].
#[derive(Debug)]
pub struct Disseminator {
    config: DisseminationConfig,
    seed: u64,
    round: AtomicU64,
    partition: Mutex<Option<ArmedPartition>>,
    retry: Mutex<Vec<RetryEntry>>,
    totals: Mutex<BroadcastStats>,
}

impl Disseminator {
    /// A disseminator over `config`; `seed` steers gossip target selection.
    pub fn new(config: DisseminationConfig, seed: u64) -> Self {
        Disseminator {
            config,
            seed,
            round: AtomicU64::new(0),
            partition: Mutex::new(None),
            retry: Mutex::new(Vec::new()),
            totals: Mutex::new(BroadcastStats::default()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> DisseminationConfig {
        self.config
    }

    /// Rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Statistics accumulated over every round since construction.
    pub fn totals(&self) -> BroadcastStats {
        *self.totals.lock()
    }

    /// Record deliveries currently parked on cut edges. Recovery drivers
    /// poll this: a trial has not converged while metadata is still parked.
    pub fn pending_retries(&self) -> usize {
        self.retry.lock().iter().map(|e| e.records.len()).sum()
    }

    /// Arms a seeded edge-cut schedule. Cut windows count rounds from *now*
    /// (the schedule's `[from_round, to_round)` is relative to arming).
    pub fn arm_partition(&self, schedule: FaultSchedule) {
        *self.partition.lock() = Some(ArmedPartition {
            schedule,
            base_round: self.round.load(Ordering::Relaxed),
        });
    }

    /// Disarms any armed partition (parked batches still drain normally).
    pub fn clear_partition(&self) {
        *self.partition.lock() = None;
    }

    fn is_cut(&self, round: u64, a: &str, b: &str) -> bool {
        let guard = self.partition.lock();
        match guard.as_ref() {
            Some(p) => p
                .schedule
                .edge_cut(round.saturating_sub(p.base_round), a, b),
            None => false,
        }
    }

    /// Runs one dissemination round over `nodes` and returns its statistics
    /// (also folded into [`Disseminator::totals`]).
    pub fn round(
        &self,
        nodes: &[Arc<AftNode>],
        fault_manager: Option<&FaultManager>,
    ) -> BroadcastStats {
        let round = self.round.fetch_add(1, Ordering::Relaxed);
        let mut stats = BroadcastStats::default();
        if nodes.is_empty() {
            return stats;
        }

        // Deterministic positions: sort by (length, id) so "aft-node-10"
        // follows "aft-node-9" and every node computes the same tree/ring.
        let mut order: Vec<usize> = (0..nodes.len()).collect();
        order.sort_by(|&a, &b| {
            let (ida, idb) = (nodes[a].node_id(), nodes[b].node_id());
            (ida.len(), ida).cmp(&(idb.len(), idb))
        });
        let by_pos: Vec<Arc<AftNode>> = order.into_iter().map(|i| Arc::clone(&nodes[i])).collect();
        let pos_of: HashMap<String, usize> = by_pos
            .iter()
            .enumerate()
            .map(|(pos, node)| (node.node_id().to_owned(), pos))
            .collect();

        let mut cascade: Vec<CascadeItem> = Vec::new();

        // Drain first so commits arriving during the round go to the next
        // one; the fault manager sees the unpruned stream before anything
        // else touches it (§4.2).
        for (pos, node) in by_pos.iter().enumerate() {
            let drained = node.drain_recent_commits();
            stats.drained += drained.len();
            if drained.is_empty() {
                continue;
            }
            if let Some(fm) = fault_manager {
                fm.observe_commits(drained.iter().cloned());
            }
            let outgoing: Vec<Arc<TransactionRecord>> = drained
                .into_iter()
                .filter(|record| {
                    let superseded = is_superseded(record, node.metadata());
                    if superseded {
                        stats.pruned += 1;
                    }
                    !superseded
                })
                .collect();
            if !outgoing.is_empty() {
                cascade.push(CascadeItem {
                    holder: pos,
                    from: None,
                    records: outgoing,
                });
            }
        }

        // The tree topology moves the drained seeds through one
        // convergecast/broadcast sweep — 2·(n−1) messages total. The seeds
        // are consumed here; what remains in `cascade` afterwards is only
        // healed retry re-injections, which take the generic flood below.
        if self.config.topology == Topology::Tree {
            let seeds = std::mem::take(&mut cascade);
            self.tree_sweep(round, &by_pos, seeds, &mut stats);
        }

        self.drain_retries(round, &by_pos, &pos_of, &mut cascade, &mut stats);

        // Cascade to quiescence in waves: each wave, every holder coalesces
        // all the batches it owes a given edge into ONE send, so a message
        // carries every record crossing that edge this wave (this is where
        // tree/gossip beat all-to-all on message count, not just on batch
        // size). Relays forward only records that were new to them, so each
        // record triggers at most one forward per node and the waves drain.
        let mut wave = cascade;
        while !wave.is_empty() {
            let mut sends: Vec<(usize, usize, Vec<Arc<TransactionRecord>>)> = Vec::new();
            let mut edge_slot: HashMap<(usize, usize), usize> = HashMap::new();
            for item in &wave {
                for target in self.targets(round, item.holder, item.from, by_pos.len()) {
                    let slot = *edge_slot.entry((item.holder, target)).or_insert_with(|| {
                        sends.push((item.holder, target, Vec::new()));
                        sends.len() - 1
                    });
                    sends[slot].2.extend(item.records.iter().cloned());
                }
            }
            let mut next = Vec::new();
            for (sender, target, records) in sends {
                if let Some(fresh) =
                    self.deliver(round, sender, target, &records, &by_pos, &mut stats)
                {
                    next.push(CascadeItem {
                        holder: target,
                        from: Some(sender),
                        records: fresh,
                    });
                }
            }
            wave = next;
        }

        let mut totals = self.totals.lock();
        *totals = totals.merge(stats);
        stats
    }

    /// One convergecast/broadcast sweep over the k-ary tree: ascending
    /// positions are a topological order (the parent `(p−1)/k` is always
    /// below `p`), so a reverse pass aggregates leaves-to-root — each node
    /// sends its own drains plus its children's fresh contributions upward
    /// in ONE message — and a forward pass distributes the root's aggregate
    /// back down, each child excluded from exactly what it sent up. Every
    /// record reaches every node once; cut edges park their whole batch on
    /// the retry queue.
    fn tree_sweep(
        &self,
        round: u64,
        by_pos: &[Arc<AftNode>],
        seeds: Vec<CascadeItem>,
        stats: &mut BroadcastStats,
    ) {
        let n = by_pos.len();
        if n <= 1 {
            return;
        }
        let k = self.config.fanout.max(1);
        // What each node announces upward: its own drains, then fresh
        // records its children pushed up.
        let mut contrib: Vec<Vec<Arc<TransactionRecord>>> = vec![Vec::new(); n];
        for seed in seeds {
            contrib[seed.holder].extend(seed.records);
        }
        // Which transaction ids each child edge carried upward (attempted,
        // fresh or not) — excluded from that child's downcast payload.
        let mut from_child: Vec<HashMap<usize, HashSet<TransactionId>>> = vec![HashMap::new(); n];
        // What each node received from its parent on the way down.
        let mut received_down: Vec<Vec<Arc<TransactionRecord>>> = vec![Vec::new(); n];

        // Upcast, leaves first.
        for p in (1..n).rev() {
            if contrib[p].is_empty() {
                continue;
            }
            let parent = (p - 1) / k;
            let batch = contrib[p].clone();
            if self.is_cut(round, by_pos[p].node_id(), by_pos[parent].node_id()) {
                stats.link_drops += batch.len();
                self.retry.lock().push(RetryEntry {
                    sender: by_pos[p].node_id().to_owned(),
                    receiver: by_pos[parent].node_id().to_owned(),
                    records: batch,
                });
                continue;
            }
            self.count_message(&batch, stats);
            let fresh: Vec<Arc<TransactionRecord>> = batch
                .iter()
                .filter(|record| by_pos[parent].receive_peer_commit(record))
                .cloned()
                .collect();
            stats.multicast += batch.len();
            stats.duplicates += batch.len() - fresh.len();
            from_child[parent].insert(p, batch.iter().map(|r| r.id).collect());
            contrib[parent].extend(fresh);
        }

        // Downcast, root first.
        for p in 0..n {
            let known: Vec<Arc<TransactionRecord>> = contrib[p]
                .iter()
                .chain(received_down[p].iter())
                .cloned()
                .collect();
            if known.is_empty() {
                continue;
            }
            for child in (k * p + 1)..=(k * p + k) {
                if child >= n {
                    break;
                }
                let exclude = from_child[p].get(&child);
                let payload: Vec<Arc<TransactionRecord>> = known
                    .iter()
                    .filter(|record| !exclude.is_some_and(|ids| ids.contains(&record.id)))
                    .cloned()
                    .collect();
                if payload.is_empty() {
                    continue;
                }
                if self.is_cut(round, by_pos[p].node_id(), by_pos[child].node_id()) {
                    stats.link_drops += payload.len();
                    self.retry.lock().push(RetryEntry {
                        sender: by_pos[p].node_id().to_owned(),
                        receiver: by_pos[child].node_id().to_owned(),
                        records: payload,
                    });
                    continue;
                }
                self.count_message(&payload, stats);
                let fresh: Vec<Arc<TransactionRecord>> = payload
                    .iter()
                    .filter(|record| by_pos[child].receive_peer_commit(record))
                    .cloned()
                    .collect();
                stats.multicast += payload.len();
                stats.duplicates += payload.len() - fresh.len();
                received_down[child] = fresh;
            }
        }
    }

    /// The positions `holder` owes a batch to this round.
    fn targets(&self, round: u64, holder: usize, from: Option<usize>, n: usize) -> Vec<usize> {
        if n <= 1 {
            return Vec::new();
        }
        match self.config.topology {
            Topology::AllToAll => (0..n).filter(|&p| p != holder).collect(),
            Topology::Tree => {
                let k = self.config.fanout.max(1);
                let mut neighbours = Vec::with_capacity(k + 1);
                if holder > 0 {
                    neighbours.push((holder - 1) / k);
                }
                for child in (k * holder + 1)..=(k * holder + k) {
                    if child < n {
                        neighbours.push(child);
                    }
                }
                neighbours.retain(|&p| Some(p) != from);
                neighbours
            }
            Topology::Gossip => {
                let fanout = self.config.fanout.max(1).min(n - 1);
                let mut targets = vec![(holder + 1) % n];
                let stream = (self.seed ^ GOSSIP_SALT)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(
                        (round ^ (holder as u64).rotate_left(32))
                            .wrapping_mul(0xBF58_476D_1CE4_E5B9),
                    );
                let mut rng = StdRng::seed_from_u64(stream);
                while targets.len() < fanout {
                    let pick = rng.gen_range(0..n);
                    if pick != holder && !targets.contains(&pick) {
                        targets.push(pick);
                    }
                }
                targets
            }
        }
    }

    /// Delivers `records` from position `sender` to position `target`,
    /// parking the batch on the retry queue if the edge is cut. For relay
    /// topologies, returns the freshly applied subset the target now owes
    /// its own neighbours (`None` when there is nothing to forward).
    fn deliver(
        &self,
        round: u64,
        sender: usize,
        target: usize,
        records: &[Arc<TransactionRecord>],
        by_pos: &[Arc<AftNode>],
        stats: &mut BroadcastStats,
    ) -> Option<Vec<Arc<TransactionRecord>>> {
        let sender_id = by_pos[sender].node_id();
        let receiver = &by_pos[target];
        if self.is_cut(round, sender_id, receiver.node_id()) {
            stats.link_drops += records.len();
            self.retry.lock().push(RetryEntry {
                sender: sender_id.to_owned(),
                receiver: receiver.node_id().to_owned(),
                records: records.to_vec(),
            });
            return None;
        }
        self.count_message(records, stats);
        let fresh: Vec<Arc<TransactionRecord>> = records
            .iter()
            .filter(|record| receiver.receive_peer_commit(record))
            .cloned()
            .collect();
        stats.multicast += records.len();
        stats.duplicates += records.len() - fresh.len();
        if !fresh.is_empty() && self.config.topology != Topology::AllToAll {
            Some(fresh)
        } else {
            None
        }
    }

    /// Counts one edge-send: the batch's encoded bytes, split into messages
    /// of at most `batch_bytes` each.
    fn count_message(&self, records: &[Arc<TransactionRecord>], stats: &mut BroadcastStats) {
        let bytes: usize = records
            .iter()
            .map(|record| encode_commit_record(record).len())
            .sum();
        stats.bytes += bytes as u64;
        stats.fanout_messages += bytes.div_ceil(self.config.batch_bytes.max(1)).max(1);
    }

    /// Re-attempts every parked batch: healed edges re-enter the cascade at
    /// the receiver; batches whose receiver is gone (the node was replaced)
    /// fall back to delivering to every live node — the same role the fault
    /// manager plays for §4.2 — so a partition can delay metadata but never
    /// lose it.
    fn drain_retries(
        &self,
        round: u64,
        by_pos: &[Arc<AftNode>],
        pos_of: &HashMap<String, usize>,
        cascade: &mut Vec<CascadeItem>,
        stats: &mut BroadcastStats,
    ) {
        let parked = std::mem::take(&mut *self.retry.lock());
        let mut still_parked = Vec::new();
        for entry in parked {
            match pos_of.get(&entry.receiver) {
                Some(&target) => {
                    if self.is_cut(round, &entry.sender, &entry.receiver) {
                        still_parked.push(entry);
                        continue;
                    }
                    stats.retried += entry.records.len();
                    self.count_message(&entry.records, stats);
                    let receiver = &by_pos[target];
                    let fresh: Vec<Arc<TransactionRecord>> = entry
                        .records
                        .iter()
                        .filter(|record| receiver.receive_peer_commit(record))
                        .cloned()
                        .collect();
                    stats.multicast += entry.records.len();
                    stats.duplicates += entry.records.len() - fresh.len();
                    if !fresh.is_empty() && self.config.topology != Topology::AllToAll {
                        cascade.push(CascadeItem {
                            holder: target,
                            from: pos_of.get(&entry.sender).copied(),
                            records: fresh,
                        });
                    }
                }
                None => {
                    // The receiver died holding the only copy routed its
                    // way; flood every live node instead (dedup absorbs).
                    stats.retried += entry.records.len();
                    for receiver in by_pos {
                        self.count_message(&entry.records, stats);
                        for record in &entry.records {
                            stats.multicast += 1;
                            if !receiver.receive_peer_commit(record) {
                                stats.duplicates += 1;
                            }
                        }
                    }
                }
            }
        }
        self.retry.lock().extend(still_parked);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_chaos::{ChaosSpec, PartitionChaos};
    use aft_core::NodeConfig;
    use aft_storage::{InMemoryStore, SharedStorage};
    use aft_types::clock::TickingClock;
    use aft_types::{Key, TransactionId};
    use bytes::Bytes;

    fn cluster_of(n: usize) -> (Vec<Arc<AftNode>>, SharedStorage) {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = TickingClock::shared(1, 1);
        let nodes = (0..n)
            .map(|i| {
                AftNode::with_clock(
                    NodeConfig::test()
                        .with_node_id(format!("node-{i}"))
                        .with_seed(i as u64),
                    storage.clone(),
                    clock.clone(),
                )
                .unwrap()
            })
            .collect();
        (nodes, storage)
    }

    fn commit_on(node: &Arc<AftNode>, key: &str, value: &str) -> TransactionId {
        let t = node.start_transaction();
        node.put(&t, Key::new(key), Bytes::copy_from_slice(value.as_bytes()))
            .unwrap();
        node.commit(&t).unwrap()
    }

    fn everyone_knows(nodes: &[Arc<AftNode>], ids: &[TransactionId]) {
        for node in nodes {
            for id in ids {
                assert!(
                    node.metadata().is_committed(id),
                    "{} should know {id:?}",
                    node.node_id()
                );
            }
        }
    }

    #[test]
    fn tree_floods_every_node_in_one_round() {
        for n in [2usize, 3, 7, 16, 33] {
            let (nodes, _s) = cluster_of(n);
            let d = Disseminator::new(DisseminationConfig::tree(3), 7);
            let mut ids = Vec::new();
            for (i, node) in nodes.iter().enumerate() {
                ids.push(commit_on(node, &format!("k{i}"), "v"));
            }
            let stats = d.round(&nodes, None);
            everyone_knows(&nodes, &ids);
            // Every record reaches each of the other n−1 nodes exactly
            // once...
            assert_eq!(stats.multicast, n * (n - 1), "n={n}");
            assert_eq!(stats.duplicates, 0, "the sweep has no redundancy");
            // ...and the convergecast/broadcast sweep spends exactly one
            // upcast per non-root node plus one downcast per edge: 2·(n−1)
            // messages for the whole all-origins round.
            assert_eq!(stats.fanout_messages, 2 * (n - 1), "n={n}");
        }
    }

    #[test]
    fn gossip_covers_every_node_and_dedups() {
        for n in [2usize, 5, 16, 40] {
            let (nodes, _s) = cluster_of(n);
            let d = Disseminator::new(DisseminationConfig::gossip(3), 42);
            let mut ids = Vec::new();
            for (i, node) in nodes.iter().enumerate() {
                ids.push(commit_on(node, &format!("k{i}"), "v"));
            }
            let stats = d.round(&nodes, None);
            everyone_knows(&nodes, &ids);
            // Infect-and-die: every node pushes a record at most once, so
            // deliveries per record are at most n·fanout.
            assert!(
                stats.fanout_messages <= n * n * 3,
                "n={n}: {} messages",
                stats.fanout_messages
            );
            // Fresh applications are exactly n−1 per record; the rest dedup.
            assert_eq!(stats.multicast - stats.duplicates, n * (n - 1), "n={n}");
        }
    }

    #[test]
    fn tree_and_gossip_send_fewer_messages_than_all_to_all() {
        let n = 24;
        let mut per_topology = Vec::new();
        for config in [
            DisseminationConfig::all_to_all(),
            DisseminationConfig::tree(3),
            DisseminationConfig::gossip(2),
        ] {
            let (nodes, _s) = cluster_of(n);
            let d = Disseminator::new(config, 5);
            for (i, node) in nodes.iter().enumerate() {
                commit_on(node, &format!("k{i}"), "v");
            }
            let stats = d.round(&nodes, None);
            per_topology.push((config.topology, stats.fanout_messages));
        }
        let flat = per_topology[0].1;
        assert_eq!(flat, n * (n - 1));
        for &(topology, messages) in &per_topology[1..] {
            assert!(
                messages < flat,
                "{} sent {messages}, not below all-to-all's {flat}",
                topology.label()
            );
        }
    }

    #[test]
    fn batches_coalesce_records_into_few_messages() {
        let (nodes, _s) = cluster_of(2);
        for i in 0..20 {
            commit_on(&nodes[0], &format!("k{i}"), "v");
        }
        // A generous batch budget coalesces all 20 records into one message
        // per edge; a 1-byte budget degenerates to one message per record's
        // bytes.
        let coalesced =
            Disseminator::new(DisseminationConfig::tree(2).with_batch_bytes(1 << 20), 0)
                .round(&nodes, None);
        assert_eq!(coalesced.multicast, 20);
        assert_eq!(coalesced.fanout_messages, 1);
        assert!(coalesced.bytes > 0);
    }

    #[test]
    fn partition_parks_deliveries_and_heals_with_zero_loss() {
        let n = 9;
        let (nodes, _s) = cluster_of(n);
        let d = Disseminator::new(DisseminationConfig::tree(2), 3);
        // Cut 60% of edges for rounds [0, 3) relative to arming.
        let spec = ChaosSpec::new(0xBEEF).partition(PartitionChaos::cut(0.6, 0, 3));
        d.arm_partition(spec.schedule());

        let mut ids = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            ids.push(commit_on(node, &format!("k{i}"), "v"));
        }
        let cut_round = d.round(&nodes, None);
        assert!(cut_round.link_drops > 0, "a 60% cut must drop something");
        assert!(d.pending_retries() > 0);

        // Run past the heal; parked batches drain and re-flood.
        let mut healed = BroadcastStats::default();
        for _ in 0..6 {
            healed = healed.merge(d.round(&nodes, None));
        }
        assert_eq!(d.pending_retries(), 0, "heal must drain the retry queues");
        assert!(healed.retried > 0);
        everyone_knows(&nodes, &ids);
    }

    #[test]
    fn parked_batches_for_a_replaced_node_flood_everyone() {
        let (nodes, storage) = cluster_of(4);
        let d = Disseminator::new(DisseminationConfig::tree(1), 1);
        // Arity-1 tree is a chain: node-0 → node-1 → node-2 → node-3. Cut
        // everything for one round so the chain parks its deliveries.
        let spec = ChaosSpec::new(1).partition(PartitionChaos::cut(1.0, 0, 1));
        d.arm_partition(spec.schedule());
        let id = commit_on(&nodes[0], "k", "v");
        d.round(&nodes, None);
        assert!(d.pending_retries() > 0);

        // Replace node-1 (the parked receiver) with a fresh identity before
        // the heal: the orphaned batch must flood the survivors instead.
        let clock = TickingClock::shared(1, 1);
        let replacement = AftNode::with_clock(
            NodeConfig::test().with_node_id("node-9"),
            storage.clone(),
            clock,
        )
        .unwrap();
        let mut survivors: Vec<Arc<AftNode>> = vec![
            Arc::clone(&nodes[0]),
            replacement,
            Arc::clone(&nodes[2]),
            Arc::clone(&nodes[3]),
        ];
        let stats = d.round(&survivors, None);
        assert!(stats.retried > 0);
        assert_eq!(d.pending_retries(), 0);
        survivors.remove(0); // origin knew it all along
        everyone_knows(&survivors, &[id]);
    }

    #[test]
    fn relays_prune_superseded_records_mid_flight() {
        let (nodes, _s) = cluster_of(8);
        let d = Disseminator::new(DisseminationConfig::tree(2), 0);
        // Two versions of one key from different origins: after the flood,
        // every node agrees on the newer version, and the superseded one is
        // not re-flooded by relays that already saw the newer.
        let _old = commit_on(&nodes[0], "hot", "v1");
        let new = commit_on(&nodes[1], "hot", "v2");
        d.round(&nodes, None);
        for node in &nodes {
            assert!(node.metadata().is_committed(&new));
            assert_eq!(
                node.metadata().latest_version_of(&Key::new("hot")).unwrap(),
                new,
                "{} must resolve to the newest version",
                node.node_id()
            );
        }
    }

    #[test]
    fn topology_labels_round_trip() {
        for topology in Topology::ALL {
            assert_eq!(Topology::from_label(topology.label()), Some(topology));
        }
        assert_eq!(Topology::from_label("ring"), None);
    }

    #[test]
    fn totals_accumulate_across_rounds() {
        let (nodes, _s) = cluster_of(3);
        let d = Disseminator::new(DisseminationConfig::all_to_all(), 0);
        commit_on(&nodes[0], "a", "1");
        d.round(&nodes, None);
        commit_on(&nodes[1], "b", "2");
        d.round(&nodes, None);
        let totals = d.totals();
        assert_eq!(totals.drained, 2);
        assert_eq!(totals.multicast, 4);
        assert_eq!(d.rounds(), 2);
    }
}
