//! Commit-set multicast between AFT nodes (§4, §4.1).
//!
//! Nodes commit without coordinating, so each node must learn which
//! transactions its peers have committed before it can serve their data. A
//! background thread on every node periodically gathers the commits made
//! locally since the last round and disseminates them to the peers; the same
//! (unpruned) stream also goes to the fault manager, which provides the
//! liveness backstop if a node dies between acknowledging a commit and
//! broadcasting it (§4.2).
//!
//! The pruning optimisation of §4.1: a transaction that is already locally
//! superseded (Algorithm 2) is omitted from the multicast entirely — for
//! contended workloads this removes most of the metadata traffic.
//!
//! How the records *move* is pluggable: [`broadcast_round`] runs the paper's
//! flat all-to-all exchange, and the [`Disseminator`](crate::Disseminator)
//! generalises it to spanning-tree and gossip topologies for large clusters
//! (see [`crate::dissemination`]).

use std::sync::Arc;

use aft_core::AftNode;

use crate::dissemination::{DisseminationConfig, Disseminator};
use crate::fault_manager::FaultManager;

/// Statistics from one dissemination round across all nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BroadcastStats {
    /// Commit records drained from the nodes this round.
    pub drained: usize,
    /// Record *deliveries* to peers (records × receivers that got them).
    pub multicast: usize,
    /// Records omitted because the sender already considered them superseded.
    pub pruned: usize,
    /// Node-to-node messages sent (one coalesced batch of at most
    /// `batch_bytes` encoded bytes per message) — the quantity that limits
    /// cluster scale.
    pub fanout_messages: usize,
    /// Encoded commit-record bytes put on the wire.
    pub bytes: u64,
    /// Deliveries the receiver already knew and deduplicated (gossip
    /// redundancy, retry floods).
    pub duplicates: usize,
    /// Deliveries dropped on a partitioned edge and parked for retry.
    pub link_drops: usize,
    /// Parked deliveries drained after an edge healed (or flooded to every
    /// node when the parked receiver had been replaced).
    pub retried: usize,
}

impl BroadcastStats {
    /// Merges two rounds' statistics.
    pub fn merge(self, other: BroadcastStats) -> BroadcastStats {
        BroadcastStats {
            drained: self.drained + other.drained,
            multicast: self.multicast + other.multicast,
            pruned: self.pruned + other.pruned,
            fanout_messages: self.fanout_messages + other.fanout_messages,
            bytes: self.bytes + other.bytes,
            duplicates: self.duplicates + other.duplicates,
            link_drops: self.link_drops + other.link_drops,
            retried: self.retried + other.retried,
        }
    }
}

/// Runs one flat all-to-all multicast round: every node drains its recent
/// commits, sends the unpruned stream to the fault manager, prunes
/// superseded records, and delivers the rest to every *other* node.
///
/// This is the paper's §4.2 exchange, kept as a standalone entry point for
/// tests and small deployments; clusters route through their configured
/// [`Disseminator`](crate::Disseminator) instead.
pub fn broadcast_round(
    nodes: &[Arc<AftNode>],
    fault_manager: Option<&FaultManager>,
) -> BroadcastStats {
    Disseminator::new(DisseminationConfig::all_to_all(), 0).round(nodes, fault_manager)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_core::NodeConfig;
    use aft_storage::{InMemoryStore, SharedStorage};
    use aft_types::clock::TickingClock;
    use aft_types::Key;
    use bytes::Bytes;

    fn cluster_of(n: usize) -> (Vec<Arc<AftNode>>, SharedStorage) {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = TickingClock::shared(1, 1);
        let nodes = (0..n)
            .map(|i| {
                AftNode::with_clock(
                    NodeConfig::test()
                        .with_node_id(format!("node-{i}"))
                        .with_seed(i as u64),
                    storage.clone(),
                    clock.clone(),
                )
                .unwrap()
            })
            .collect();
        (nodes, storage)
    }

    fn commit_on(node: &Arc<AftNode>, key: &str, value: &str) -> aft_types::TransactionId {
        let t = node.start_transaction();
        node.put(&t, Key::new(key), Bytes::copy_from_slice(value.as_bytes()))
            .unwrap();
        node.commit(&t).unwrap()
    }

    #[test]
    fn peers_learn_about_remote_commits() {
        let (nodes, _storage) = cluster_of(3);
        let id = commit_on(&nodes[0], "k", "from-node-0");

        // Before the broadcast, node 1 cannot see the commit.
        assert!(!nodes[1].metadata().is_committed(&id));
        let stats = broadcast_round(&nodes, None);
        assert_eq!(stats.drained, 1);
        // `multicast` counts deliveries: one record reaching two peers.
        assert_eq!(stats.multicast, 2);
        assert_eq!(stats.fanout_messages, 2);
        assert_eq!(stats.pruned, 0);
        assert_eq!(stats.duplicates, 0);
        assert!(stats.bytes > 0);
        assert!(nodes[1].metadata().is_committed(&id));
        assert!(nodes[2].metadata().is_committed(&id));

        // And node 1 can now read the data node 0 committed.
        let t = nodes[1].start_transaction();
        let value = nodes[1].get(&t, &Key::new("k")).unwrap().unwrap();
        assert_eq!(value, Bytes::from_static(b"from-node-0"));
    }

    #[test]
    fn superseded_commits_are_pruned_from_the_multicast() {
        let (nodes, _storage) = cluster_of(2);
        // Three successive versions of the same key on node 0, no broadcast in
        // between: the first two are locally superseded by the time the round
        // runs.
        let old1 = commit_on(&nodes[0], "hot", "v1");
        let old2 = commit_on(&nodes[0], "hot", "v2");
        let newest = commit_on(&nodes[0], "hot", "v3");

        let stats = broadcast_round(&nodes, None);
        assert_eq!(stats.drained, 3);
        assert_eq!(stats.pruned, 2);
        // One surviving record delivered to the single peer.
        assert_eq!(stats.multicast, 1);
        assert_eq!(stats.fanout_messages, 1);
        assert!(nodes[1].metadata().is_committed(&newest));
        assert!(!nodes[1].metadata().is_committed(&old1));
        assert!(!nodes[1].metadata().is_committed(&old2));
    }

    #[test]
    fn drained_commits_are_not_rebroadcast() {
        let (nodes, _storage) = cluster_of(2);
        commit_on(&nodes[0], "k", "v");
        let first = broadcast_round(&nodes, None);
        assert_eq!(first.drained, 1);
        let second = broadcast_round(&nodes, None);
        assert_eq!(second.drained, 0);
        assert_eq!(second.multicast, 0);
        assert_eq!(second.fanout_messages, 0);
    }

    #[test]
    fn all_to_all_messages_grow_quadratically() {
        // Every one of the n origins delivers its record to n−1 peers: the
        // flat exchange costs n·(n−1) messages per round — the quadratic
        // cost the tree/gossip topologies exist to remove.
        let (nodes, _storage) = cluster_of(6);
        for (i, node) in nodes.iter().enumerate() {
            commit_on(node, &format!("k{i}"), "v");
        }
        let stats = broadcast_round(&nodes, None);
        assert_eq!(stats.drained, 6);
        assert_eq!(stats.multicast, 6 * 5);
        assert_eq!(stats.fanout_messages, 6 * 5);
    }

    #[test]
    fn stats_merge() {
        let a = BroadcastStats {
            drained: 1,
            multicast: 1,
            pruned: 0,
            fanout_messages: 2,
            bytes: 100,
            duplicates: 1,
            link_drops: 0,
            retried: 0,
        };
        let b = BroadcastStats {
            drained: 4,
            multicast: 2,
            pruned: 2,
            fanout_messages: 3,
            bytes: 50,
            duplicates: 0,
            link_drops: 2,
            retried: 1,
        };
        assert_eq!(
            a.merge(b),
            BroadcastStats {
                drained: 5,
                multicast: 3,
                pruned: 2,
                fanout_messages: 5,
                bytes: 150,
                duplicates: 1,
                link_drops: 2,
                retried: 1,
            }
        );
    }
}
