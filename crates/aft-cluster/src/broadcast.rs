//! Commit-set multicast between AFT nodes (§4, §4.1).
//!
//! Nodes commit without coordinating, so each node must learn which
//! transactions its peers have committed before it can serve their data. A
//! background thread on every node periodically gathers the commits made
//! locally since the last round and multicasts them to all peers; the same
//! (unpruned) stream also goes to the fault manager, which provides the
//! liveness backstop if a node dies between acknowledging a commit and
//! broadcasting it (§4.2).
//!
//! The pruning optimisation of §4.1: a transaction that is already locally
//! superseded (Algorithm 2) is omitted from the multicast entirely — for
//! contended workloads this removes most of the metadata traffic.

use std::sync::Arc;

use aft_core::{is_superseded, AftNode};
use aft_types::TransactionRecord;

use crate::fault_manager::FaultManager;

/// Statistics from one multicast round across all nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BroadcastStats {
    /// Commit records drained from the nodes this round.
    pub drained: usize,
    /// Records actually multicast to peers.
    pub multicast: usize,
    /// Records omitted because the sender already considered them superseded.
    pub pruned: usize,
}

impl BroadcastStats {
    /// Merges two rounds' statistics.
    pub fn merge(self, other: BroadcastStats) -> BroadcastStats {
        BroadcastStats {
            drained: self.drained + other.drained,
            multicast: self.multicast + other.multicast,
            pruned: self.pruned + other.pruned,
        }
    }
}

/// Runs one multicast round: every node drains its recent commits, sends the
/// unpruned stream to the fault manager, prunes superseded records, and
/// delivers the rest to every *other* node.
pub fn broadcast_round(
    nodes: &[Arc<AftNode>],
    fault_manager: Option<&FaultManager>,
) -> BroadcastStats {
    let mut stats = BroadcastStats::default();

    // Drain first so that commits arriving during the round go to the next one.
    let mut per_node: Vec<(usize, Vec<Arc<TransactionRecord>>)> = Vec::with_capacity(nodes.len());
    for (index, node) in nodes.iter().enumerate() {
        let drained = node.drain_recent_commits();
        stats.drained += drained.len();
        per_node.push((index, drained));
    }

    for (sender_index, drained) in per_node {
        if drained.is_empty() {
            continue;
        }
        // The fault manager receives everything, before pruning (§4.2).
        if let Some(fm) = fault_manager {
            fm.observe_commits(drained.iter().cloned());
        }
        let sender = &nodes[sender_index];
        let outgoing: Vec<Arc<TransactionRecord>> = drained
            .into_iter()
            .filter(|record| {
                let superseded = is_superseded(record, sender.metadata());
                if superseded {
                    stats.pruned += 1;
                }
                !superseded
            })
            .collect();
        stats.multicast += outgoing.len();
        if outgoing.is_empty() {
            continue;
        }
        for (receiver_index, receiver) in nodes.iter().enumerate() {
            if receiver_index == sender_index {
                continue;
            }
            receiver.receive_peer_commits(outgoing.iter().cloned());
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_core::NodeConfig;
    use aft_storage::{InMemoryStore, SharedStorage};
    use aft_types::clock::TickingClock;
    use aft_types::Key;
    use bytes::Bytes;

    fn cluster_of(n: usize) -> (Vec<Arc<AftNode>>, SharedStorage) {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = TickingClock::shared(1, 1);
        let nodes = (0..n)
            .map(|i| {
                AftNode::with_clock(
                    NodeConfig::test()
                        .with_node_id(format!("node-{i}"))
                        .with_seed(i as u64),
                    storage.clone(),
                    clock.clone(),
                )
                .unwrap()
            })
            .collect();
        (nodes, storage)
    }

    fn commit_on(node: &Arc<AftNode>, key: &str, value: &str) -> aft_types::TransactionId {
        let t = node.start_transaction();
        node.put(&t, Key::new(key), Bytes::copy_from_slice(value.as_bytes()))
            .unwrap();
        node.commit(&t).unwrap()
    }

    #[test]
    fn peers_learn_about_remote_commits() {
        let (nodes, _storage) = cluster_of(3);
        let id = commit_on(&nodes[0], "k", "from-node-0");

        // Before the broadcast, node 1 cannot see the commit.
        assert!(!nodes[1].metadata().is_committed(&id));
        let stats = broadcast_round(&nodes, None);
        assert_eq!(stats.drained, 1);
        assert_eq!(stats.multicast, 1);
        assert_eq!(stats.pruned, 0);
        assert!(nodes[1].metadata().is_committed(&id));
        assert!(nodes[2].metadata().is_committed(&id));

        // And node 1 can now read the data node 0 committed.
        let t = nodes[1].start_transaction();
        let value = nodes[1].get(&t, &Key::new("k")).unwrap().unwrap();
        assert_eq!(value, Bytes::from_static(b"from-node-0"));
    }

    #[test]
    fn superseded_commits_are_pruned_from_the_multicast() {
        let (nodes, _storage) = cluster_of(2);
        // Three successive versions of the same key on node 0, no broadcast in
        // between: the first two are locally superseded by the time the round
        // runs.
        let old1 = commit_on(&nodes[0], "hot", "v1");
        let old2 = commit_on(&nodes[0], "hot", "v2");
        let newest = commit_on(&nodes[0], "hot", "v3");

        let stats = broadcast_round(&nodes, None);
        assert_eq!(stats.drained, 3);
        assert_eq!(stats.pruned, 2);
        assert_eq!(stats.multicast, 1);
        assert!(nodes[1].metadata().is_committed(&newest));
        assert!(!nodes[1].metadata().is_committed(&old1));
        assert!(!nodes[1].metadata().is_committed(&old2));
    }

    #[test]
    fn drained_commits_are_not_rebroadcast() {
        let (nodes, _storage) = cluster_of(2);
        commit_on(&nodes[0], "k", "v");
        let first = broadcast_round(&nodes, None);
        assert_eq!(first.drained, 1);
        let second = broadcast_round(&nodes, None);
        assert_eq!(second.drained, 0);
        assert_eq!(second.multicast, 0);
    }

    #[test]
    fn stats_merge() {
        let a = BroadcastStats {
            drained: 1,
            multicast: 1,
            pruned: 0,
        };
        let b = BroadcastStats {
            drained: 4,
            multicast: 2,
            pruned: 2,
        };
        assert_eq!(
            a.merge(b),
            BroadcastStats {
                drained: 5,
                multicast: 3,
                pruned: 2
            }
        );
    }
}
