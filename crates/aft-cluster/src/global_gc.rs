//! Global data garbage collection (§5.2).
//!
//! Local metadata GC (§5.1) lets each node forget superseded transactions,
//! but no single node may delete a transaction's *data* from shared storage —
//! a transaction running on another node might still read it. The global GC,
//! combined with the fault manager because it already receives every node's
//! commit stream, closes the loop:
//!
//! 1. It runs Algorithm 2 over its own commit view to find superseded
//!    transactions.
//! 2. It asks every node whether it has locally deleted those transactions'
//!    metadata.
//! 3. Only when *all* nodes agree does it delete the transaction's key
//!    versions and its commit record from storage, and tell the nodes to
//!    forget their tombstones.
//!
//! §5.2.1's caveat applies: because running transactions' read sets are not
//! globally known, deleting old versions can force a long-running transaction
//! into a retry (never into a fractured read). The `min_age` knob and
//! oldest-first deletion order mitigate this in practice.

use std::sync::Arc;

use aft_core::{is_superseded, AftNode};
use aft_storage::io::IoEngine;
use aft_types::{AftResult, TransactionRecord};

use crate::fault_manager::FaultManager;

/// Configuration of the global garbage collector.
#[derive(Debug, Clone, Copy)]
pub struct GlobalGcConfig {
    /// Maximum transactions to delete per round (bounds storage delete
    /// traffic; the paper dedicates separate cores to deletion).
    pub max_deletions_per_round: usize,
}

impl Default for GlobalGcConfig {
    fn default() -> Self {
        GlobalGcConfig {
            max_deletions_per_round: 10_000,
        }
    }
}

/// The outcome of one global GC round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalGcOutcome {
    /// Transactions the GC considered superseded this round.
    pub candidates: usize,
    /// Candidates skipped because some node had not yet deleted them locally.
    pub awaiting_nodes: usize,
    /// Transactions whose data and commit record were deleted from storage.
    pub deleted: usize,
    /// Individual storage keys deleted (data blobs plus commit records).
    pub storage_keys_deleted: usize,
}

/// The global garbage collector.
pub struct GlobalGc {
    config: GlobalGcConfig,
}

impl Default for GlobalGc {
    fn default() -> Self {
        Self::new(GlobalGcConfig::default())
    }
}

impl GlobalGc {
    /// Creates a global GC with the given configuration.
    pub fn new(config: GlobalGcConfig) -> Self {
        GlobalGc { config }
    }

    /// Runs one GC round against the fault manager's commit view.
    ///
    /// Candidate selection (Algorithm 2 plus the all-nodes-agree check) runs
    /// first, in memory; then every agreed transaction's deletion — one
    /// batched delete covering its key versions and its commit record — is
    /// submitted to the pipelined I/O engine and the round barriers on all
    /// of them, so N transactions' delete round trips overlap instead of
    /// summing (the paper dedicates cores to deletion for the same reason).
    pub fn run_round(
        &self,
        fault_manager: &FaultManager,
        nodes: &[Arc<AftNode>],
        io: &IoEngine,
    ) -> AftResult<GlobalGcOutcome> {
        let mut outcome = GlobalGcOutcome::default();
        let metadata = fault_manager.metadata();

        // Oldest first (§5.2.1): the oldest superseded data is the least
        // likely to still be needed by a running transaction.
        let mut deletable: Vec<Arc<TransactionRecord>> = Vec::new();
        for record in metadata.records_oldest_first() {
            if deletable.len() >= self.config.max_deletions_per_round {
                break;
            }
            if !is_superseded(&record, metadata) {
                continue;
            }
            outcome.candidates += 1;

            // Every node must have dropped the transaction from its metadata
            // cache: either it garbage collected it locally (and holds a
            // tombstone) or it never learned of it in the first place —
            // pruned multicasts mean a superseded commit may never reach some
            // peers (§4.1), and such peers can never serve reads from it.
            let all_deleted = nodes.iter().all(|node| {
                node.has_locally_deleted(&record.id) || !node.metadata().is_committed(&record.id)
            });
            if !all_deleted {
                outcome.awaiting_nodes += 1;
                continue;
            }
            deletable.push(record);
        }

        // One overlapped barrier of batched deletes for the whole round.
        let groups: Vec<Vec<String>> = deletable
            .iter()
            .map(|record| {
                let mut keys: Vec<String> =
                    record.key_versions().map(|kv| kv.storage_key()).collect();
                keys.push(record.storage_key());
                keys
            })
            .collect();
        let batch = io
            .submit_all(
                groups
                    .iter()
                    .map(|keys| aft_storage::io::StorageRequest::DeleteBatch(keys.clone())),
            )
            .wait_all();

        let mut first_error = None;
        for ((record, keys), result) in deletable.iter().zip(&groups).zip(batch.results) {
            match result {
                Ok(_) => {
                    outcome.storage_keys_deleted += keys.len();
                    metadata.remove(&record.id);
                    for node in nodes {
                        node.forget_deleted(&[record.id]);
                    }
                    outcome.deleted += 1;
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        match first_error {
            // A failed delete leaves the transaction's tombstones in place;
            // the next round retries it.
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broadcast::broadcast_round;
    use aft_core::{LocalGcConfig, NodeConfig};
    use aft_storage::io::IoConfig;
    use aft_storage::{InMemoryStore, SharedStorage, StorageEngine};
    use aft_types::clock::TickingClock;
    use aft_types::Key;
    use bytes::Bytes;

    fn cluster_of(n: usize) -> (Vec<Arc<AftNode>>, Arc<InMemoryStore>, SharedStorage) {
        let raw = InMemoryStore::shared();
        let storage: SharedStorage = raw.clone();
        let clock = TickingClock::shared(1, 1);
        let nodes = (0..n)
            .map(|i| {
                AftNode::with_clock(
                    NodeConfig::test()
                        .with_node_id(format!("node-{i}"))
                        .with_seed(i as u64),
                    storage.clone(),
                    clock.clone(),
                )
                .unwrap()
            })
            .collect();
        (nodes, raw, storage)
    }

    fn engine_over(storage: &SharedStorage) -> IoEngine {
        IoEngine::new(storage.clone(), IoConfig::pipelined())
    }

    fn commit_on(node: &Arc<AftNode>, key: &str, value: &str) -> aft_types::TransactionId {
        let t = node.start_transaction();
        node.put(&t, Key::new(key), Bytes::copy_from_slice(value.as_bytes()))
            .unwrap();
        node.commit(&t).unwrap()
    }

    #[test]
    fn superseded_data_is_deleted_once_all_nodes_agree() {
        let (nodes, raw, storage) = cluster_of(2);
        let io = engine_over(&storage);
        let fm = FaultManager::new();
        let gc = GlobalGc::default();

        // Node 0 writes three versions of the same key.
        let old = commit_on(&nodes[0], "hot", "v1");
        commit_on(&nodes[0], "hot", "v2");
        let newest = commit_on(&nodes[0], "hot", "v3");

        // Broadcast so peers and the fault manager know about the commits
        // (unpruned stream goes to the fault manager).
        broadcast_round(&nodes, Some(&fm));
        assert!(fm.metadata().is_committed(&old));

        // Before local GC on all nodes, the global GC must not delete.
        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.deleted, 0);
        assert!(outcome.awaiting_nodes >= 1);
        assert_eq!(raw.list_prefix("data/hot/").unwrap().len(), 3);

        // After every node locally collects, the data can be deleted.
        for node in &nodes {
            node.run_local_gc(&LocalGcConfig::aggressive());
        }
        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.deleted, 2, "two superseded versions removed");
        assert!(
            outcome.storage_keys_deleted >= 4,
            "2 data blobs + 2 commit records"
        );
        assert_eq!(raw.list_prefix("data/hot/").unwrap().len(), 1);
        assert_eq!(raw.list_prefix("commit/").unwrap().len(), 1);

        // The newest version survives and remains readable everywhere.
        for node in &nodes {
            let t = node.start_transaction();
            assert_eq!(
                node.get(&t, &Key::new("hot")).unwrap().unwrap(),
                Bytes::from_static(b"v3")
            );
        }
        assert!(fm.metadata().is_committed(&newest));

        // Tombstones were cleared, so a second round does nothing.
        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.deleted, 0);
    }

    #[test]
    fn non_superseded_transactions_are_never_candidates() {
        let (nodes, raw, storage) = cluster_of(2);
        let io = engine_over(&storage);
        let fm = FaultManager::new();
        let gc = GlobalGc::default();

        commit_on(&nodes[0], "a", "only-version");
        broadcast_round(&nodes, Some(&fm));
        for node in &nodes {
            node.run_local_gc(&LocalGcConfig::aggressive());
        }
        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.candidates, 0);
        assert_eq!(outcome.deleted, 0);
        assert_eq!(raw.list_prefix("data/").unwrap().len(), 1);
    }

    #[test]
    fn deletion_budget_is_respected() {
        let (nodes, _raw, storage) = cluster_of(1);
        let io = engine_over(&storage);
        let fm = FaultManager::new();
        let gc = GlobalGc::new(GlobalGcConfig {
            max_deletions_per_round: 2,
        });

        for i in 0..6 {
            commit_on(&nodes[0], "hot", &format!("v{i}"));
        }
        broadcast_round(&nodes, Some(&fm));
        nodes[0].run_local_gc(&LocalGcConfig::aggressive());

        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.deleted, 2);
        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.deleted, 2);
        let outcome = gc.run_round(&fm, &nodes, &io).unwrap();
        assert_eq!(outcome.deleted, 1, "five superseded versions in total");
    }
}
