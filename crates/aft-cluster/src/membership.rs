//! Cluster membership.
//!
//! The paper relies on Kubernetes to answer the one membership question its
//! protocols need: *which AFT nodes exist right now* (needed only by garbage
//! collection and the fault manager, never on the transaction critical path —
//! footnote 1 of §5.2). [`NodeRegistry`] is that source of truth for the
//! simulated cluster: nodes are registered when they join, marked failed when
//! they are killed, and replaced by standbys brought up by the fault manager.

use std::collections::HashMap;
use std::sync::Arc;

use aft_core::AftNode;
use parking_lot::RwLock;

/// Lifecycle state of a registered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving requests.
    Active,
    /// Killed or crashed; awaiting replacement.
    Failed,
    /// A replacement that is still downloading its container image and
    /// warming its metadata cache (§6.7); not yet serving requests.
    Starting,
}

#[derive(Clone)]
struct Member {
    node: Arc<AftNode>,
    state: NodeState,
}

/// The registry of AFT nodes in one deployment.
#[derive(Default)]
pub struct NodeRegistry {
    members: RwLock<HashMap<String, Member>>,
}

impl NodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(NodeRegistry::default())
    }

    /// Registers a node in the given state. Re-registering an existing node
    /// id replaces its entry.
    pub fn register(&self, node: Arc<AftNode>, state: NodeState) {
        self.members
            .write()
            .insert(node.node_id().to_owned(), Member { node, state });
    }

    /// Changes a node's state; returns false if the node is unknown.
    pub fn set_state(&self, node_id: &str, state: NodeState) -> bool {
        match self.members.write().get_mut(node_id) {
            Some(member) => {
                member.state = state;
                true
            }
            None => false,
        }
    }

    /// Removes a node from the registry entirely (it will never come back
    /// under this identity).
    pub fn deregister(&self, node_id: &str) -> bool {
        self.members.write().remove(node_id).is_some()
    }

    /// The state of a node, if registered.
    pub fn state_of(&self, node_id: &str) -> Option<NodeState> {
        self.members.read().get(node_id).map(|m| m.state)
    }

    /// The node registered under `node_id`, regardless of state.
    pub fn get(&self, node_id: &str) -> Option<Arc<AftNode>> {
        self.members
            .read()
            .get(node_id)
            .map(|m| Arc::clone(&m.node))
    }

    /// All nodes currently in the `Active` state, sorted by node id for
    /// deterministic iteration.
    pub fn active_nodes(&self) -> Vec<Arc<AftNode>> {
        let members = self.members.read();
        let mut active: Vec<_> = members
            .values()
            .filter(|m| m.state == NodeState::Active)
            .map(|m| Arc::clone(&m.node))
            .collect();
        active.sort_by(|a, b| a.node_id().cmp(b.node_id()));
        active
    }

    /// All registered nodes regardless of state, sorted by node id.
    pub fn all_nodes(&self) -> Vec<(Arc<AftNode>, NodeState)> {
        let members = self.members.read();
        let mut all: Vec<_> = members
            .values()
            .map(|m| (Arc::clone(&m.node), m.state))
            .collect();
        all.sort_by(|a, b| a.0.node_id().cmp(b.0.node_id()));
        all
    }

    /// The ids of nodes currently marked `Failed`.
    pub fn failed_node_ids(&self) -> Vec<String> {
        self.members
            .read()
            .iter()
            .filter(|(_, m)| m.state == NodeState::Failed)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.members
            .read()
            .values()
            .filter(|m| m.state == NodeState::Active)
            .count()
    }

    /// Total number of registered nodes.
    pub fn len(&self) -> usize {
        self.members.read().len()
    }

    /// Returns true if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.members.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_core::NodeConfig;
    use aft_storage::InMemoryStore;

    fn node(id: &str) -> Arc<AftNode> {
        AftNode::new(NodeConfig::test().with_node_id(id), InMemoryStore::shared()).unwrap()
    }

    #[test]
    fn register_and_query() {
        let registry = NodeRegistry::new();
        assert!(registry.is_empty());
        registry.register(node("b"), NodeState::Active);
        registry.register(node("a"), NodeState::Active);
        registry.register(node("c"), NodeState::Starting);

        assert_eq!(registry.len(), 3);
        assert_eq!(registry.active_count(), 2);
        let active: Vec<String> = registry
            .active_nodes()
            .iter()
            .map(|n| n.node_id().to_owned())
            .collect();
        assert_eq!(active, vec!["a", "b"], "sorted and filtered");
        assert_eq!(registry.state_of("c"), Some(NodeState::Starting));
        assert_eq!(registry.state_of("zz"), None);
    }

    #[test]
    fn state_transitions_and_failure_listing() {
        let registry = NodeRegistry::new();
        registry.register(node("a"), NodeState::Active);
        assert!(registry.set_state("a", NodeState::Failed));
        assert!(!registry.set_state("ghost", NodeState::Failed));
        assert_eq!(registry.active_count(), 0);
        assert_eq!(registry.failed_node_ids(), vec!["a"]);
        assert!(registry.set_state("a", NodeState::Active));
        assert!(registry.failed_node_ids().is_empty());
    }

    #[test]
    fn deregister_removes_entries() {
        let registry = NodeRegistry::new();
        registry.register(node("a"), NodeState::Active);
        assert!(registry.deregister("a"));
        assert!(!registry.deregister("a"));
        assert!(registry.is_empty());
    }

    #[test]
    fn all_nodes_returns_every_state() {
        let registry = NodeRegistry::new();
        registry.register(node("a"), NodeState::Active);
        registry.register(node("b"), NodeState::Failed);
        let all = registry.all_nodes();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, NodeState::Active);
        assert_eq!(all[1].1, NodeState::Failed);
    }
}
