//! The cluster orchestrator.
//!
//! [`Cluster`] wires together the node registry, the round-robin router, the
//! commit-set multicast, the fault manager, and the global garbage collector,
//! and can drive them with background threads at the paper's cadence (the
//! multicast runs "every 1 second", §4). Benchmarks and tests can instead
//! drive everything manually through [`Cluster::run_maintenance_round`] for
//! determinism.
//!
//! Node failure and replacement follow §6.7: a killed node stops receiving
//! new requests immediately, the fault manager notices the failure, and a
//! replacement node joins after a configurable delay that models downloading
//! the container image and warming the metadata cache (the paper observes
//! roughly 50 seconds for this, mitigable with pre-pulled images and warm
//! standbys).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use aft_core::{AftNode, CommitProbe, LocalGcConfig, NodeConfig};
use aft_storage::io::{IoConfig, IoEngine};
use aft_storage::SharedStorage;
use aft_types::{AftResult, SharedClock, SystemClock};
use parking_lot::Mutex;

use crate::broadcast::BroadcastStats;
use crate::dissemination::{DisseminationConfig, Disseminator};
use crate::fault_manager::FaultManager;
use crate::global_gc::{GlobalGc, GlobalGcConfig, GlobalGcOutcome};
use crate::membership::{NodeRegistry, NodeState};
use crate::router::RoundRobinRouter;

/// Configuration of a distributed AFT deployment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of AFT nodes to start with.
    pub initial_nodes: usize,
    /// Template for every node's configuration (node ids are filled in).
    pub node_template: NodeConfig,
    /// How commit metadata moves between nodes — topology, fanout, batch
    /// budget, and the round interval (paper: all-to-all every 1 s).
    pub dissemination: DisseminationConfig,
    /// Whether nodes run local metadata GC in the maintenance loop.
    pub local_gc_enabled: bool,
    /// Local GC settings.
    pub local_gc: LocalGcConfig,
    /// Whether the global data GC runs in the maintenance loop.
    pub global_gc_enabled: bool,
    /// Global GC settings.
    pub global_gc: GlobalGcConfig,
    /// How often the fault manager scans storage for lost commits and checks
    /// for failed nodes.
    pub fault_scan_interval: Duration,
    /// Delay before a replacement node becomes active (container download +
    /// metadata cache warm-up, §6.7).
    pub replacement_delay: Duration,
    /// Tuning of the cluster's own pipelined I/O engine, used by the fault
    /// manager's commit-set scans and the global GC's batched deletes (the
    /// nodes each have their own engine, configured via `node_template.io`).
    pub io: IoConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            initial_nodes: 1,
            node_template: NodeConfig::default(),
            dissemination: DisseminationConfig::default(),
            local_gc_enabled: true,
            local_gc: LocalGcConfig::default(),
            global_gc_enabled: true,
            global_gc: GlobalGcConfig::default(),
            fault_scan_interval: Duration::from_secs(5),
            replacement_delay: Duration::from_secs(50),
            io: IoConfig::pipelined(),
        }
    }
}

impl ClusterConfig {
    /// A configuration suitable for unit tests: zero latencies, instant
    /// replacement, manual maintenance.
    pub fn test(initial_nodes: usize) -> Self {
        ClusterConfig {
            initial_nodes,
            node_template: NodeConfig::test(),
            dissemination: DisseminationConfig::default().with_interval(Duration::from_millis(5)),
            fault_scan_interval: Duration::from_millis(5),
            replacement_delay: Duration::ZERO,
            ..ClusterConfig::default()
        }
    }

    /// Sets the number of initial nodes.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.initial_nodes = n;
        self
    }

    /// Sets the dissemination configuration.
    pub fn with_dissemination(mut self, dissemination: DisseminationConfig) -> Self {
        self.dissemination = dissemination;
        self
    }

    /// Sets every node's checkpoint policy (via the node template).
    pub fn with_checkpoint_policy(mut self, policy: aft_core::CheckpointPolicy) -> Self {
        self.node_template.checkpoint = policy;
        self
    }
}

/// Statistics from one maintenance round.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceStats {
    /// Multicast statistics for the round.
    pub broadcast: BroadcastStats,
    /// Commits recovered from storage by the fault manager this round.
    pub recovered_commits: usize,
    /// Transactions deleted locally across all nodes this round.
    pub local_gc_deleted: usize,
    /// Global GC outcome for the round (zero if disabled).
    pub global_gc: GlobalGcOutcome,
    /// Checkpoints published this round (nodes whose policy came due).
    pub checkpoints_written: usize,
    /// Checkpoint rounds that failed (e.g. a chaos kill fired mid-write);
    /// the node's previous checkpoint stays live.
    pub checkpoint_failures: usize,
    /// Commit records dropped by checkpoint-driven log compaction.
    pub compacted_records: u64,
}

/// A running AFT deployment: nodes, router, fault manager, and GC.
pub struct Cluster {
    config: ClusterConfig,
    storage: SharedStorage,
    /// Pipelined I/O engine for the cluster services (fault-manager scans,
    /// global GC deletes) — off the transaction critical path.
    io: IoEngine,
    clock: SharedClock,
    registry: Arc<NodeRegistry>,
    router: RoundRobinRouter,
    disseminator: Disseminator,
    fault_manager: Arc<FaultManager>,
    global_gc: GlobalGc,
    next_node_index: AtomicUsize,
    shutdown: Arc<AtomicBool>,
    background: Mutex<Vec<JoinHandle<()>>>,
    /// Optional probe handed to every node built after it is set, consulted
    /// at the checkpoint-bootstrap phase. Chaos controllers install a
    /// one-shot interrupter here to tear a replacement's bootstrap.
    bootstrap_interrupter: Mutex<Option<Arc<dyn CommitProbe>>>,
}

impl Cluster {
    /// Creates a cluster over `storage` with the real system clock.
    pub fn new(config: ClusterConfig, storage: SharedStorage) -> AftResult<Arc<Self>> {
        Self::with_clock(config, storage, SystemClock::shared())
    }

    /// Creates a cluster with an explicit clock.
    pub fn with_clock(
        config: ClusterConfig,
        storage: SharedStorage,
        clock: SharedClock,
    ) -> AftResult<Arc<Self>> {
        let registry = NodeRegistry::new();
        let cluster = Arc::new(Cluster {
            router: RoundRobinRouter::new(Arc::clone(&registry)),
            disseminator: Disseminator::new(config.dissemination, config.node_template.rng_seed),
            fault_manager: Arc::new(FaultManager::new()),
            global_gc: GlobalGc::new(config.global_gc),
            next_node_index: AtomicUsize::new(0),
            shutdown: Arc::new(AtomicBool::new(false)),
            background: Mutex::new(Vec::new()),
            bootstrap_interrupter: Mutex::new(None),
            io: IoEngine::new(storage.clone(), config.io),
            registry,
            storage,
            clock,
            config,
        });
        for _ in 0..cluster.config.initial_nodes {
            cluster.add_node()?;
        }
        Ok(cluster)
    }

    fn make_node(&self) -> AftResult<Arc<AftNode>> {
        let index = self.next_node_index.fetch_add(1, Ordering::Relaxed);
        let mut node_config = NodeConfig {
            node_id: format!("aft-node-{index}"),
            rng_seed: self.config.node_template.rng_seed ^ (index as u64).wrapping_mul(0x9E37),
            ..self.config.node_template.clone()
        };
        if let Some(probe) = self.bootstrap_interrupter.lock().clone() {
            node_config = node_config.with_bootstrap_probe(probe);
        }
        AftNode::with_clock(node_config, self.storage.clone(), self.clock.clone())
    }

    /// Installs a probe consulted at the checkpoint-bootstrap phase of every
    /// node built from now on (i.e. replacements). Chaos controllers use a
    /// one-shot interrupter to prove a torn bootstrap retries cleanly.
    pub fn set_bootstrap_interrupter(&self, probe: Arc<dyn CommitProbe>) {
        *self.bootstrap_interrupter.lock() = Some(probe);
    }

    /// Creates a new node, registers it as active, and returns it.
    pub fn add_node(&self) -> AftResult<Arc<AftNode>> {
        let node = self.make_node()?;
        self.registry.register(Arc::clone(&node), NodeState::Active);
        Ok(node)
    }

    /// Routes the next logical request to an active node.
    pub fn route(&self) -> AftResult<Arc<AftNode>> {
        self.router.route()
    }

    /// The node registry.
    pub fn registry(&self) -> &Arc<NodeRegistry> {
        &self.registry
    }

    /// The fault manager.
    pub fn fault_manager(&self) -> &Arc<FaultManager> {
        &self.fault_manager
    }

    /// The commit-metadata dissemination engine.
    pub fn disseminator(&self) -> &Disseminator {
        &self.disseminator
    }

    /// The shared storage backend.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// The cluster services' pipelined I/O engine.
    pub fn io(&self) -> &IoEngine {
        &self.io
    }

    /// All currently active nodes.
    pub fn active_nodes(&self) -> Vec<Arc<AftNode>> {
        self.registry.active_nodes()
    }

    /// Marks a node as failed (the Figure 10 experiment terminates a node
    /// this way). Returns false if the node id is unknown.
    pub fn kill_node(&self, node_id: &str) -> bool {
        self.registry.set_state(node_id, NodeState::Failed)
    }

    /// Detects failed nodes and brings up replacements, blocking for the
    /// configured replacement delay (container download + cache warm-up).
    /// Returns the number of nodes replaced. Replacements are independent:
    /// one failed construction (a chaos-injected bootstrap fault) does not
    /// block the others, and the call only errors when *nothing* could be
    /// replaced — partial progress reports the true count so recovery
    /// statistics never undercount brought-up standbys.
    pub fn replace_failed_nodes(&self) -> AftResult<usize> {
        let failed = self.registry.failed_node_ids();
        let mut replaced = 0;
        let mut first_error = None;
        for node_id in failed {
            // Build the replacement *before* deregistering the failed entry:
            // node construction can fail transiently, and the failed node
            // must stay listed so the next detection round retries it.
            let replacement = match self.make_node() {
                Ok(node) => node,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                    continue;
                }
            };
            self.registry.deregister(&node_id);
            // The replacement starts out warming up; it only serves requests
            // once activation completes.
            self.registry
                .register(Arc::clone(&replacement), NodeState::Starting);
            if !self.config.replacement_delay.is_zero() {
                std::thread::sleep(self.config.replacement_delay);
            }
            self.registry
                .set_state(replacement.node_id(), NodeState::Active);
            replaced += 1;
        }
        match first_error {
            Some(e) if replaced == 0 => Err(e),
            _ => Ok(replaced),
        }
    }

    /// Sum of transactions committed across all currently registered nodes.
    pub fn total_committed(&self) -> u64 {
        self.registry
            .all_nodes()
            .iter()
            .map(|(node, _)| node.stats().committed())
            .sum()
    }

    /// Sum of transactions garbage collected (metadata) across all nodes.
    pub fn total_gc_deleted(&self) -> u64 {
        self.registry
            .all_nodes()
            .iter()
            .map(|(node, _)| node.stats().gc_deleted())
            .sum()
    }

    /// Runs one maintenance round synchronously: multicast (with pruning),
    /// fault-manager storage scan, local GC on every node, and a global GC
    /// round. Tests and benchmarks drive this manually; the background
    /// threads call it on their intervals.
    pub fn run_maintenance_round(&self) -> AftResult<MaintenanceStats> {
        let nodes = self.registry.active_nodes();
        let mut stats = MaintenanceStats {
            broadcast: self.disseminator.round(&nodes, Some(&self.fault_manager)),
            ..MaintenanceStats::default()
        };
        stats.recovered_commits = self.fault_manager.scan_commit_set(&self.io, &nodes)?;
        if self.config.local_gc_enabled {
            for node in &nodes {
                let outcome = node.run_local_gc(&self.config.local_gc);
                stats.local_gc_deleted += outcome.deleted;
            }
        }
        if self.config.global_gc_enabled {
            stats.global_gc = self
                .global_gc
                .run_round(&self.fault_manager, &nodes, &self.io)?;
        }
        // Checkpoint rounds last, so a checkpoint published this round
        // already reflects the round's dissemination and recovery work. Log
        // compaction piggybacks only when global GC is on *and* no recovery
        // is in flight: a failed or still-warming node may yet need commit
        // records the checkpoint covers, so compaction waits for a fully
        // active membership (the GlobalGc / drive_recovery coordination).
        if self.config.node_template.checkpoint.is_enabled() {
            let membership_stable = self
                .registry
                .all_nodes()
                .iter()
                .all(|(_, state)| *state == NodeState::Active);
            let compact = self.config.global_gc_enabled && membership_stable;
            for node in &nodes {
                match node.maybe_checkpoint(compact) {
                    Ok(Some(outcome)) => {
                        stats.checkpoints_written += 1;
                        if let Some(compaction) = outcome.compaction {
                            stats.compacted_records +=
                                (compaction.deleted_covered + compaction.deleted_superseded) as u64;
                        }
                    }
                    Ok(None) => {}
                    // A chaos kill mid-checkpoint-write marks the node failed
                    // via its probe; the round itself keeps going and the
                    // node's previous checkpoint stays live.
                    Err(_) => stats.checkpoint_failures += 1,
                }
            }
        }
        Ok(stats)
    }

    /// Starts the background maintenance threads: one for the multicast /
    /// local-GC / global-GC loop and one for failure detection and
    /// replacement.
    pub fn start_background(self: &Arc<Self>) {
        let mut handles = self.background.lock();
        if !handles.is_empty() {
            return;
        }

        // Both loops pace themselves on the *cluster clock*: a wall clock
        // really sleeps, while virtual clocks advance simulated time and
        // yield, so dissemination benches run deterministic rounds at
        // simulation speed instead of stalling on wall-clock intervals.
        let maintenance = {
            let cluster = Arc::clone(self);
            std::thread::spawn(move || {
                while !cluster.shutdown.load(Ordering::Relaxed) {
                    let _ = cluster.run_maintenance_round();
                    cluster
                        .clock
                        .sleep_for(cluster.config.dissemination.interval);
                }
            })
        };
        let fault_detection = {
            let cluster = Arc::clone(self);
            std::thread::spawn(move || {
                while !cluster.shutdown.load(Ordering::Relaxed) {
                    let _ = cluster.replace_failed_nodes();
                    cluster.clock.sleep_for(cluster.config.fault_scan_interval);
                }
            })
        };
        handles.push(maintenance);
        handles.push(fault_detection);
    }

    /// Stops the background threads and waits for them to exit.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let handles = std::mem::take(&mut *self.background.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_storage::InMemoryStore;
    use aft_types::Key;
    use bytes::Bytes;

    fn test_cluster(nodes: usize) -> Arc<Cluster> {
        Cluster::with_clock(
            ClusterConfig::test(nodes),
            InMemoryStore::shared(),
            aft_types::clock::TickingClock::shared(1, 1),
        )
        .unwrap()
    }

    fn run_txn(node: &Arc<AftNode>, key: &str, value: &str) {
        let t = node.start_transaction();
        node.put(&t, Key::new(key), Bytes::copy_from_slice(value.as_bytes()))
            .unwrap();
        node.commit(&t).unwrap();
    }

    #[test]
    fn cluster_starts_the_requested_nodes() {
        let cluster = test_cluster(4);
        assert_eq!(cluster.active_nodes().len(), 4);
        assert_eq!(cluster.registry().active_count(), 4);
        let ids: Vec<String> = cluster
            .active_nodes()
            .iter()
            .map(|n| n.node_id().to_owned())
            .collect();
        assert_eq!(
            ids,
            vec!["aft-node-0", "aft-node-1", "aft-node-2", "aft-node-3"]
        );
    }

    #[test]
    fn commits_propagate_between_nodes_via_maintenance() {
        let cluster = test_cluster(3);
        let writer = cluster.route().unwrap();
        run_txn(&writer, "shared", "hello");

        cluster.run_maintenance_round().unwrap();

        for node in cluster.active_nodes() {
            let t = node.start_transaction();
            assert_eq!(
                node.get(&t, &Key::new("shared")).unwrap().unwrap(),
                Bytes::from_static(b"hello"),
                "node {} should see the commit",
                node.node_id()
            );
        }
        assert_eq!(cluster.total_committed(), 1);
    }

    #[test]
    fn killed_nodes_stop_receiving_requests_and_get_replaced() {
        let cluster = test_cluster(3);
        assert!(cluster.kill_node("aft-node-1"));
        assert!(!cluster.kill_node("no-such-node"));
        assert_eq!(cluster.registry().active_count(), 2);
        for _ in 0..10 {
            assert_ne!(cluster.route().unwrap().node_id(), "aft-node-1");
        }

        let replaced = cluster.replace_failed_nodes().unwrap();
        assert_eq!(replaced, 1);
        assert_eq!(cluster.registry().active_count(), 3);
        // The replacement has a fresh identity.
        assert!(cluster
            .active_nodes()
            .iter()
            .any(|n| n.node_id() == "aft-node-3"));
    }

    #[test]
    fn replacement_node_bootstraps_committed_state() {
        let cluster = test_cluster(2);
        let writer = cluster.route().unwrap();
        run_txn(&writer, "durable", "survives");
        cluster.run_maintenance_round().unwrap();

        // Kill the *other* node and also the writer, then replace both; the
        // replacements must learn the commit from storage (bootstrap).
        cluster.kill_node("aft-node-0");
        cluster.kill_node("aft-node-1");
        cluster.replace_failed_nodes().unwrap();
        assert_eq!(cluster.registry().active_count(), 2);

        for node in cluster.active_nodes() {
            let t = node.start_transaction();
            assert_eq!(
                node.get(&t, &Key::new("durable")).unwrap().unwrap(),
                Bytes::from_static(b"survives")
            );
        }
    }

    #[test]
    fn maintenance_round_garbage_collects_superseded_data() {
        let cluster = test_cluster(2);
        let node = cluster.route().unwrap();
        for i in 0..5 {
            run_txn(&node, "hot", &format!("v{i}"));
        }
        // First round: broadcast + local GC (delete metadata); second round:
        // global GC can delete data now that all nodes have tombstones.
        cluster.run_maintenance_round().unwrap();
        let stats = cluster.run_maintenance_round().unwrap();
        let data_keys = cluster.storage().list_prefix("data/hot/").unwrap();
        assert_eq!(data_keys.len(), 1, "only the newest version survives");
        assert!(stats.global_gc.deleted >= 1 || cluster.total_gc_deleted() >= 4);
    }

    #[test]
    fn background_threads_start_and_shut_down() {
        let cluster = test_cluster(2);
        cluster.start_background();
        cluster.start_background(); // idempotent
        let node = cluster.route().unwrap();
        run_txn(&node, "k", "v");
        std::thread::sleep(Duration::from_millis(50));
        cluster.shutdown();
        // After shutdown the commit has propagated to every node.
        for node in cluster.active_nodes() {
            assert!(node.metadata().latest_version_of(&Key::new("k")).is_some());
        }
    }

    #[test]
    fn maintenance_checkpoints_and_compacts_only_with_stable_membership() {
        use aft_core::CheckpointPolicy;
        let cluster = Cluster::with_clock(
            ClusterConfig::test(2).with_checkpoint_policy(CheckpointPolicy::every_commits(1)),
            InMemoryStore::shared(),
            aft_types::clock::TickingClock::shared(1, 1),
        )
        .unwrap();
        let node = cluster.route().unwrap();
        // Distinct keys: §5.2 global GC never deletes a key's newest (only)
        // record, so any commit-log shrinkage below is checkpoint compaction.
        for i in 0..6 {
            run_txn(&node, &format!("k{i}"), "v");
        }

        // With a failed node in the registry, checkpoints are written but
        // compaction is held back: a recovery in flight may still need the
        // covered records.
        cluster.kill_node("aft-node-1");
        let stats = cluster.run_maintenance_round().unwrap();
        assert!(stats.checkpoints_written >= 1);
        assert_eq!(stats.compacted_records, 0, "no compaction mid-recovery");
        assert_eq!(cluster.storage().list_prefix("commit/").unwrap().len(), 6);

        // Once the membership is fully active again, the next due checkpoint
        // compacts the covered log.
        cluster.replace_failed_nodes().unwrap();
        run_txn(&node, "k6", "v");
        let stats = cluster.run_maintenance_round().unwrap();
        assert!(stats.checkpoints_written >= 1);
        assert!(stats.compacted_records > 0, "stable membership compacts");
        let remaining = cluster.storage().list_prefix("commit/").unwrap().len();
        assert!(remaining < 7, "covered records dropped, saw {remaining}");

        // A cold node bootstrapping from checkpoint + tail still serves the
        // compacted-away commits.
        let fresh = cluster.add_node().unwrap();
        let t = fresh.start_transaction();
        assert_eq!(
            fresh.get(&t, &Key::new("k0")).unwrap().unwrap(),
            Bytes::from_static(b"v")
        );
    }

    #[test]
    fn route_fails_when_every_node_is_dead() {
        let cluster = test_cluster(1);
        cluster.kill_node("aft-node-0");
        assert!(cluster.route().is_err());
    }
}
