//! The stateless load balancer.
//!
//! The paper uses "a simple stateless load balancer ... to route requests to
//! aft nodes in a round-robin fashion" (§6). Each logical request is pinned
//! to one node for its whole lifetime (every function in the composition
//! sends its operations there), so the router is consulted once per request.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use aft_core::AftNode;
use aft_types::{AftError, AftResult};

use crate::membership::NodeRegistry;

/// A round-robin router over the registry's active nodes.
pub struct RoundRobinRouter {
    registry: Arc<NodeRegistry>,
    next: AtomicUsize,
}

impl RoundRobinRouter {
    /// Creates a router over `registry`.
    pub fn new(registry: Arc<NodeRegistry>) -> Self {
        RoundRobinRouter {
            registry,
            next: AtomicUsize::new(0),
        }
    }

    /// Picks the node for the next request.
    ///
    /// Returns [`AftError::Unavailable`] when no node is active — clients
    /// treat that as a retryable condition, matching the behaviour of a load
    /// balancer with an empty backend pool.
    pub fn route(&self) -> AftResult<Arc<AftNode>> {
        let active = self.registry.active_nodes();
        if active.is_empty() {
            return Err(AftError::Unavailable(
                "no active AFT nodes are registered".to_owned(),
            ));
        }
        let index = self.next.fetch_add(1, Ordering::Relaxed) % active.len();
        Ok(Arc::clone(&active[index]))
    }

    /// The registry this router draws from.
    pub fn registry(&self) -> &Arc<NodeRegistry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::NodeState;
    use aft_core::NodeConfig;
    use aft_storage::InMemoryStore;

    fn node(id: &str) -> Arc<AftNode> {
        AftNode::new(NodeConfig::test().with_node_id(id), InMemoryStore::shared()).unwrap()
    }

    #[test]
    fn cycles_through_active_nodes() {
        let registry = NodeRegistry::new();
        for id in ["a", "b", "c"] {
            registry.register(node(id), NodeState::Active);
        }
        let router = RoundRobinRouter::new(Arc::clone(&registry));
        let picks: Vec<String> = (0..6)
            .map(|_| router.route().unwrap().node_id().to_owned())
            .collect();
        assert_eq!(picks, vec!["a", "b", "c", "a", "b", "c"]);
    }

    #[test]
    fn skips_failed_nodes() {
        let registry = NodeRegistry::new();
        registry.register(node("a"), NodeState::Active);
        registry.register(node("b"), NodeState::Active);
        let router = RoundRobinRouter::new(Arc::clone(&registry));
        registry.set_state("a", NodeState::Failed);
        for _ in 0..4 {
            assert_eq!(router.route().unwrap().node_id(), "b");
        }
    }

    #[test]
    fn empty_pool_is_unavailable() {
        let registry = NodeRegistry::new();
        let router = RoundRobinRouter::new(registry);
        assert!(matches!(router.route(), Err(AftError::Unavailable(_))));
    }
}
