//! Property tests for commit-metadata dissemination.
//!
//! The claim the topologies make: tree and gossip are *pure transports* —
//! for any interleaving of commits and rounds, every node converges to the
//! same committed state the flat all-to-all broadcast produces (modulo
//! §4.1 supersedence, which is a property of the metadata cache, not the
//! transport), and the receiver-side dedup keeps redundant gossip
//! deliveries idempotent.

use std::collections::HashSet;
use std::sync::Arc;

use aft_cluster::{DisseminationConfig, Disseminator};
use aft_core::{AftNode, NodeConfig};
use aft_storage::{InMemoryStore, SharedStorage};
use aft_types::clock::TickingClock;
use aft_types::{Key, TransactionId};
use bytes::Bytes;
use proptest::prelude::*;

fn cluster_of(n: usize) -> Vec<Arc<AftNode>> {
    let storage: SharedStorage = InMemoryStore::shared();
    let clock = TickingClock::shared(1, 1);
    (0..n)
        .map(|i| {
            AftNode::with_clock(
                NodeConfig::test()
                    .with_node_id(format!("node-{i}"))
                    .with_seed(i as u64),
                storage.clone(),
                clock.clone(),
            )
            .unwrap()
        })
        .collect()
}

fn commit_on(node: &Arc<AftNode>, key: &str) -> TransactionId {
    let t = node.start_transaction();
    node.put(&t, Key::new(key), Bytes::from_static(b"v"))
        .unwrap();
    node.commit(&t).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For an arbitrary script of commits interleaved with dissemination
    /// rounds, every topology leaves every node knowing every commit —
    /// either directly committed, or legitimately superseded by a newer
    /// version of the same key (§4.1) — and every node resolves each key
    /// to the id of its last writer, exactly like all-to-all does.
    #[test]
    fn every_topology_converges_like_all_to_all(
        n in 2usize..12,
        fanout in 1usize..5,
        seed in any::<u64>(),
        script in proptest::collection::vec(
            proptest::collection::vec((any::<usize>(), 0usize..6), 0..5),
            1..4,
        ),
    ) {
        for config in [
            DisseminationConfig::all_to_all(),
            DisseminationConfig::tree(fanout),
            DisseminationConfig::gossip(fanout),
        ] {
            let nodes = cluster_of(n);
            let d = Disseminator::new(config, seed);
            let mut issued: Vec<(TransactionId, usize)> = Vec::new();
            for batch in &script {
                for &(node_pick, key_pick) in batch {
                    let node = &nodes[node_pick % n];
                    issued.push((commit_on(node, &format!("k{key_pick}")), key_pick));
                }
                d.round(&nodes, None);
            }
            // The winner of each key is its last writer in script order
            // (single-threaded commits on a ticking clock are strictly
            // ordered), identical no matter how the records travelled.
            let mut winner: std::collections::HashMap<usize, TransactionId> =
                std::collections::HashMap::new();
            for &(id, key_pick) in &issued {
                winner.insert(key_pick, id);
            }
            for node in &nodes {
                for (&key_pick, &won) in &winner {
                    prop_assert_eq!(
                        node.metadata().latest_version_of(&Key::new(format!("k{key_pick}"))),
                        Some(won),
                        "{} ({}): key k{} must resolve to its last writer",
                        node.node_id(), config.topology.label(), key_pick
                    );
                }
                for &(id, key_pick) in &issued {
                    prop_assert!(
                        node.metadata().is_committed(&id) || winner[&key_pick] > id,
                        "{} ({}): commit {:?} neither applied nor superseded",
                        node.node_id(), config.topology.label(), id
                    );
                }
            }
        }
    }

    /// Receiver-side dedup is idempotent: across an arbitrary sequence of
    /// (possibly repeated, possibly partial) deliveries of the same record
    /// set, each node fresh-applies a record exactly once — the fresh count
    /// equals the first-seen count, and everything else lands in the
    /// duplicate counter. This is what lets gossip over-deliver safely.
    #[test]
    fn repeated_deliveries_never_double_apply(
        n in 2usize..8,
        records_count in 1usize..10,
        deliveries in proptest::collection::vec(
            (any::<usize>(), any::<usize>(), any::<usize>()),
            1..40,
        ),
    ) {
        let nodes = cluster_of(n);
        for i in 0..records_count {
            commit_on(&nodes[0], &format!("k{i}"));
        }
        let records = nodes[0].drain_recent_commits();
        prop_assert_eq!(records.len(), records_count);

        // node 0 originated everything; it can never fresh-apply its own.
        let mut seen: Vec<HashSet<TransactionId>> = vec![HashSet::new(); n];
        seen[0] = records.iter().map(|r| r.id).collect();

        for (node_pick, start, len) in deliveries {
            let target = node_pick % n;
            let start = start % records.len();
            let slice = &records[start..records.len().min(start + 1 + len % records.len())];
            let expected_fresh = slice
                .iter()
                .filter(|r| seen[target].insert(r.id))
                .count();
            let fresh = nodes[target].receive_peer_commits(slice.iter().cloned());
            prop_assert_eq!(fresh, expected_fresh);
        }
        // A full re-delivery to every node is now a pure no-op wherever the
        // set is already complete, and the stats agree with the ledger.
        for (i, node) in nodes.iter().enumerate() {
            let missing = records.len() - seen[i].len();
            prop_assert_eq!(
                node.receive_peer_commits(records.iter().cloned()),
                missing
            );
            let stats = node.stats().snapshot();
            if i > 0 {
                prop_assert_eq!(stats.commits_received_from_peers as usize, records.len());
            }
        }
    }

    /// Gossip's ring edge makes one round sufficient for full coverage for
    /// any seed and fanout: the infected set is closed under ring
    /// succession, so it can only be everyone.
    #[test]
    fn gossip_one_round_coverage_for_any_seed(
        n in 2usize..24,
        fanout in 1usize..6,
        seed in any::<u64>(),
        origin in any::<usize>(),
    ) {
        let nodes = cluster_of(n);
        let id = commit_on(&nodes[origin % n], "k");
        let d = Disseminator::new(DisseminationConfig::gossip(fanout), seed);
        d.round(&nodes, None);
        for node in &nodes {
            prop_assert!(node.metadata().is_committed(&id), "{}", node.node_id());
        }
    }
}
