//! A simulated AWS S3.
//!
//! S3 is a throughput-oriented object store. For AFT's key-per-version
//! layout the properties that matter (§6.1.2) are:
//!
//! * high per-object latency — 4–10× slower than DynamoDB/Redis,
//! * very high write-latency variance for small objects (the p99 whiskers in
//!   Figure 3), and
//! * no batch API: every object PUT is its own request.
//!
//! The paper stops using S3 after §6.1.2 because the key-per-version layout
//! is a poor fit for it; the simulator intentionally preserves that poor fit.

use std::sync::Arc;

use aft_types::{AftResult, Value};

use crate::counters::{OpKind, StorageStats};
use crate::engine::StorageEngine;
use crate::latency::{LatencyModel, StripedSampler};
use crate::memory::MemoryMap;
use crate::profiles::ServiceProfile;
use crate::sharded::{stripe_of, DEFAULT_STRIPES};

/// A simulated S3 bucket.
pub struct SimS3 {
    map: MemoryMap,
    profile: ServiceProfile,
    sampler: StripedSampler,
    stats: Arc<StorageStats>,
}

impl SimS3 {
    /// Creates a simulated bucket with the default calibrated profile.
    pub fn new(latency: Arc<LatencyModel>) -> Arc<Self> {
        Self::with_profile(ServiceProfile::s3(), latency, 0x0000_5333)
    }

    /// Creates a simulated bucket with a custom profile and RNG seed.
    pub fn with_profile(
        profile: ServiceProfile,
        latency: Arc<LatencyModel>,
        seed: u64,
    ) -> Arc<Self> {
        Self::with_stripes(profile, latency, seed, DEFAULT_STRIPES)
    }

    /// Creates a simulated bucket with an explicit lock-stripe count for the
    /// data plane and the latency sampler.
    pub fn with_stripes(
        profile: ServiceProfile,
        latency: Arc<LatencyModel>,
        seed: u64,
        stripes: usize,
    ) -> Arc<Self> {
        let map = MemoryMap::with_stripes(stripes);
        let stats = StorageStats::new_shared();
        stats.attach_stripes(map.stripe_counters());
        Arc::new(SimS3 {
            sampler: StripedSampler::new(latency, seed, stripes),
            map,
            profile,
            stats,
        })
    }

    fn inject(&self, profile: &crate::latency::LatencyProfile, key: &str, payload_bytes: usize) {
        // Sample on the stripe's RNG (held only for the sample), sleep outside
        // it: concurrent requests to different stripes never serialise.
        let stripe = stripe_of(key, self.sampler.stripes());
        self.sampler.apply(profile, stripe, payload_bytes);
    }

    /// Number of objects currently stored.
    pub fn object_count(&self) -> usize {
        self.map.len()
    }
}

impl StorageEngine for SimS3 {
    fn name(&self) -> &'static str {
        "s3"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.stats.record_call(OpKind::Get);
        let value = self.map.get(key);
        let bytes = value.as_ref().map_or(0, |v| v.len());
        self.inject(&self.profile.read, key, bytes);
        if let Some(v) = &value {
            self.stats.record_read_bytes(v.len());
        }
        Ok(value)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.stats.record_call(OpKind::Put);
        self.stats.record_written_bytes(value.len());
        self.inject(&self.profile.write, key, value.len());
        self.map.put(key, value);
        Ok(())
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        // No batch API: every object is still a separate PUT request (the
        // per-key call counts below are what S3 bills). But a pipelined
        // client issues those PUTs concurrently and waits for the slowest
        // one, so the charged latency is the max of the samples, not their
        // sum. Sequential full-RTT charging survives only in the
        // explicitly-sequential wrapper ([`crate::io::SequentialEngine`]).
        let mut durations = Vec::with_capacity(items.len());
        for (k, v) in items {
            self.stats.record_call(OpKind::Put);
            self.stats.record_written_bytes(v.len());
            let stripe = stripe_of(&k, self.sampler.stripes());
            durations.push(self.sampler.sample(&self.profile.write, stripe, v.len()));
            self.map.put(&k, v);
        }
        self.sampler.model().finish_batch(&durations);
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.stats.record_call(OpKind::Delete);
        self.inject(&self.profile.delete, key, 0);
        self.map.remove(key);
        Ok(())
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        // S3 does offer DeleteObjects (up to 1000 keys); garbage collection
        // uses it, so model it as a single call.
        self.stats.record_call(OpKind::BatchDelete);
        self.inject(
            &self.profile.delete,
            keys.first().map_or("", String::as_str),
            0,
        );
        for k in keys {
            self.map.remove(k);
        }
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.stats.record_call(OpKind::List);
        self.inject(&self.profile.list, prefix, 0);
        Ok(self.map.keys_with_prefix(prefix))
    }

    fn supports_batch_put(&self) -> bool {
        false
    }

    fn supports_deferred_latency(&self) -> bool {
        // The sampled latency models the client-observed network round trip,
        // so an I/O engine may apply it as a deferred completion.
        true
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn bucket() -> Arc<SimS3> {
        SimS3::with_profile(ServiceProfile::zero(), LatencyModel::disabled(), 3)
    }

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn object_round_trip() {
        let s3 = bucket();
        s3.put("data/k/001", val("payload")).unwrap();
        assert_eq!(s3.get("data/k/001").unwrap().unwrap(), val("payload"));
        assert_eq!(s3.object_count(), 1);
        s3.delete("data/k/001").unwrap();
        assert!(s3.get("data/k/001").unwrap().is_none());
    }

    #[test]
    fn batch_put_degenerates_to_sequential_puts() {
        let s3 = bucket();
        s3.put_batch(vec![("a".into(), val("1")), ("b".into(), val("2"))])
            .unwrap();
        assert_eq!(s3.stats().calls(OpKind::Put), 2);
        assert_eq!(s3.stats().calls(OpKind::BatchPut), 0);
        assert!(!s3.supports_batch_put());
    }

    #[test]
    fn batch_put_charges_overlapped_latency_not_the_sum() {
        use crate::latency::{measure_cost, LatencyMode};
        use std::time::Duration;
        let model = LatencyModel::new(LatencyMode::Virtual, 1.0);
        let s3 = SimS3::with_profile(ServiceProfile::s3(), Arc::clone(&model), 11);
        let items: Vec<(String, Value)> = (0..8).map(|i| (format!("k{i}"), val("v"))).collect();
        let ((), batch_cost) = measure_cost(|| s3.put_batch(items).unwrap());
        // Per-key charging still counts eight PUT API calls...
        assert_eq!(s3.stats().calls(OpKind::Put), 8);
        // ...but a pipelined client pays the slowest sample, not the sum: the
        // batch must cost far less than eight median S3 writes.
        let sum_floor = Duration::from_micros((8.0 * 28_000.0 * 0.6) as u64);
        assert!(
            batch_cost < sum_floor,
            "batch cost {batch_cost:?} looks like sequential sum charging"
        );
        assert!(batch_cost >= Duration::from_millis(5), "one RTT at least");
        assert!(s3.supports_deferred_latency());
    }

    #[test]
    fn delete_batch_is_one_call() {
        let s3 = bucket();
        s3.put("a", val("1")).unwrap();
        s3.put("b", val("2")).unwrap();
        s3.delete_batch(&["a".into(), "b".into()]).unwrap();
        assert_eq!(s3.object_count(), 0);
        assert_eq!(s3.stats().calls(OpKind::BatchDelete), 1);
    }

    #[test]
    fn list_prefix_is_sorted() {
        let s3 = bucket();
        for k in ["commit/3", "commit/1", "commit/2"] {
            s3.put(k, val("x")).unwrap();
        }
        assert_eq!(
            s3.list_prefix("commit/").unwrap(),
            vec!["commit/1", "commit/2", "commit/3"]
        );
    }
}
