//! Backend selection and construction.
//!
//! The evaluation runs the same workloads over several storage services; the
//! harness selects them by [`BackendKind`] and builds them through
//! [`make_backend`] so every experiment shares one construction path (and one
//! place to configure latency scale and injection mode).

use std::sync::Arc;

use crate::dynamo::SimDynamo;
use crate::engine::SharedStorage;
use crate::latency::{LatencyMode, LatencyModel};
use crate::memory::InMemoryStore;
use crate::redis::SimRedis;
use crate::s3::SimS3;
use crate::service::SimShardedService;

/// The storage services the reproduction can run over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Zero-latency in-memory store (tests and protocol microbenchmarks).
    Memory,
    /// Simulated AWS S3.
    S3,
    /// Simulated AWS DynamoDB.
    DynamoDb,
    /// Simulated Redis cluster (AWS ElastiCache).
    Redis,
    /// Simulated sharded storage *service* with per-stripe single-threaded
    /// request lanes (Redis-like per-op cost); the backend the throughput
    /// scaling experiments bottleneck on. See [`SimShardedService`].
    ShardedService,
}

impl BackendKind {
    /// All benchmarkable backends, in the order the paper presents them.
    pub const EVALUATED: [BackendKind; 3] =
        [BackendKind::S3, BackendKind::DynamoDb, BackendKind::Redis];

    /// Human-readable label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Memory => "Memory",
            BackendKind::S3 => "S3",
            BackendKind::DynamoDb => "DynamoDB",
            BackendKind::Redis => "Redis",
            BackendKind::ShardedService => "ShardedService",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for building a simulated backend.
#[derive(Debug, Clone, Copy)]
pub struct BackendConfig {
    /// Which service to simulate.
    pub kind: BackendKind,
    /// Whether sampled latencies sleep or are only recorded.
    pub mode: LatencyMode,
    /// Global latency scale factor (1.0 = the calibrated full-scale values;
    /// the harness typically uses 0.02–0.1 to compress wall-clock time).
    pub scale: f64,
    /// RNG seed for the backend's latency sampler.
    pub seed: u64,
    /// Number of Redis shards (ignored by other backends).
    pub redis_shards: usize,
    /// Lock-stripe count for the backend's data plane and latency sampler
    /// (`1` reproduces the historical single-global-lock behaviour; Redis
    /// ignores this and stripes by its shard count).
    pub stripes: usize,
}

impl BackendConfig {
    /// A configuration with realistic sleeping latency at the given scale.
    pub fn simulated(kind: BackendKind, scale: f64) -> Self {
        BackendConfig {
            kind,
            mode: LatencyMode::Sleep,
            scale,
            seed: 0xAF7,
            redis_shards: crate::redis::DEFAULT_REDIS_SHARDS,
            stripes: crate::sharded::DEFAULT_STRIPES,
        }
    }

    /// A zero-latency configuration for unit tests.
    pub fn test(kind: BackendKind) -> Self {
        BackendConfig {
            kind,
            mode: LatencyMode::Virtual,
            scale: 0.0,
            seed: 0xAF7,
            redis_shards: crate::redis::DEFAULT_REDIS_SHARDS,
            stripes: crate::sharded::DEFAULT_STRIPES,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the lock-stripe count.
    pub fn with_stripes(mut self, stripes: usize) -> Self {
        self.stripes = stripes.max(1);
        self
    }
}

/// Builds a storage engine according to `config`.
pub fn make_backend(config: BackendConfig) -> SharedStorage {
    let latency = LatencyModel::new(config.mode, config.scale);
    match config.kind {
        BackendKind::Memory => Arc::new(InMemoryStore::with_stripes(config.stripes)),
        BackendKind::S3 => SimS3::with_stripes(
            crate::profiles::ServiceProfile::s3(),
            latency,
            config.seed,
            config.stripes,
        ),
        BackendKind::DynamoDb => SimDynamo::with_stripes(
            crate::profiles::ServiceProfile::dynamodb(),
            latency,
            config.seed,
            config.stripes,
        ),
        BackendKind::Redis => SimRedis::with_shards(
            config.redis_shards,
            crate::profiles::ServiceProfile::redis(),
            latency,
            config.seed,
        ),
        BackendKind::ShardedService => SimShardedService::with_stripes(
            crate::profiles::ServiceProfile::redis(),
            latency,
            config.seed,
            config.stripes,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn every_backend_kind_constructs_and_works() {
        for kind in [
            BackendKind::Memory,
            BackendKind::S3,
            BackendKind::DynamoDb,
            BackendKind::Redis,
            BackendKind::ShardedService,
        ] {
            let store = make_backend(BackendConfig::test(kind));
            store.put("k", Bytes::from_static(b"v")).unwrap();
            assert_eq!(
                store.get("k").unwrap().unwrap(),
                Bytes::from_static(b"v"),
                "backend {kind} failed a round trip"
            );
        }
    }

    #[test]
    fn labels_and_batch_support_match_the_paper() {
        assert_eq!(BackendKind::DynamoDb.label(), "DynamoDB");
        let dynamo = make_backend(BackendConfig::test(BackendKind::DynamoDb));
        let redis = make_backend(BackendConfig::test(BackendKind::Redis));
        let s3 = make_backend(BackendConfig::test(BackendKind::S3));
        assert!(dynamo.supports_batch_put());
        assert!(!redis.supports_batch_put());
        assert!(!s3.supports_batch_put());
    }

    #[test]
    fn sharded_service_is_selected_through_the_shared_path() {
        let svc = make_backend(BackendConfig::test(BackendKind::ShardedService).with_stripes(8));
        assert_eq!(svc.name(), "sharded-service");
        assert!(svc.supports_batch_put());
        assert!(!svc.supports_deferred_latency(), "lanes must stay blocking");
        for i in 0..16 {
            svc.put(&format!("k{i}"), Bytes::from_static(b"v")).unwrap();
        }
        let counts = svc.stats().stripe_counts();
        assert_eq!(counts.len(), 8, "stripes knob reaches the service lanes");
        assert_eq!(counts.iter().sum::<u64>(), 16);
    }

    #[test]
    fn stripe_override_reaches_every_backend() {
        for kind in [BackendKind::Memory, BackendKind::S3, BackendKind::DynamoDb] {
            let store = make_backend(BackendConfig::test(kind).with_stripes(4));
            for i in 0..32 {
                store
                    .put(&format!("k{i}"), Bytes::from_static(b"v"))
                    .unwrap();
            }
            let counts = store.stats().stripe_counts();
            assert_eq!(counts.len(), 4, "backend {kind} must expose 4 stripes");
            assert_eq!(counts.iter().sum::<u64>(), 32);
        }
        // Redis stripes by shard count, not by the stripes knob.
        let redis = make_backend(BackendConfig::test(BackendKind::Redis).with_stripes(4));
        assert_eq!(redis.stats().stripe_counts().len(), 2);
        // with_stripes clamps zero to one.
        assert_eq!(
            BackendConfig::test(BackendKind::Memory)
                .with_stripes(0)
                .stripes,
            1
        );
    }

    #[test]
    fn evaluated_list_is_s3_dynamo_redis() {
        assert_eq!(
            BackendKind::EVALUATED,
            [BackendKind::S3, BackendKind::DynamoDb, BackendKind::Redis]
        );
    }
}
