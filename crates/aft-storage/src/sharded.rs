//! Lock striping for the simulated backends' shared data plane.
//!
//! Every simulated backend used to funnel all key accesses through a single
//! `RwLock<BTreeMap>`, so multi-client experiments measured lock contention
//! instead of the protocol under test. [`ShardedMap`] replaces that single
//! lock with N-way lock striping: `hash(key) → stripe`, one `RwLock<BTreeMap>`
//! per stripe. Point operations (get/put/remove) touch exactly one stripe;
//! prefix scans and size queries visit all stripes and merge.
//!
//! Striping is invisible to callers — the map presents the exact same
//! observable behaviour as a single sorted map (a property the
//! `proptest_sharded` suite checks) — but commits from different clients that
//! hash to different stripes no longer serialise on one another.
//!
//! Per-stripe access counts are recorded in a [`StripeCounters`] that rolls up
//! into the backend's [`StorageStats`](crate::StorageStats), so experiments
//! can report how evenly the key space spreads across stripes.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use aft_types::Value;
use parking_lot::RwLock;

use crate::counters::StripeCounters;

// The striping function and default stripe count are canonical in
// `aft-chaos` (the gray-failure fault mode must target exactly the keys
// that share a placement stripe); re-exported here because this is where
// storage callers found them.
pub use aft_chaos::{stripe_of, DEFAULT_STRIPES};

/// A thread-safe sorted map of string keys to blobs, lock-striped N ways.
#[derive(Debug)]
pub struct ShardedMap {
    stripes: Box<[RwLock<BTreeMap<String, Value>>]>,
    counters: Arc<StripeCounters>,
}

impl Default for ShardedMap {
    fn default() -> Self {
        ShardedMap::new(DEFAULT_STRIPES)
    }
}

impl ShardedMap {
    /// Creates an empty map with `stripes` lock stripes (at least one).
    pub fn new(stripes: usize) -> Self {
        let stripes = stripes.max(1);
        ShardedMap {
            stripes: (0..stripes).map(|_| RwLock::new(BTreeMap::new())).collect(),
            counters: StripeCounters::new(stripes),
        }
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The per-stripe access counters (shared so they can be attached to a
    /// backend's [`StorageStats`](crate::StorageStats)).
    pub fn counters(&self) -> Arc<StripeCounters> {
        Arc::clone(&self.counters)
    }

    fn stripe(&self, key: &str) -> &RwLock<BTreeMap<String, Value>> {
        let idx = stripe_of(key, self.stripes.len());
        self.counters.record(idx);
        &self.stripes[idx]
    }

    /// Returns the blob stored at `key`.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.stripe(key).read().get(key).cloned()
    }

    /// Stores `value` at `key`, returning the previous blob if any.
    pub fn put(&self, key: &str, value: Value) -> Option<Value> {
        self.stripe(key).write().insert(key.to_owned(), value)
    }

    /// Removes `key`, returning the previous blob if any.
    pub fn remove(&self, key: &str) -> Option<Value> {
        self.stripe(key).write().remove(key)
    }

    /// Returns all keys starting with `prefix` in lexicographic order,
    /// merged across every stripe.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let mut keys = Vec::new();
        for stripe in &self.stripes {
            let map = stripe.read();
            keys.extend(
                map.range::<String, _>((Bound::Included(prefix.to_owned()), Bound::Unbounded))
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, _)| k.clone()),
            );
        }
        keys.sort_unstable();
        keys
    }

    /// Number of keys stored across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// Returns true if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.read().is_empty())
    }

    /// Total bytes of stored payloads (keys excluded).
    pub fn payload_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().values().map(|v| v.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn point_operations_round_trip_across_stripes() {
        let map = ShardedMap::new(8);
        for i in 0..100 {
            assert!(map.put(&format!("k{i}"), val(&format!("v{i}"))).is_none());
        }
        assert_eq!(map.len(), 100);
        for i in 0..100 {
            assert_eq!(map.get(&format!("k{i}")).unwrap(), val(&format!("v{i}")));
        }
        assert_eq!(map.remove("k0").unwrap(), val("v0"));
        assert!(map.get("k0").is_none());
        assert_eq!(map.len(), 99);
    }

    #[test]
    fn prefix_scan_merges_stripes_in_sorted_order() {
        let map = ShardedMap::new(4);
        for i in [7usize, 3, 11, 1, 9, 5] {
            map.put(&format!("commit/{i:03}"), val("x"));
        }
        map.put("data/other", val("y"));
        let listed = map.keys_with_prefix("commit/");
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
        assert_eq!(listed.len(), 6);
        assert!(map.keys_with_prefix("nope/").is_empty());
    }

    #[test]
    fn stripe_mapping_is_stable_and_covers_all_stripes() {
        let stripes = 8;
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let key = format!("key-{i}");
            assert_eq!(stripe_of(&key, stripes), stripe_of(&key, stripes));
            seen.insert(stripe_of(&key, stripes));
        }
        assert_eq!(seen.len(), stripes, "500 keys must hit every stripe");
    }

    #[test]
    fn counters_record_every_point_access() {
        let map = ShardedMap::new(4);
        map.put("a", val("1"));
        map.get("a");
        map.get("missing");
        map.remove("a");
        assert_eq!(map.counters().total(), 4);
        assert_eq!(map.counters().counts().len(), 4);
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let map = ShardedMap::new(0);
        assert_eq!(map.stripe_count(), 1);
        map.put("k", val("v"));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn payload_bytes_sums_across_stripes() {
        let map = ShardedMap::new(8);
        for i in 0..10 {
            map.put(&format!("k{i}"), val("abcd"));
        }
        assert_eq!(map.payload_bytes(), 40);
        assert!(!map.is_empty());
    }
}
