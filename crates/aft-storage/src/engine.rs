//! The storage-engine abstraction AFT builds on.
//!
//! AFT makes exactly one assumption about the storage layer: updates are
//! durable once acknowledged (§3.1). It does not require consistency
//! guarantees, visibility ordering, partitioning, or fixed membership. The
//! [`StorageEngine`] trait is therefore deliberately narrow: opaque blobs
//! keyed by strings, single and batched writes, deletes, and a prefix scan
//! (used only by bootstrap, the fault manager, and garbage collection — never
//! on the transaction critical path).

use std::sync::Arc;

use aft_types::{AftResult, Value};

use crate::counters::StorageStats;

/// A durable key-value store for opaque blobs.
///
/// All methods are synchronous and may block for the backend's simulated
/// latency. Implementations must be safe to call from many threads at once —
/// every AFT node thread, background multicast thread, and GC thread shares
/// one handle per backend.
pub trait StorageEngine: Send + Sync {
    /// A short human-readable backend name ("dynamodb", "redis", "s3", ...).
    fn name(&self) -> &'static str;

    /// Reads the blob stored at `key`, or `None` if the key does not exist.
    fn get(&self, key: &str) -> AftResult<Option<Value>>;

    /// Durably writes `value` at `key`, overwriting any previous blob.
    fn put(&self, key: &str, value: Value) -> AftResult<()>;

    /// Durably writes a set of key/value pairs.
    ///
    /// Backends that support a batch API (DynamoDB's `BatchWriteItem`)
    /// perform this in as few API calls as their limits allow; backends that
    /// do not (S3, cross-shard Redis) fall back to sequential single writes.
    /// Either way the call returns only once every item is durable.
    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()>;

    /// Deletes the blob at `key`. Deleting a missing key is not an error.
    fn delete(&self, key: &str) -> AftResult<()>;

    /// Deletes a set of keys, using a batch API where available.
    fn delete_batch(&self, keys: &[String]) -> AftResult<()>;

    /// Returns all keys that start with `prefix`, in lexicographic order.
    ///
    /// Because AFT's storage keys embed zero-padded commit timestamps,
    /// lexicographic order is also commit-time order for the Transaction
    /// Commit Set.
    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>>;

    /// Whether the backend can write several keys in one API call.
    fn supports_batch_put(&self) -> bool;

    /// Whether this backend's simulated latency may be *deferred*: executed
    /// inside [`crate::latency::capture_deferred`] so the sampled delay is
    /// applied as a timer-wheel completion instead of blocking the calling
    /// thread. True for the client-observed-latency simulators (S3, DynamoDB,
    /// Redis, memory), whose sleep only models a network round trip. False
    /// for backends that model *service-side occupancy* — e.g.
    /// [`crate::SimShardedService`], whose request lanes must stay busy for
    /// the service time — and false by default so unknown engines keep exact
    /// blocking semantics.
    fn supports_deferred_latency(&self) -> bool {
        false
    }

    /// Operation statistics for this backend instance.
    fn stats(&self) -> Arc<StorageStats>;
}

/// A shareable, dynamically dispatched storage engine handle.
pub type SharedStorage = Arc<dyn StorageEngine>;

/// Blanket helpers available on every storage engine.
pub trait StorageEngineExt: StorageEngine {
    /// Reads `key` and fails with [`aft_types::AftError::KeyNotFound`] if it
    /// does not exist.
    fn get_required(&self, key: &str) -> AftResult<Value> {
        self.get(key)?
            .ok_or_else(|| aft_types::AftError::KeyNotFound(aft_types::Key::new(key)))
    }

    /// Returns true if `key` exists.
    fn contains(&self, key: &str) -> AftResult<bool> {
        Ok(self.get(key)?.is_some())
    }
}

impl<T: StorageEngine + ?Sized> StorageEngineExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryStore;
    use aft_types::AftError;
    use bytes::Bytes;

    #[test]
    fn ext_helpers_work_through_dyn_handle() {
        let store: SharedStorage = Arc::new(InMemoryStore::new());
        store.put("a", Bytes::from_static(b"1")).unwrap();
        assert!(store.contains("a").unwrap());
        assert!(!store.contains("b").unwrap());
        assert_eq!(store.get_required("a").unwrap(), Bytes::from_static(b"1"));
        match store.get_required("missing") {
            Err(AftError::KeyNotFound(k)) => assert_eq!(k.as_str(), "missing"),
            other => panic!("expected KeyNotFound, got {other:?}"),
        }
    }
}
