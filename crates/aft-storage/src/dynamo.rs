//! A simulated AWS DynamoDB.
//!
//! The evaluation relies on three DynamoDB behaviours:
//!
//! * moderate single-digit-millisecond per-item latency with a visible tail,
//! * a batched write API (`BatchWriteItem`, 25 items per call) that AFT's
//!   commit protocol exploits (§6.1.1), and
//! * a transaction mode (`TransactWriteItems` / `TransactGetItems`) that
//!   serializes conflicting transactions and proactively aborts on conflict,
//!   used as the "DynamoDB Txns" baseline in Figures 3, 4 and Table 2.
//!
//! `SimDynamo` reproduces all three over an in-memory map plus the calibrated
//! latency profiles in [`profiles`](crate::profiles).

use std::collections::HashSet;
use std::sync::Arc;

use aft_types::{AftError, AftResult, Value};
use parking_lot::Mutex;

use crate::counters::{OpKind, StorageStats};
use crate::engine::StorageEngine;
use crate::latency::{LatencyModel, StripedSampler};
use crate::memory::MemoryMap;
use crate::profiles::ServiceProfile;
use crate::sharded::{stripe_of, DEFAULT_STRIPES};

/// The real service's `BatchWriteItem` limit.
pub const DYNAMO_BATCH_LIMIT: usize = 25;

/// The real service's limit on items per transactional call.
pub const DYNAMO_TRANSACT_LIMIT: usize = 100;

/// A simulated DynamoDB table.
pub struct SimDynamo {
    map: MemoryMap,
    profile: ServiceProfile,
    sampler: StripedSampler,
    stats: Arc<StorageStats>,
    /// Item keys currently locked by an in-flight transactional call; a
    /// concurrent transactional call touching any of them aborts with a
    /// conflict, mimicking DynamoDB's optimistic conflict detection.
    txn_locks: Mutex<HashSet<String>>,
}

impl SimDynamo {
    /// Creates a simulated DynamoDB with the default calibrated profile.
    pub fn new(latency: Arc<LatencyModel>) -> Arc<Self> {
        Self::with_profile(ServiceProfile::dynamodb(), latency, 0x00D1_DB00)
    }

    /// Creates a simulated DynamoDB with a custom profile and RNG seed.
    pub fn with_profile(
        profile: ServiceProfile,
        latency: Arc<LatencyModel>,
        seed: u64,
    ) -> Arc<Self> {
        Self::with_stripes(profile, latency, seed, DEFAULT_STRIPES)
    }

    /// Creates a simulated DynamoDB with an explicit lock-stripe count for
    /// the data plane and the latency sampler.
    pub fn with_stripes(
        profile: ServiceProfile,
        latency: Arc<LatencyModel>,
        seed: u64,
        stripes: usize,
    ) -> Arc<Self> {
        let map = MemoryMap::with_stripes(stripes);
        let stats = StorageStats::new_shared();
        stats.attach_stripes(map.stripe_counters());
        Arc::new(SimDynamo {
            sampler: StripedSampler::new(latency, seed, stripes),
            map,
            profile,
            stats,
            txn_locks: Mutex::new(HashSet::new()),
        })
    }

    fn inject(&self, profile: &crate::latency::LatencyProfile, key: &str, payload_bytes: usize) {
        // Sample on the stripe's RNG (held only for the sample), sleep outside
        // it: concurrent requests to different stripes never serialise.
        let stripe = stripe_of(key, self.sampler.stripes());
        self.sampler.apply(profile, stripe, payload_bytes);
    }

    /// Number of items currently stored; used by GC tests.
    pub fn item_count(&self) -> usize {
        self.map.len()
    }

    /// A handle exposing only the transactional API, used by the
    /// "DynamoDB Txns" baseline.
    pub fn transaction_mode(self: &Arc<Self>) -> DynamoTransactionMode {
        DynamoTransactionMode {
            table: Arc::clone(self),
        }
    }

    /// `TransactWriteItems`: writes all items atomically, aborting with a
    /// conflict error if any item is part of another in-flight transactional
    /// call.
    pub fn transact_write(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        if items.is_empty() {
            return Ok(());
        }
        if items.len() > DYNAMO_TRANSACT_LIMIT {
            return Err(AftError::InvalidRequest(format!(
                "transact_write supports at most {DYNAMO_TRANSACT_LIMIT} items, got {}",
                items.len()
            )));
        }
        self.stats.record_call(OpKind::TransactWrite);
        let keys: Vec<String> = items.iter().map(|(k, _)| k.clone()).collect();
        self.acquire_txn_locks(&keys)?;
        let payload: usize = items.iter().map(|(_, v)| v.len()).sum();
        self.inject(&self.profile.transact, &keys[0], payload);
        for (k, v) in items {
            self.stats.record_written_bytes(v.len());
            self.map.put(&k, v);
        }
        self.release_txn_locks(&keys);
        Ok(())
    }

    /// `TransactGetItems`: reads all keys atomically, aborting with a
    /// conflict error if any key is part of another in-flight transactional
    /// call.
    pub fn transact_read(&self, keys: &[String]) -> AftResult<Vec<Option<Value>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if keys.len() > DYNAMO_TRANSACT_LIMIT {
            return Err(AftError::InvalidRequest(format!(
                "transact_read supports at most {DYNAMO_TRANSACT_LIMIT} items, got {}",
                keys.len()
            )));
        }
        self.stats.record_call(OpKind::TransactRead);
        self.acquire_txn_locks(keys)?;
        self.inject(&self.profile.transact, &keys[0], 0);
        let values: Vec<Option<Value>> = keys.iter().map(|k| self.map.get(k)).collect();
        for v in values.iter().flatten() {
            self.stats.record_read_bytes(v.len());
        }
        self.release_txn_locks(keys);
        Ok(values)
    }

    fn acquire_txn_locks(&self, keys: &[String]) -> AftResult<()> {
        let mut locks = self.txn_locks.lock();
        if keys.iter().any(|k| locks.contains(k)) {
            self.stats.record_conflict();
            return Err(AftError::StorageConflict(
                "item is part of another in-flight transaction".to_owned(),
            ));
        }
        for k in keys {
            locks.insert(k.clone());
        }
        Ok(())
    }

    fn release_txn_locks(&self, keys: &[String]) {
        let mut locks = self.txn_locks.lock();
        for k in keys {
            locks.remove(k);
        }
    }
}

impl StorageEngine for SimDynamo {
    fn name(&self) -> &'static str {
        "dynamodb"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.stats.record_call(OpKind::Get);
        let value = self.map.get(key);
        let bytes = value.as_ref().map_or(0, |v| v.len());
        self.inject(&self.profile.read, key, bytes);
        if let Some(v) = &value {
            self.stats.record_read_bytes(v.len());
        }
        Ok(value)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.stats.record_call(OpKind::Put);
        self.stats.record_written_bytes(value.len());
        self.inject(&self.profile.write, key, value.len());
        self.map.put(key, value);
        Ok(())
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        // Each chunk of up to 25 items is one BatchWriteItem API call whose
        // cost grows mildly with the number of items in it.
        for chunk in items.chunks(DYNAMO_BATCH_LIMIT) {
            self.stats.record_call(OpKind::BatchPut);
            let payload: usize = chunk.iter().map(|(_, v)| v.len()).sum();
            let per_item = self.profile.batch_write_per_item_us * chunk.len() as f64;
            let mut profile = self.profile.batch_write_base;
            profile.median_us += per_item;
            profile.p99_us += per_item;
            self.inject(&profile, &chunk[0].0, payload);
            for (k, v) in chunk {
                self.stats.record_written_bytes(v.len());
                self.map.put(k, v.clone());
            }
        }
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.stats.record_call(OpKind::Delete);
        self.inject(&self.profile.delete, key, 0);
        self.map.remove(key);
        Ok(())
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        for chunk in keys.chunks(DYNAMO_BATCH_LIMIT) {
            self.stats.record_call(OpKind::BatchDelete);
            self.inject(&self.profile.batch_write_base, &chunk[0], 0);
            for k in chunk {
                self.map.remove(k);
            }
        }
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.stats.record_call(OpKind::List);
        self.inject(&self.profile.list, prefix, 0);
        Ok(self.map.keys_with_prefix(prefix))
    }

    fn supports_batch_put(&self) -> bool {
        true
    }

    fn supports_deferred_latency(&self) -> bool {
        // Client-observed network latency; safe to defer to a completion.
        true
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

/// A handle that exposes only the transactional API of a [`SimDynamo`] table.
///
/// The paper's "DynamoDB Txns" baseline groups each function's reads into one
/// `TransactGetItems` call and each request's writes into one
/// `TransactWriteItems` call (§6.1.2); this type is what that baseline client
/// holds.
#[derive(Clone)]
pub struct DynamoTransactionMode {
    table: Arc<SimDynamo>,
}

impl DynamoTransactionMode {
    /// Writes all items atomically or aborts with a conflict.
    pub fn write(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        self.table.transact_write(items)
    }

    /// Reads all keys atomically or aborts with a conflict.
    pub fn read(&self, keys: &[String]) -> AftResult<Vec<Option<Value>>> {
        self.table.transact_read(keys)
    }

    /// The underlying simulated table.
    pub fn table(&self) -> &Arc<SimDynamo> {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn store() -> Arc<SimDynamo> {
        SimDynamo::with_profile(ServiceProfile::zero(), LatencyModel::disabled(), 7)
    }

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn basic_engine_operations() {
        let d = store();
        d.put("k", val("v")).unwrap();
        assert_eq!(d.get("k").unwrap().unwrap(), val("v"));
        d.delete("k").unwrap();
        assert!(d.get("k").unwrap().is_none());
        assert!(d.supports_batch_put());
        assert_eq!(d.name(), "dynamodb");
    }

    #[test]
    fn batch_put_splits_into_25_item_chunks() {
        let d = store();
        let items: Vec<(String, Value)> = (0..60).map(|i| (format!("k{i}"), val("v"))).collect();
        d.put_batch(items).unwrap();
        assert_eq!(d.item_count(), 60);
        // 60 items -> 3 BatchWriteItem calls (25 + 25 + 10).
        assert_eq!(d.stats().calls(OpKind::BatchPut), 3);
    }

    #[test]
    fn transact_write_then_read_round_trips() {
        let d = store();
        d.transact_write(vec![("a".into(), val("1")), ("b".into(), val("2"))])
            .unwrap();
        let out = d
            .transact_read(&["a".into(), "b".into(), "c".into()])
            .unwrap();
        assert_eq!(out[0].as_ref().unwrap(), &val("1"));
        assert_eq!(out[1].as_ref().unwrap(), &val("2"));
        assert!(out[2].is_none());
    }

    #[test]
    fn transact_conflict_is_detected() {
        let d = store();
        // Simulate another in-flight transaction holding a lock on "a".
        d.acquire_txn_locks(&["a".to_owned()]).unwrap();
        let err = d.transact_write(vec![("a".into(), val("x"))]).unwrap_err();
        assert!(matches!(err, AftError::StorageConflict(_)));
        assert_eq!(d.stats().snapshot().conflicts, 1);
        d.release_txn_locks(&["a".to_owned()]);
        // After release the write succeeds.
        d.transact_write(vec![("a".into(), val("x"))]).unwrap();
    }

    #[test]
    fn transact_limits_are_enforced() {
        let d = store();
        let too_many: Vec<(String, Value)> = (0..=DYNAMO_TRANSACT_LIMIT)
            .map(|i| (format!("k{i}"), val("v")))
            .collect();
        assert!(matches!(
            d.transact_write(too_many),
            Err(AftError::InvalidRequest(_))
        ));
        let too_many_keys: Vec<String> = (0..=DYNAMO_TRANSACT_LIMIT)
            .map(|i| format!("k{i}"))
            .collect();
        assert!(d.transact_read(&too_many_keys).is_err());
    }

    #[test]
    fn transaction_mode_handle_works() {
        let d = store();
        let txn = d.transaction_mode();
        txn.write(vec![("x".into(), val("9"))]).unwrap();
        assert_eq!(
            txn.read(&["x".into()]).unwrap()[0].as_ref().unwrap(),
            &val("9")
        );
        assert_eq!(txn.table().item_count(), 1);
    }

    #[test]
    fn empty_transactions_are_noops() {
        let d = store();
        d.transact_write(Vec::new()).unwrap();
        assert!(d.transact_read(&[]).unwrap().is_empty());
        assert_eq!(d.stats().calls(OpKind::TransactWrite), 0);
    }

    #[test]
    fn list_prefix_sees_batch_writes() {
        let d = store();
        d.put_batch(vec![
            ("commit/1".into(), val("a")),
            ("commit/2".into(), val("b")),
            ("data/x".into(), val("c")),
        ])
        .unwrap();
        assert_eq!(d.list_prefix("commit/").unwrap().len(), 2);
    }
}
