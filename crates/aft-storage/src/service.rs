//! A simulated sharded storage *service* with per-stripe request lanes.
//!
//! The other simulators ([`SimS3`](crate::SimS3), [`SimDynamo`](crate::SimDynamo),
//! [`SimRedis`](crate::SimRedis)) model client-observed latency: they sample a
//! delay and sleep *outside* any data lock, so the simulated service has
//! unbounded internal parallelism. That is right for measuring request
//! latency, but it cannot answer the throughput question behind sharding:
//! *what happens when the storage service itself is the bottleneck?*
//!
//! [`SimShardedService`] models exactly that. It is the memory data plane
//! ([`ShardedMap`]-style striping) plus a single-threaded **request lane**
//! per stripe, like one Redis cluster shard's event loop: a request occupies
//! its stripe's lane for the whole sampled service time, so requests to the
//! same stripe queue while requests to different stripes proceed in
//! parallel. With one stripe the whole service serializes — the
//! single-global-lock baseline of the `fig7_throughput_scaling` experiment —
//! and with N stripes the service has N-way internal parallelism, which is
//! precisely what lock striping buys a storage backend.
//!
//! Because lane occupancy is simulated (sleeping) time, the throughput
//! effects of striping are observable even on a single-core host: the
//! experiment measures the architecture's parallelism, not the host's.

use std::collections::BTreeMap;
use std::sync::Arc;

use aft_types::{AftResult, Value};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::counters::{OpKind, StorageStats, StripeCounters};
use crate::engine::StorageEngine;
use crate::latency::{LatencyModel, LatencyProfile};
use crate::profiles::ServiceProfile;
use crate::sharded::stripe_of;

/// One service stripe: its keys, its RNG, and (implicitly) its request lane
/// — the mutex itself, held for the duration of each request's service time.
struct Lane {
    data: BTreeMap<String, Value>,
    rng: StdRng,
}

/// A simulated storage service with N single-threaded request lanes.
pub struct SimShardedService {
    lanes: Box<[Mutex<Lane>]>,
    profile: ServiceProfile,
    latency: Arc<LatencyModel>,
    stats: Arc<StorageStats>,
    counters: Arc<StripeCounters>,
}

impl SimShardedService {
    /// Creates a service with `stripes` lanes (clamped to ≥ 1).
    pub fn with_stripes(
        profile: ServiceProfile,
        latency: Arc<LatencyModel>,
        seed: u64,
        stripes: usize,
    ) -> Arc<Self> {
        let stripes = stripes.max(1);
        let stats = StorageStats::new_shared();
        let counters = StripeCounters::new(stripes);
        stats.attach_stripes(Arc::clone(&counters));
        Arc::new(SimShardedService {
            lanes: (0..stripes)
                .map(|i| {
                    Mutex::new(Lane {
                        data: BTreeMap::new(),
                        rng: StdRng::seed_from_u64(seed.wrapping_add(i as u64)),
                    })
                })
                .collect(),
            profile,
            latency,
            stats,
            counters,
        })
    }

    /// A default-profile service: Redis-like per-operation cost.
    pub fn redis_like(latency: Arc<LatencyModel>, stripes: usize) -> Arc<Self> {
        Self::with_stripes(ServiceProfile::redis(), latency, 0x5E4_71CE, stripes)
    }

    /// Number of request lanes.
    pub fn stripe_count(&self) -> usize {
        self.lanes.len()
    }

    /// Total keys stored across all lanes.
    pub fn item_count(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().data.len()).sum()
    }

    /// Runs `op` on `key`'s lane after occupying the lane for the sampled
    /// service time of `profile` — the whole point of this simulator: the
    /// lane is busy (locked) while the request is being serviced.
    fn serve<T>(
        &self,
        key: &str,
        profile: &LatencyProfile,
        payload_bytes: usize,
        op: impl FnOnce(&mut BTreeMap<String, Value>) -> T,
    ) -> T {
        let stripe = stripe_of(key, self.lanes.len());
        self.counters.record(stripe);
        let mut lane = self.lanes[stripe].lock();
        let duration = self.latency.sample(profile, &mut lane.rng, payload_bytes);
        // Sleep (or record, in Virtual mode) while holding the lane: this
        // request occupies the stripe's single-threaded executor.
        self.latency.finish(duration);
        op(&mut lane.data)
    }
}

impl StorageEngine for SimShardedService {
    fn name(&self) -> &'static str {
        "sharded-service"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.stats.record_call(OpKind::Get);
        let value = self.serve(key, &self.profile.read, 0, |data| data.get(key).cloned());
        if let Some(v) = &value {
            self.stats.record_read_bytes(v.len());
        }
        Ok(value)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.stats.record_call(OpKind::Put);
        self.stats.record_written_bytes(value.len());
        let len = value.len();
        self.serve(key, &self.profile.write, len, |data| {
            data.insert(key.to_owned(), value)
        });
        Ok(())
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        // One service visit per stripe the batch touches: the batch is split
        // by the cluster client, and each stripe's sub-batch costs the batch
        // base plus a per-item increment (cheaper than one visit per key).
        // Like a real cluster client, sub-batches for different stripes are
        // issued concurrently (pipelined), so a batch occupies each lane
        // once, not the caller for the sum of all lanes.
        let mut by_stripe: Vec<Vec<(String, Value)>> = Vec::new();
        by_stripe.resize_with(self.lanes.len(), Vec::new);
        for (k, v) in items {
            by_stripe[stripe_of(&k, self.lanes.len())].push((k, v));
        }
        let write_group = |group: Vec<(String, Value)>| {
            let Some((first_key, _)) = group.first() else {
                return;
            };
            self.stats.record_call(OpKind::BatchPut);
            let payload: usize = group.iter().map(|(_, v)| v.len()).sum();
            let per_item = self.profile.batch_write_per_item_us * group.len() as f64;
            let mut profile = self.profile.batch_write_base;
            profile.median_us += per_item;
            profile.p99_us += per_item;
            let first_key = first_key.clone();
            self.serve(&first_key, &profile, payload, |data| {
                for (k, v) in group {
                    self.stats.record_written_bytes(v.len());
                    data.insert(k, v);
                }
            });
        };
        let mut groups: Vec<Vec<(String, Value)>> =
            by_stripe.into_iter().filter(|g| !g.is_empty()).collect();
        if groups.len() <= 1 {
            if let Some(group) = groups.pop() {
                write_group(group);
            }
            return Ok(());
        }
        let write_group = &write_group;
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(move || write_group(group));
            }
        });
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.stats.record_call(OpKind::Delete);
        self.serve(key, &self.profile.delete, 0, |data| data.remove(key));
        Ok(())
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        for k in keys {
            self.delete(k)?;
        }
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        // Scatter-gather scan; charged once, off the transaction hot path
        // (bootstrap, fault manager, GC only).
        self.stats.record_call(OpKind::List);
        let mut keys = Vec::new();
        for (i, lane) in self.lanes.iter().enumerate() {
            self.counters.record(i);
            let mut lane = lane.lock();
            if i == 0 {
                // Charge the scan once, on lane 0 only: sampling on every
                // lane would perturb each lane's deterministic RNG stream
                // with the frequency of off-hot-path scans.
                let duration = self.latency.sample(&self.profile.list, &mut lane.rng, 0);
                self.latency.finish(duration);
            }
            keys.extend(
                lane.data
                    .range(prefix.to_owned()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, _)| k.clone()),
            );
        }
        keys.sort_unstable();
        Ok(keys)
    }

    fn supports_batch_put(&self) -> bool {
        true
    }

    fn supports_deferred_latency(&self) -> bool {
        // Deliberately false (the trait default, restated for emphasis): the
        // whole point of this simulator is that a request *occupies its lane*
        // for the service time. Deferring the sleep to a timer wheel would
        // free the lane early and erase the queueing the scaling experiments
        // measure.
        false
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyMode;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn quiet(stripes: usize) -> Arc<SimShardedService> {
        SimShardedService::with_stripes(
            ServiceProfile::zero(),
            LatencyModel::disabled(),
            1,
            stripes,
        )
    }

    #[test]
    fn round_trip_and_prefix_scan() {
        let svc = quiet(4);
        for i in 0..20 {
            svc.put(&format!("data/k/{i:02}"), val("v")).unwrap();
        }
        assert_eq!(svc.item_count(), 20);
        assert_eq!(svc.get("data/k/00").unwrap().unwrap(), val("v"));
        let listed = svc.list_prefix("data/").unwrap();
        assert_eq!(listed.len(), 20);
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
        svc.delete("data/k/00").unwrap();
        assert!(svc.get("data/k/00").unwrap().is_none());
    }

    #[test]
    fn batch_put_visits_each_stripe_once() {
        let svc = quiet(4);
        let items: Vec<(String, Value)> = (0..40).map(|i| (format!("k{i}"), val("v"))).collect();
        svc.put_batch(items).unwrap();
        assert_eq!(svc.item_count(), 40);
        // At most one BatchPut call per stripe.
        assert!(svc.stats().calls(OpKind::BatchPut) <= 4);
        assert_eq!(svc.stats().stripe_counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn lanes_serialize_same_stripe_and_parallelize_different_stripes() {
        // With one lane, two concurrent ops must take ~2x the service time;
        // with many lanes they overlap. Generous bounds keep this stable on
        // loaded CI hosts.
        let profile = ServiceProfile {
            read: LatencyProfile::new(20_000.0, 20_000.0),
            ..ServiceProfile::zero()
        };
        let serial = SimShardedService::with_stripes(
            profile,
            LatencyModel::new(LatencyMode::Sleep, 1.0),
            1,
            1,
        );
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..2 {
                let svc = Arc::clone(&serial);
                scope.spawn(move || svc.get(&format!("k{t}")).unwrap());
            }
        });
        let one_lane = start.elapsed();
        assert!(
            one_lane >= Duration::from_millis(36),
            "two 20ms requests on one lane must serialize, took {one_lane:?}"
        );

        let parallel = SimShardedService::with_stripes(
            profile,
            LatencyModel::new(LatencyMode::Sleep, 1.0),
            1,
            16,
        );
        // Pick two keys on different stripes.
        let k1 = "key-0".to_owned();
        let k2 = (1..100)
            .map(|i| format!("key-{i}"))
            .find(|k| stripe_of(k, 16) != stripe_of(&k1, 16))
            .expect("some key lands on another stripe");
        let start = Instant::now();
        std::thread::scope(|scope| {
            for key in [k1, k2] {
                let svc = Arc::clone(&parallel);
                scope.spawn(move || svc.get(&key).unwrap());
            }
        });
        let many_lanes = start.elapsed();
        assert!(
            many_lanes < Duration::from_millis(36),
            "requests to different lanes must overlap, took {many_lanes:?}"
        );
    }

    #[test]
    fn virtual_mode_is_fast_but_records() {
        let svc = SimShardedService::with_stripes(
            ServiceProfile::redis(),
            LatencyModel::new(LatencyMode::Virtual, 1.0),
            1,
            8,
        );
        let start = Instant::now();
        for i in 0..100 {
            svc.put(&format!("k{i}"), val("v")).unwrap();
        }
        assert!(start.elapsed() < Duration::from_millis(500));
        assert!(svc.stats().stripe_counts().iter().sum::<u64>() == 100);
    }
}
