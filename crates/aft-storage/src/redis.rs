//! A simulated Redis cluster (AWS ElastiCache).
//!
//! The evaluation uses Redis in cluster mode with two shards (§6). The
//! properties the figures depend on are:
//!
//! * memory-speed, sub-millisecond operations,
//! * hash-slot sharding: every key maps to exactly one shard,
//! * per-shard linearizability but **no guarantees across shards** (which is
//!   why "Redis Shard / Linearizable" still shows anomalies in Table 2), and
//! * `MSET` can only write keys that live in a single shard, so AFT cannot
//!   batch its commit writes over Redis (§6.1.2, §6.3).
//!
//! `SimRedis` reproduces this with one mutex-protected map per shard and the
//! calibrated Redis latency profile.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use aft_types::{AftError, AftResult, Value};
use parking_lot::Mutex;

use crate::counters::{OpKind, StorageStats, StripeCounters};
use crate::engine::StorageEngine;
use crate::latency::{LatencyModel, StripedSampler};
use crate::profiles::ServiceProfile;

/// Default number of shards, matching the paper's deployment ("cluster mode
/// with 2 shards").
pub const DEFAULT_REDIS_SHARDS: usize = 2;

/// One Redis shard: a linearizable (single-lock) map.
#[derive(Debug, Default)]
struct Shard {
    data: Mutex<BTreeMap<String, Value>>,
}

/// A simulated Redis cluster.
pub struct SimRedis {
    shards: Vec<Shard>,
    profile: ServiceProfile,
    sampler: StripedSampler,
    stats: Arc<StorageStats>,
    counters: Arc<StripeCounters>,
}

impl SimRedis {
    /// Creates a cluster with [`DEFAULT_REDIS_SHARDS`] shards and the default
    /// calibrated profile.
    pub fn new(latency: Arc<LatencyModel>) -> Arc<Self> {
        Self::with_shards(
            DEFAULT_REDIS_SHARDS,
            ServiceProfile::redis(),
            latency,
            0x0BAD_CAFE,
        )
    }

    /// Creates a cluster with an explicit shard count, profile, and RNG seed.
    pub fn with_shards(
        num_shards: usize,
        profile: ServiceProfile,
        latency: Arc<LatencyModel>,
        seed: u64,
    ) -> Arc<Self> {
        assert!(num_shards > 0, "a Redis cluster needs at least one shard");
        let stats = StorageStats::new_shared();
        let counters = StripeCounters::new(num_shards);
        stats.attach_stripes(Arc::clone(&counters));
        Arc::new(SimRedis {
            shards: (0..num_shards).map(|_| Shard::default()).collect(),
            sampler: StripedSampler::new(latency, seed, num_shards),
            profile,
            stats,
            counters,
        })
    }

    /// Number of shards in the cluster.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key hashes to (the cluster's hash-slot mapping).
    pub fn shard_of(&self, key: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Total number of keys across all shards.
    pub fn item_count(&self) -> usize {
        self.shards.iter().map(|s| s.data.lock().len()).sum()
    }

    /// The shard `key` hashes to, with the access recorded in the per-shard
    /// counters that roll up into this cluster's [`StorageStats`].
    fn touch(&self, key: &str) -> usize {
        let shard = self.shard_of(key);
        self.counters.record(shard);
        shard
    }

    fn inject(&self, profile: &crate::latency::LatencyProfile, shard: usize, payload_bytes: usize) {
        // Sample on the shard's RNG (held only for the sample), sleep outside
        // it: concurrent requests to different shards never serialise.
        self.sampler.apply(profile, shard, payload_bytes);
    }

    /// `MSET`: writes several keys in one API call, but only if they all live
    /// in the same shard — the real cluster rejects cross-slot multi-key
    /// commands.
    pub fn mset(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        if items.is_empty() {
            return Ok(());
        }
        let shard = self.touch(&items[0].0);
        if items.iter().any(|(k, _)| self.shard_of(k) != shard) {
            return Err(AftError::Storage(
                "CROSSSLOT keys in request don't hash to the same slot".to_owned(),
            ));
        }
        self.stats.record_call(OpKind::BatchPut);
        let payload: usize = items.iter().map(|(_, v)| v.len()).sum();
        let per_item = self.profile.batch_write_per_item_us * items.len() as f64;
        let mut profile = self.profile.batch_write_base;
        profile.median_us += per_item;
        profile.p99_us += per_item;
        self.inject(&profile, shard, payload);
        let mut data = self.shards[shard].data.lock();
        for (k, v) in items {
            self.stats.record_written_bytes(v.len());
            data.insert(k, v);
        }
        Ok(())
    }
}

impl StorageEngine for SimRedis {
    fn name(&self) -> &'static str {
        "redis"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.stats.record_call(OpKind::Get);
        let shard = self.touch(key);
        let value = self.shards[shard].data.lock().get(key).cloned();
        let bytes = value.as_ref().map_or(0, |v| v.len());
        self.inject(&self.profile.read, shard, bytes);
        if let Some(v) = &value {
            self.stats.record_read_bytes(v.len());
        }
        Ok(value)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.stats.record_call(OpKind::Put);
        self.stats.record_written_bytes(value.len());
        let shard = self.touch(key);
        self.inject(&self.profile.write, shard, value.len());
        self.shards[shard].data.lock().insert(key.to_owned(), value);
        Ok(())
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        // Arbitrary write sets are not guaranteed to land in one shard, so —
        // like the paper's implementation — AFT over Redis issues one SET per
        // key instead of relying on MSET (§6.1.2). A pipelined cluster client
        // flushes those SETs concurrently, so the charged latency is the max
        // of the samples, not their sum; the per-key SET call counts are
        // unchanged. Sequential full-RTT charging survives only in
        // [`crate::io::SequentialEngine`].
        let mut durations = Vec::with_capacity(items.len());
        for (k, v) in items {
            self.stats.record_call(OpKind::Put);
            self.stats.record_written_bytes(v.len());
            let shard = self.touch(&k);
            durations.push(self.sampler.sample(&self.profile.write, shard, v.len()));
            self.shards[shard].data.lock().insert(k, v);
        }
        self.sampler.model().finish_batch(&durations);
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.stats.record_call(OpKind::Delete);
        let shard = self.touch(key);
        self.inject(&self.profile.delete, shard, 0);
        self.shards[shard].data.lock().remove(key);
        Ok(())
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        // One DEL per key (no cross-shard batching), issued concurrently by
        // the pipelined client like put_batch above.
        let mut durations = Vec::with_capacity(keys.len());
        for k in keys {
            self.stats.record_call(OpKind::Delete);
            let shard = self.touch(k);
            durations.push(self.sampler.sample(&self.profile.delete, shard, 0));
            self.shards[shard].data.lock().remove(k);
        }
        self.sampler.model().finish_batch(&durations);
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        // SCAN across all shards; results are merged and sorted.
        self.stats.record_call(OpKind::List);
        self.inject(&self.profile.list, 0, 0);
        let mut keys = Vec::new();
        for shard in &self.shards {
            let data = shard.data.lock();
            keys.extend(
                data.range(prefix.to_owned()..)
                    .take_while(|(k, _)| k.starts_with(prefix))
                    .map(|(k, _)| k.clone()),
            );
        }
        keys.sort();
        Ok(keys)
    }

    fn supports_batch_put(&self) -> bool {
        // Cross-shard batching is not available; see put_batch.
        false
    }

    fn supports_deferred_latency(&self) -> bool {
        // Client-observed network latency; safe to defer to a completion.
        true
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn cluster(shards: usize) -> Arc<SimRedis> {
        SimRedis::with_shards(shards, ServiceProfile::zero(), LatencyModel::disabled(), 1)
    }

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn basic_operations_round_trip() {
        let r = cluster(2);
        r.put("k", val("v")).unwrap();
        assert_eq!(r.get("k").unwrap().unwrap(), val("v"));
        r.delete("k").unwrap();
        assert!(r.get("k").unwrap().is_none());
        assert_eq!(r.name(), "redis");
        assert!(!r.supports_batch_put());
    }

    #[test]
    fn sharding_is_stable_and_covers_all_shards() {
        let r = cluster(4);
        for key in ["a", "b", "k1", "k2"] {
            assert_eq!(
                r.shard_of(key),
                r.shard_of(key),
                "shard mapping must be stable"
            );
            assert!(r.shard_of(key) < 4);
        }
        // With enough keys every shard should receive something.
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            seen.insert(r.shard_of(&format!("key-{i}")));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn put_batch_issues_one_call_per_key() {
        let r = cluster(2);
        r.put_batch(vec![
            ("a".into(), val("1")),
            ("b".into(), val("2")),
            ("c".into(), val("3")),
        ])
        .unwrap();
        assert_eq!(r.item_count(), 3);
        assert_eq!(r.stats().calls(OpKind::Put), 3);
        assert_eq!(r.stats().calls(OpKind::BatchPut), 0);
    }

    #[test]
    fn mset_rejects_cross_slot_keys() {
        let r = cluster(8);
        // Find two keys on different shards.
        let k1 = "key-0".to_owned();
        let mut k2 = None;
        for i in 1..100 {
            let candidate = format!("key-{i}");
            if r.shard_of(&candidate) != r.shard_of(&k1) {
                k2 = Some(candidate);
                break;
            }
        }
        let k2 = k2.expect("some key must land on a different shard");
        let err = r
            .mset(vec![(k1.clone(), val("1")), (k2, val("2"))])
            .unwrap_err();
        assert!(matches!(err, AftError::Storage(_)));
        // Same-slot MSET succeeds.
        r.mset(vec![(k1.clone(), val("1")), (k1, val("1b"))])
            .unwrap();
    }

    #[test]
    fn list_prefix_merges_all_shards_sorted() {
        let r = cluster(3);
        for i in 0..20 {
            r.put(&format!("data/k/{i:03}"), val("x")).unwrap();
        }
        r.put("other", val("y")).unwrap();
        let listed = r.list_prefix("data/").unwrap();
        assert_eq!(listed.len(), 20);
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
    }

    #[test]
    fn single_shard_cluster_is_allowed() {
        let r = cluster(1);
        r.mset(vec![("a".into(), val("1")), ("b".into(), val("2"))])
            .unwrap();
        assert_eq!(r.item_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = cluster(0);
    }
}
