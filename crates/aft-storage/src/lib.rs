//! Storage substrates for the AFT shim.
//!
//! The paper's only requirement on the storage layer is that *updates are
//! durable once acknowledged* (§3.1) — AFT never relies on the store for
//! consistency, visibility ordering, or partitioning. This crate provides:
//!
//! * [`StorageEngine`] — the narrow key-value interface AFT uses
//!   (get / put / batched put / delete / list-by-prefix).
//! * [`InMemoryStore`] — a zero-latency reference backend used by unit tests.
//! * [`SimS3`], [`SimDynamo`], [`SimRedis`] — simulated stand-ins for the
//!   three backends the paper evaluates (AWS S3, AWS DynamoDB, AWS
//!   ElastiCache/Redis in cluster mode), each reproducing the behavioural
//!   properties the evaluation depends on: latency magnitude and variance,
//!   batch-write support and its limits, sharding, and (for DynamoDB) a
//!   serializable single-call transaction mode.
//! * [`latency`] — parameterised latency models, scaled down uniformly so
//!   experiments finish quickly while preserving the *ratios* between
//!   backends that determine every figure's shape.
//! * [`counters`] — per-backend operation statistics (API calls, bytes), used
//!   by the benchmarks to report API-call behaviour (e.g. Figure 5's analysis
//!   of API calls per transaction).
//! * [`sharded`] — N-way lock striping for the backends' shared data plane,
//!   so multi-client experiments measure the protocol rather than contention
//!   on a single map lock. Per-stripe counters roll up into [`counters`].
//! * [`io`] — the pipelined I/O layer: a submission/completion engine
//!   ([`IoEngine`]) with a worker pool and a timer wheel, so N in-flight
//!   requests overlap their sampled latencies instead of summing them (and
//!   the virtual clock charges a concurrent batch the max, not the sum).
//!   [`SequentialEngine`] is the explicitly-sequential baseline wrapper.
//! * [`chaos`] — deterministic fault injection: [`FaultyBackend`] wraps any
//!   engine with the storage layer of a seeded, cross-layer
//!   [`aft_chaos::ChaosSpec`] (transient errors, timeouts, and a slow-stripe
//!   gray failure), and the I/O engine's submission path absorbs the
//!   transient faults with retry-and-backoff ([`RetryConfig`]).

pub mod backend;
pub mod chaos;
pub mod checkpoint;
pub mod counters;
pub mod dynamo;
pub mod engine;
pub mod io;
pub mod latency;
pub mod memory;
pub mod profiles;
pub mod redis;
pub mod s3;
pub mod service;
pub mod sharded;

pub use backend::{make_backend, BackendConfig, BackendKind};
pub use chaos::{ChaosStatsSnapshot, FaultKind, FaultyBackend};
pub use checkpoint::{
    compact_log, load_latest_checkpoint, publish_checkpoint, Checkpoint, CheckpointLoad,
    CheckpointManifest, CheckpointWriteOutcome, CompactionOutcome, CHECKPOINT_KEEP,
};
pub use counters::{OpKind, StorageStats, StorageStatsSnapshot, StripeCounters};
pub use dynamo::{DynamoTransactionMode, SimDynamo};
pub use engine::{SharedStorage, StorageEngine};
pub use io::{
    BatchOutcome, CompletionSet, IoConfig, IoEngine, IoOutcome, IoStatsSnapshot, IoTicket,
    RetryConfig, SequentialEngine, StorageRequest, StorageResponse,
};
pub use latency::{LatencyMode, LatencyModel, LatencyProfile};
pub use memory::InMemoryStore;
pub use profiles::ServiceProfile;
pub use redis::SimRedis;
pub use s3::SimS3;
pub use service::SimShardedService;
pub use sharded::{stripe_of, ShardedMap, DEFAULT_STRIPES};
