//! Checkpointed recovery: a versioned, atomically-published snapshot of the
//! committed-version index, plus log compaction behind it.
//!
//! Bootstrap cost in the base protocol is linear in history: a replacement
//! node replays the *entire* Transaction Commit Set (§3.1). A checkpoint
//! bounds that to the tail. The subsystem follows the replicated-log
//! offset/snapshot discipline:
//!
//! * A **checkpoint** is the set of commit records a node's metadata cache
//!   held (post-§4.1 supersedence pruning) plus a **high-water mark** — the
//!   greatest commit-set storage key the snapshot covers. Commit keys embed
//!   zero-padded timestamps, so "key ≤ high-water" is "committed at or before
//!   the snapshot".
//! * The record set is **chunked** under the wire frame discipline
//!   ([`aft_types::wire::MAX_FRAME_LEN`]): no single blob exceeds what the
//!   service protocol could carry. Every chunk and the manifest itself are
//!   **CRC-validated**, so a blob torn at any byte prefix is rejected.
//! * Publication is **checkpoint-then-pointer**: chunks are written first
//!   (pipelined through the [`IoEngine`]), then the manifest — a single-key
//!   put, the backend's atomicity unit — is published last. A crash mid-write
//!   leaves orphaned chunks and no manifest: the previous checkpoint stays
//!   live and [`load_latest_checkpoint`] falls back to it.
//! * **Compaction** rides §4.1 supersedence: a commit record at or below the
//!   high-water mark is deleted only if the checkpoint *contains* it or the
//!   checkpoint's index *supersedes* it (every key it wrote has a strictly
//!   newer version). Records the checkpoint cannot vouch for are retained —
//!   compaction never guesses.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use aft_types::codec::{decode_commit_record, encode_commit_record, Reader, Writer};
use aft_types::wire::MAX_FRAME_LEN;
use aft_types::{AftError, AftResult, Key, TransactionId, TransactionRecord, Value};

use crate::io::{IoEngine, StorageRequest};

/// Storage prefix for checkpoint manifests (the atomic pointers).
pub const CHECKPOINT_META_PREFIX: &str = "ckptmeta";

/// Storage prefix for checkpoint data chunks.
pub const CHECKPOINT_CHUNK_PREFIX: &str = "ckptdata";

/// Checkpoints retained by compaction: the live one plus one fallback, so a
/// crash that tears the newest checkpoint still leaves a valid older one.
pub const CHECKPOINT_KEEP: usize = 2;

/// Format version of the checkpoint wire encoding.
const CHECKPOINT_VERSION: u8 = 1;
/// Tag byte of an encoded chunk.
const TAG_CHECKPOINT_CHUNK: u8 = 0x11;
/// Tag byte of an encoded manifest.
const TAG_CHECKPOINT_MANIFEST: u8 = 0x12;

/// Per-chunk payload budget: comfortably under the 16MB frame cap so a chunk
/// (payload + header + CRC) always fits one wire frame.
pub const CHUNK_BUDGET: usize = MAX_FRAME_LEN - 64 * 1024;

/// Commit records deleted per `DeleteBatch` request during compaction.
const COMPACTION_DELETE_BATCH: usize = 512;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), table-driven. Hand-rolled: the container has
// no crc crate and the codec is deliberately dependency-free.
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The IEEE CRC32 of `bytes` (the `cksum`/zlib polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

/// The manifest storage key of checkpoint `id`. Zero-padded so string order
/// equals numeric order and a prefix list returns checkpoints oldest-first.
pub fn manifest_key(id: u64) -> String {
    format!("{CHECKPOINT_META_PREFIX}/{id:020}")
}

/// The storage key of chunk `index` of checkpoint `id`.
pub fn chunk_key(id: u64, index: u32) -> String {
    format!("{CHECKPOINT_CHUNK_PREFIX}/{id:020}/{index:06}")
}

/// Parses a checkpoint id back out of a manifest storage key.
pub fn id_from_manifest_key(key: &str) -> Option<u64> {
    key.strip_prefix(CHECKPOINT_META_PREFIX)
        .and_then(|r| r.strip_prefix('/'))
        .and_then(|r| r.parse().ok())
}

// ---------------------------------------------------------------------------
// In-memory checkpoint
// ---------------------------------------------------------------------------

/// A decoded checkpoint: the committed-version index at the high-water mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The checkpoint's monotonically increasing id.
    pub id: u64,
    /// The commit records the snapshot holds (post-supersedence survivors).
    pub records: Vec<TransactionRecord>,
    /// Greatest commit-set storage key the snapshot covers; `None` for an
    /// empty checkpoint (which covers nothing).
    pub high_water: Option<String>,
}

impl Checkpoint {
    /// Builds a checkpoint over `records`, deriving the high-water mark as
    /// the greatest member storage key. Under §4.1 pruning the newest record
    /// per key always survives, so every pruned (superseded) record sits at
    /// or below this mark.
    pub fn new(id: u64, records: Vec<TransactionRecord>) -> Self {
        let high_water = records.iter().map(|r| r.storage_key()).max();
        Checkpoint {
            id,
            records,
            high_water,
        }
    }

    /// True if `storage_key` is at or below the high-water mark.
    pub fn covers(&self, storage_key: &str) -> bool {
        self.high_water
            .as_deref()
            .is_some_and(|hw| storage_key <= hw)
    }

    /// The newest committed version of every key in the snapshot.
    pub fn newest_versions(&self) -> HashMap<Key, TransactionId> {
        let mut newest: HashMap<Key, TransactionId> = HashMap::new();
        for record in &self.records {
            for key in &record.write_set {
                let entry = newest.entry(key.clone()).or_insert(record.id);
                if record.id > *entry {
                    *entry = record.id;
                }
            }
        }
        newest
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends a CRC32 trailer over everything written so far.
fn seal(writer: Writer) -> Value {
    let body = writer.finish();
    let crc = crc32(&body);
    let mut sealed = body.to_vec();
    sealed.extend_from_slice(&crc.to_le_bytes());
    Value::from(sealed)
}

/// Splits a sealed blob into (body, expected crc), verifying the trailer.
fn unseal(bytes: &[u8], what: &str) -> AftResult<Vec<u8>> {
    if bytes.len() < 4 {
        return Err(AftError::Codec(format!(
            "{what} blob of {} bytes is shorter than its CRC trailer",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("trailer is 4 bytes"));
    let actual = crc32(body);
    if stored != actual {
        return Err(AftError::Codec(format!(
            "{what} CRC mismatch: stored {stored:#010x}, computed {actual:#010x} — torn or corrupt"
        )));
    }
    Ok(body.to_vec())
}

/// Encodes one chunk of `records` (CRC-sealed).
pub fn encode_chunk(id: u64, index: u32, records: &[TransactionRecord]) -> Value {
    let mut w = Writer::with_capacity(64 + records.len() * 64);
    w.put_u8(CHECKPOINT_VERSION);
    w.put_u8(TAG_CHECKPOINT_CHUNK);
    w.put_u64(id);
    w.put_u32(index);
    w.put_u32(records.len() as u32);
    for record in records {
        w.put_bytes(&encode_commit_record(record));
    }
    seal(w)
}

/// Decodes a chunk, verifying CRC, format, and identity (id + index).
pub fn decode_chunk(
    bytes: &[u8],
    expect_id: u64,
    expect_index: u32,
) -> AftResult<Vec<TransactionRecord>> {
    let body = unseal(bytes, "checkpoint chunk")?;
    let mut r = Reader::new(&body);
    check_checkpoint_header(&mut r, TAG_CHECKPOINT_CHUNK)?;
    let id = r.get_u64()?;
    let index = r.get_u32()?;
    if id != expect_id || index != expect_index {
        return Err(AftError::Codec(format!(
            "checkpoint chunk identity mismatch: got {id}/{index}, expected {expect_id}/{expect_index}"
        )));
    }
    let n = r.get_u32()? as usize;
    // Untrusted length prefix — never pre-allocate from it directly.
    let mut records = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let raw = r.get_bytes()?;
        records.push(decode_commit_record(&raw)?);
    }
    r.expect_end()?;
    Ok(records)
}

/// A decoded checkpoint manifest: the atomic pointer published last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointManifest {
    /// The checkpoint's id.
    pub id: u64,
    /// Total records across all chunks.
    pub record_count: u64,
    /// CRC32 of each sealed chunk blob, in index order.
    pub chunk_crcs: Vec<u32>,
    /// High-water mark ("" encoded as `None`).
    pub high_water: Option<String>,
}

/// Encodes a manifest (CRC-sealed).
pub fn encode_manifest(manifest: &CheckpointManifest) -> Value {
    let mut w = Writer::with_capacity(64 + manifest.chunk_crcs.len() * 4);
    w.put_u8(CHECKPOINT_VERSION);
    w.put_u8(TAG_CHECKPOINT_MANIFEST);
    w.put_u64(manifest.id);
    w.put_u64(manifest.record_count);
    w.put_u32(manifest.chunk_crcs.len() as u32);
    for crc in &manifest.chunk_crcs {
        w.put_u32(*crc);
    }
    w.put_str(manifest.high_water.as_deref().unwrap_or(""));
    seal(w)
}

/// Decodes a manifest, verifying CRC and format.
pub fn decode_manifest(bytes: &[u8]) -> AftResult<CheckpointManifest> {
    let body = unseal(bytes, "checkpoint manifest")?;
    let mut r = Reader::new(&body);
    check_checkpoint_header(&mut r, TAG_CHECKPOINT_MANIFEST)?;
    let id = r.get_u64()?;
    let record_count = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut chunk_crcs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        chunk_crcs.push(r.get_u32()?);
    }
    let high_water = match r.get_str()? {
        s if s.is_empty() => None,
        s => Some(s),
    };
    r.expect_end()?;
    Ok(CheckpointManifest {
        id,
        record_count,
        chunk_crcs,
        high_water,
    })
}

fn check_checkpoint_header(r: &mut Reader<'_>, expected_tag: u8) -> AftResult<()> {
    let version = r.get_u8()?;
    if version != CHECKPOINT_VERSION {
        return Err(AftError::Codec(format!(
            "unsupported checkpoint version {version}, expected {CHECKPOINT_VERSION}"
        )));
    }
    let tag = r.get_u8()?;
    if tag != expected_tag {
        return Err(AftError::Codec(format!(
            "unexpected checkpoint tag {tag:#04x}, expected {expected_tag:#04x}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Publish
// ---------------------------------------------------------------------------

/// What a checkpoint publication did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointWriteOutcome {
    /// The published checkpoint's id.
    pub id: u64,
    /// Records snapshotted.
    pub records: usize,
    /// Chunks written.
    pub chunks: usize,
    /// Bytes written (chunks + manifest).
    pub bytes_written: u64,
    /// Simulated latency charged for the pipelined writes.
    pub cost: Duration,
}

/// Publishes `checkpoint` through `io`: all chunks first (pipelined), then
/// the manifest — the atomic pointer — last.
///
/// `before_manifest` runs after every chunk is durable and before the
/// manifest put; it is the kill point chaos plans target
/// ([`aft_types::CommitPhase::DuringCheckpointWrite`]). If it (or any chunk
/// write) fails, no manifest is published and the previous checkpoint stays
/// live — orphaned chunks are invisible garbage, not an anomaly.
pub fn publish_checkpoint<F>(
    io: &IoEngine,
    checkpoint: &Checkpoint,
    before_manifest: F,
) -> AftResult<CheckpointWriteOutcome>
where
    F: FnOnce() -> AftResult<()>,
{
    // Pack records into chunks under the frame budget.
    let mut chunks: Vec<Value> = Vec::new();
    let mut current: Vec<TransactionRecord> = Vec::new();
    let mut current_bytes = 0usize;
    for record in &checkpoint.records {
        let encoded_len = 4 + encode_commit_record(record).len();
        if !current.is_empty() && current_bytes + encoded_len > CHUNK_BUDGET {
            chunks.push(encode_chunk(checkpoint.id, chunks.len() as u32, &current));
            current.clear();
            current_bytes = 0;
        }
        current_bytes += encoded_len;
        current.push(record.clone());
    }
    if !current.is_empty() {
        chunks.push(encode_chunk(checkpoint.id, chunks.len() as u32, &current));
    }

    let chunk_crcs: Vec<u32> = chunks.iter().map(|c| crc32(c)).collect();
    let mut bytes_written: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    let chunk_count = chunks.len();

    let puts = chunks
        .into_iter()
        .enumerate()
        .map(|(i, blob)| StorageRequest::Put(chunk_key(checkpoint.id, i as u32), blob));
    let mut cost = io.submit_all(puts).wait_all().ok()?;

    // Chunks durable; the pointer is not. A crash here must leave the
    // previous checkpoint live — which it does, because the manifest below is
    // the only thing a loader looks at.
    before_manifest()?;

    let manifest = CheckpointManifest {
        id: checkpoint.id,
        record_count: checkpoint.records.len() as u64,
        chunk_crcs,
        high_water: checkpoint.high_water.clone(),
    };
    let blob = encode_manifest(&manifest);
    bytes_written += blob.len() as u64;
    let outcome = io.execute(StorageRequest::Put(manifest_key(checkpoint.id), blob));
    outcome.result?;
    cost += outcome.cost;

    Ok(CheckpointWriteOutcome {
        id: checkpoint.id,
        records: checkpoint.records.len(),
        chunks: chunk_count,
        bytes_written,
        cost,
    })
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// The result of a checkpoint load: the newest valid checkpoint, if any.
#[derive(Debug)]
pub struct CheckpointLoad {
    /// The newest checkpoint that validated end to end, or `None` if no
    /// usable checkpoint exists (fall back to full replay).
    pub checkpoint: Option<Checkpoint>,
    /// Manifests that were present but rejected (torn, corrupt, or with
    /// missing/corrupt chunks) before a valid one was found.
    pub rejected: usize,
    /// Bytes fetched while loading (including rejected attempts).
    pub bytes_read: u64,
    /// Simulated latency charged (including rejected attempts).
    pub cost: Duration,
}

/// Loads the newest valid checkpoint, walking manifests newest-first and
/// falling back past any checkpoint that fails validation — a torn
/// checkpoint is *never* returned.
pub fn load_latest_checkpoint(io: &IoEngine) -> AftResult<CheckpointLoad> {
    let listed = io.execute(StorageRequest::List(format!("{CHECKPOINT_META_PREFIX}/")));
    let mut cost = listed.cost;
    let keys = listed.result?.into_keys();

    let mut rejected = 0usize;
    let mut bytes_read = 0u64;
    for key in keys.iter().rev() {
        match try_load_checkpoint(io, key, &mut bytes_read, &mut cost) {
            Ok(checkpoint) => {
                return Ok(CheckpointLoad {
                    checkpoint: Some(checkpoint),
                    rejected,
                    bytes_read,
                    cost,
                })
            }
            Err(_) => rejected += 1,
        }
    }
    Ok(CheckpointLoad {
        checkpoint: None,
        rejected,
        bytes_read,
        cost,
    })
}

fn try_load_checkpoint(
    io: &IoEngine,
    manifest_storage_key: &str,
    bytes_read: &mut u64,
    cost: &mut Duration,
) -> AftResult<Checkpoint> {
    let outcome = io.execute(StorageRequest::Get(manifest_storage_key.to_string()));
    *cost += outcome.cost;
    let blob = outcome
        .result?
        .into_value()
        .ok_or_else(|| AftError::Codec("manifest vanished under the loader".into()))?;
    *bytes_read += blob.len() as u64;
    let manifest = decode_manifest(&blob)?;
    if manifest_key(manifest.id) != manifest_storage_key {
        return Err(AftError::Codec(format!(
            "manifest at {manifest_storage_key:?} claims checkpoint id {}",
            manifest.id
        )));
    }

    let chunk_keys = (0..manifest.chunk_crcs.len()).map(|i| chunk_key(manifest.id, i as u32));
    let batch = io
        .submit_all(chunk_keys.map(StorageRequest::Get))
        .wait_all();
    *cost += batch.cost;
    let mut records = Vec::new();
    for (index, result) in batch.results.into_iter().enumerate() {
        let blob = result?
            .into_value()
            .ok_or_else(|| AftError::Codec(format!("checkpoint chunk {index} is missing")))?;
        *bytes_read += blob.len() as u64;
        if crc32(&blob) != manifest.chunk_crcs[index] {
            return Err(AftError::Codec(format!(
                "checkpoint chunk {index} does not match its manifest CRC"
            )));
        }
        records.extend(decode_chunk(&blob, manifest.id, index as u32)?);
    }
    if records.len() as u64 != manifest.record_count {
        return Err(AftError::Codec(format!(
            "checkpoint record count mismatch: chunks hold {}, manifest says {}",
            records.len(),
            manifest.record_count
        )));
    }
    Ok(Checkpoint {
        id: manifest.id,
        records,
        high_water: manifest.high_water,
    })
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

/// What a compaction round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Commit records at or below the high-water mark that were examined.
    pub examined: usize,
    /// Records deleted because the checkpoint contains them.
    pub deleted_covered: usize,
    /// Records deleted because the checkpoint's index supersedes them (§4.1:
    /// every key they wrote has a strictly newer version in the checkpoint).
    pub deleted_superseded: usize,
    /// Records below the mark the checkpoint could not vouch for — retained.
    pub retained: usize,
    /// Old checkpoints (manifest + chunks) pruned past the retention window.
    pub pruned_checkpoints: usize,
    /// Simulated latency charged.
    pub cost: Duration,
}

/// Compacts the commit log behind `checkpoint`: deletes commit records the
/// checkpoint wholly covers and prunes checkpoints past the retention
/// window (keeping `keep` of them — see [`CHECKPOINT_KEEP`]).
///
/// Callers coordinate this with recovery: it must not run while a
/// replacement node may still be bootstrapping from the pre-checkpoint log
/// (the cluster layer only invokes it when no recovery is in flight).
pub fn compact_log(
    io: &IoEngine,
    checkpoint: &Checkpoint,
    keep: usize,
) -> AftResult<CompactionOutcome> {
    let mut outcome = CompactionOutcome::default();

    if let Some(high_water) = checkpoint.high_water.as_deref() {
        let listed = io.execute(StorageRequest::List(TransactionRecord::storage_prefix()));
        outcome.cost += listed.cost;
        let commit_keys = listed.result?.into_keys();

        let covered: HashSet<String> = checkpoint.records.iter().map(|r| r.storage_key()).collect();
        let newest = checkpoint.newest_versions();

        let mut deletable: Vec<String> = Vec::new();
        let mut unknown: Vec<String> = Vec::new();
        for key in commit_keys {
            if key.as_str() > high_water {
                continue;
            }
            outcome.examined += 1;
            if covered.contains(&key) {
                outcome.deleted_covered += 1;
                deletable.push(key);
            } else {
                unknown.push(key);
            }
        }

        // A record below the mark that the checkpoint does not contain is
        // only deletable if the checkpoint's index supersedes it; fetch and
        // check rather than guess.
        if !unknown.is_empty() {
            let batch = io
                .submit_all(unknown.iter().cloned().map(StorageRequest::Get))
                .wait_all();
            outcome.cost += batch.cost;
            for (key, result) in unknown.into_iter().zip(batch.results) {
                let superseded = match result {
                    Ok(response) => match response.into_value() {
                        Some(blob) => decode_commit_record(&blob).is_ok_and(|record| {
                            !record.write_set.is_empty()
                                && record
                                    .write_set
                                    .iter()
                                    .all(|k| newest.get(k).is_some_and(|newer| *newer > record.id))
                        }),
                        // Already gone (concurrent GC) — nothing to delete.
                        None => false,
                    },
                    Err(_) => false,
                };
                if superseded {
                    outcome.deleted_superseded += 1;
                    deletable.push(key);
                } else {
                    outcome.retained += 1;
                }
            }
        }

        for batch in deletable.chunks(COMPACTION_DELETE_BATCH) {
            let done = io.execute(StorageRequest::DeleteBatch(batch.to_vec()));
            done.result?;
            outcome.cost += done.cost;
        }
    }

    outcome.pruned_checkpoints = prune_checkpoints(io, keep, &mut outcome.cost)?;
    Ok(outcome)
}

/// Deletes checkpoints past the retention window, manifest first (so a crash
/// mid-prune can never leave a pointer to missing chunks). Returns the number
/// pruned.
fn prune_checkpoints(io: &IoEngine, keep: usize, cost: &mut Duration) -> AftResult<usize> {
    let listed = io.execute(StorageRequest::List(format!("{CHECKPOINT_META_PREFIX}/")));
    *cost += listed.cost;
    let keys = listed.result?.into_keys();
    if keys.len() <= keep.max(1) {
        return Ok(0);
    }
    let prune = &keys[..keys.len() - keep.max(1)];
    let mut pruned = 0usize;
    for key in prune {
        let Some(id) = id_from_manifest_key(key) else {
            continue;
        };
        let gone = io.execute(StorageRequest::Delete(key.clone()));
        gone.result?;
        *cost += gone.cost;
        let chunk_prefix = format!("{CHECKPOINT_CHUNK_PREFIX}/{id:020}/");
        let chunks = io.execute(StorageRequest::List(chunk_prefix));
        *cost += chunks.cost;
        let chunk_keys = chunks.result?.into_keys();
        if !chunk_keys.is_empty() {
            let done = io.execute(StorageRequest::DeleteBatch(chunk_keys));
            done.result?;
            *cost += done.cost;
        }
        pruned += 1;
    }
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::IoConfig;
    use crate::memory::InMemoryStore;
    use aft_types::Uuid;

    fn engine() -> IoEngine {
        IoEngine::new(InMemoryStore::shared(), IoConfig::pipelined())
    }

    fn tid(ts: u64, id: u128) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(id))
    }

    fn record(ts: u64, keys: &[&str]) -> TransactionRecord {
        TransactionRecord::new(tid(ts, ts as u128), keys.iter().map(Key::new))
    }

    fn records(n: u64) -> Vec<TransactionRecord> {
        (1..=n).map(|i| record(i, &["k"])).collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn checkpoint_round_trips_through_storage() {
        let io = engine();
        let ckpt = Checkpoint::new(7, records(100));
        let written = publish_checkpoint(&io, &ckpt, || Ok(())).unwrap();
        assert_eq!(written.records, 100);
        assert_eq!(written.chunks, 1);

        let load = load_latest_checkpoint(&io).unwrap();
        let loaded = load.checkpoint.expect("checkpoint must load");
        assert_eq!(loaded, ckpt);
        assert_eq!(load.rejected, 0);
        assert!(load.bytes_read > 0);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let io = engine();
        let ckpt = Checkpoint::new(1, Vec::new());
        assert!(ckpt.high_water.is_none());
        publish_checkpoint(&io, &ckpt, || Ok(())).unwrap();
        let loaded = load_latest_checkpoint(&io).unwrap().checkpoint.unwrap();
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn records_spill_across_chunks_under_the_budget() {
        // Shrink is not possible (the budget is a const), so synthesise big
        // records instead: ~1600 keys of 32 bytes each ≈ 57KB per record,
        // 300 records ≈ 17MB > one chunk budget.
        let big: Vec<TransactionRecord> = (0..300u64)
            .map(|i| {
                let keys: Vec<Key> = (0..1600)
                    .map(|k| Key::from(format!("key/{i:06}/{k:04}{}", "x".repeat(16))))
                    .collect();
                TransactionRecord::new(tid(i + 1, i as u128), keys)
            })
            .collect();
        let io = engine();
        let ckpt = Checkpoint::new(3, big);
        let written = publish_checkpoint(&io, &ckpt, || Ok(())).unwrap();
        assert!(
            written.chunks >= 2,
            "expected a spill, got {}",
            written.chunks
        );
        let loaded = load_latest_checkpoint(&io).unwrap().checkpoint.unwrap();
        assert_eq!(loaded.records.len(), ckpt.records.len());
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn crash_before_manifest_leaves_previous_checkpoint_live() {
        let io = engine();
        let old = Checkpoint::new(1, records(10));
        publish_checkpoint(&io, &old, || Ok(())).unwrap();

        let new = Checkpoint::new(2, records(20));
        let crashed = publish_checkpoint(&io, &new, || {
            Err(AftError::Codec(
                "simulated crash during checkpoint write".into(),
            ))
        });
        assert!(crashed.is_err());

        let loaded = load_latest_checkpoint(&io).unwrap().checkpoint.unwrap();
        assert_eq!(loaded.id, 1, "the old checkpoint must stay live");
        assert_eq!(loaded, old);
    }

    #[test]
    fn torn_manifest_falls_back_to_previous_checkpoint() {
        let io = engine();
        let old = Checkpoint::new(1, records(10));
        publish_checkpoint(&io, &old, || Ok(())).unwrap();
        let new = Checkpoint::new(2, records(20));
        publish_checkpoint(&io, &new, || Ok(())).unwrap();

        // Tear the newest manifest at every byte prefix; every tear must be
        // rejected and fall back to checkpoint 1.
        let key = manifest_key(2);
        let intact = io
            .execute(StorageRequest::Get(key.clone()))
            .result
            .unwrap()
            .into_value()
            .unwrap();
        for cut in 0..intact.len() {
            io.execute(StorageRequest::Put(
                key.clone(),
                Value::copy_from_slice(&intact[..cut]),
            ))
            .result
            .unwrap();
            let load = load_latest_checkpoint(&io).unwrap();
            let loaded = load.checkpoint.expect("fallback must succeed");
            assert_eq!(loaded.id, 1, "cut at {cut} must fall back");
            assert_eq!(load.rejected, 1);
        }
    }

    #[test]
    fn torn_chunk_falls_back_to_previous_checkpoint() {
        let io = engine();
        let old = Checkpoint::new(1, records(10));
        publish_checkpoint(&io, &old, || Ok(())).unwrap();
        let new = Checkpoint::new(2, records(20));
        publish_checkpoint(&io, &new, || Ok(())).unwrap();

        let key = chunk_key(2, 0);
        let intact = io
            .execute(StorageRequest::Get(key.clone()))
            .result
            .unwrap()
            .into_value()
            .unwrap();
        for cut in [0, 1, intact.len() / 2, intact.len() - 1] {
            io.execute(StorageRequest::Put(
                key.clone(),
                Value::copy_from_slice(&intact[..cut]),
            ))
            .result
            .unwrap();
            let load = load_latest_checkpoint(&io).unwrap();
            assert_eq!(
                load.checkpoint.unwrap().id,
                1,
                "cut at {cut} must fall back"
            );
        }
    }

    #[test]
    fn no_checkpoint_yields_none() {
        let io = engine();
        let load = load_latest_checkpoint(&io).unwrap();
        assert!(load.checkpoint.is_none());
        assert_eq!(load.rejected, 0);
    }

    #[test]
    fn compaction_deletes_covered_and_superseded_only() {
        let io = engine();
        // History: t1 writes k (superseded by t3), t2 writes a+b, t3 writes k,
        // t4 writes c but is NOT in the checkpoint (unknown, not superseded),
        // t5 is above the high-water mark.
        let r1 = record(1, &["k"]);
        let r2 = record(2, &["a", "b"]);
        let r3 = record(3, &["k"]);
        let r4 = record(4, &["c"]);
        let r5 = record(5, &["d"]);
        for r in [&r1, &r2, &r3, &r4, &r5] {
            io.execute(StorageRequest::Put(
                r.storage_key(),
                encode_commit_record(r),
            ))
            .result
            .unwrap();
        }
        // Checkpoint holds r2 + r3 + r4's *older sibling view*: build it from
        // the §4.1 survivors as of t4: r2, r3, r4 — but leave r4 out to model
        // a record the checkpointing node never saw.
        let mut ckpt = Checkpoint::new(1, vec![r2.clone(), r3.clone()]);
        // Extend the mark past r4 (a checkpoint derived from a cache that saw
        // r4's *timestamp era* but lost its broadcast).
        ckpt.high_water = Some(r4.storage_key());

        let outcome = compact_log(&io, &ckpt, CHECKPOINT_KEEP).unwrap();
        assert_eq!(
            outcome.deleted_covered, 2,
            "r2 and r3 are in the checkpoint"
        );
        assert_eq!(outcome.deleted_superseded, 1, "r1 is superseded by r3");
        assert_eq!(outcome.retained, 1, "r4 is unknown and must survive");

        let left = io
            .execute(StorageRequest::List(TransactionRecord::storage_prefix()))
            .result
            .unwrap()
            .into_keys();
        assert_eq!(left, vec![r4.storage_key(), r5.storage_key()]);
    }

    #[test]
    fn compaction_prunes_old_checkpoints_keeping_the_window() {
        let io = engine();
        for id in 1..=4u64 {
            publish_checkpoint(&io, &Checkpoint::new(id, records(5)), || Ok(())).unwrap();
        }
        let newest = Checkpoint::new(4, records(5));
        let outcome = compact_log(&io, &newest, CHECKPOINT_KEEP).unwrap();
        assert_eq!(outcome.pruned_checkpoints, 2);
        let manifests = io
            .execute(StorageRequest::List(format!("{CHECKPOINT_META_PREFIX}/")))
            .result
            .unwrap()
            .into_keys();
        assert_eq!(manifests, vec![manifest_key(3), manifest_key(4)]);
        let chunks = io
            .execute(StorageRequest::List(format!("{CHECKPOINT_CHUNK_PREFIX}/")))
            .result
            .unwrap()
            .into_keys();
        assert_eq!(chunks, vec![chunk_key(3, 0), chunk_key(4, 0)]);
    }

    #[test]
    fn newest_versions_picks_the_max_per_key() {
        let ckpt = Checkpoint::new(
            1,
            vec![record(1, &["k", "l"]), record(3, &["k"]), record(2, &["l"])],
        );
        let newest = ckpt.newest_versions();
        assert_eq!(newest[&Key::new("k")], tid(3, 3));
        assert_eq!(newest[&Key::new("l")], tid(2, 2));
    }
}
