//! Deterministic storage fault injection — the storage-layer adapter of the
//! unified [`aft_chaos`] fault schedule.
//!
//! The paper's guarantees are only interesting *through* failures: §4.2's
//! fault manager exists because a node can die between acknowledging a commit
//! and broadcasting it, and §3.1's only storage assumption (durable once
//! acknowledged) leaves the store free to drop, delay, or throttle any
//! individual request. The schedule itself — pure, seeded, order-independent
//! — lives in [`aft_chaos`], where one [`ChaosSpec`] drives this layer
//! together with net and platform injection; this module adapts it to the
//! [`StorageEngine`] trait.
//!
//! [`FaultyBackend`] wraps any engine and consults the spec's storage layer
//! on every operation, injecting three fault modes:
//!
//! * **transient errors** ([`AftError::StorageTransient`]): the request is
//!   dropped. Half of the injected errors are *applied-but-unacknowledged*
//!   — the write lands and then the acknowledgement is lost — which is the
//!   duplicate-on-retry interleaving AFT's idempotent storage keys (§3.1)
//!   are designed to absorb;
//! * **timeouts**: the full timeout latency is charged (slept in `Sleep`
//!   mode, recorded in `Virtual` mode) and then the same transient error
//!   surfaces — the shape of a client-side deadline expiring;
//! * **slow-stripe "gray failure"**: every operation whose primary key
//!   hashes to one designated stripe pays a fixed extra latency. The
//!   backend never errors, it is just persistently slow for a slice of the
//!   keyspace — the degradation that health checks miss.
//!
//! Injected latency goes through the shared [`LatencyModel`], so it obeys
//! the ambient mode exactly like the simulators' own latency: it defers onto
//! the I/O engine's timer wheel inside `capture_deferred` scopes, and in
//! `Virtual` mode it is charged to the operation's cost without sleeping —
//! the overlap accounting of the pipelined engine keeps working unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aft_chaos::{ChaosInjector, ChaosSpec, FaultSchedule, Layer, LayerSchedule};
use aft_types::{AftError, AftResult, Value};

use crate::counters::StorageStats;
use crate::engine::{SharedStorage, StorageEngine};
use crate::latency::LatencyModel;

pub use aft_chaos::FaultKind;

/// Point-in-time counters of a [`FaultyBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Operations that executed cleanly.
    pub passed: u64,
    /// Injected transient errors (dropped requests).
    pub errors_dropped: u64,
    /// Injected transient errors where the operation applied before the ack
    /// was lost.
    pub errors_applied: u64,
    /// Injected timeouts.
    pub timeouts: u64,
    /// Operations slowed by the gray-failure stripe.
    pub slowed: u64,
}

impl ChaosStatsSnapshot {
    /// Every fault injected, of any kind.
    pub fn total_faults(&self) -> u64 {
        self.errors_dropped + self.errors_applied + self.timeouts
    }
}

#[derive(Debug, Default)]
struct ChaosCounters {
    passed: AtomicU64,
    errors_dropped: AtomicU64,
    errors_applied: AtomicU64,
    timeouts: AtomicU64,
    slowed: AtomicU64,
}

/// A [`StorageEngine`] wrapper injecting the storage layer of a
/// [`ChaosSpec`]'s fault schedule.
///
/// The wrapper is transparent when no fault fires: every operation, counter,
/// and capability of the inner backend passes through, including deferred
/// latency, so a chaos leg measures the same system as the clean leg plus
/// the injected faults.
pub struct FaultyBackend {
    inner: SharedStorage,
    layer: LayerSchedule,
    latency: Arc<LatencyModel>,
    /// While false, every operation passes straight through without
    /// consuming a schedule index — verification phases read ground truth
    /// without racing the injector, and re-enabling resumes the schedule
    /// where it left off.
    enabled: AtomicBool,
    counters: ChaosCounters,
}

impl FaultyBackend {
    /// Wraps `inner`, injecting the storage layer of `spec`'s schedule;
    /// injected latency obeys `latency`'s mode and scale (share the inner
    /// backend's model so chaos latency scales with everything else).
    pub fn from_spec(
        inner: SharedStorage,
        spec: &ChaosSpec,
        latency: Arc<LatencyModel>,
    ) -> Arc<Self> {
        Arc::new(FaultyBackend {
            inner,
            layer: spec.layer(Layer::Storage),
            latency,
            enabled: AtomicBool::new(true),
            counters: ChaosCounters::default(),
        })
    }

    /// Pauses (`false`) or resumes (`true`) fault injection. Paused
    /// operations bypass the schedule entirely.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// The unified fault schedule this backend consumes (storage layer).
    pub fn schedule(&self) -> &FaultSchedule {
        self.layer.schedule()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &SharedStorage {
        &self.inner
    }

    /// Injection counters so far.
    pub fn chaos_stats(&self) -> ChaosStatsSnapshot {
        ChaosStatsSnapshot {
            passed: self.counters.passed.load(Ordering::Relaxed),
            errors_dropped: self.counters.errors_dropped.load(Ordering::Relaxed),
            errors_applied: self.counters.errors_applied.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            slowed: self.counters.slowed.load(Ordering::Relaxed),
        }
    }

    /// Operations that have passed through the wrapper (fault or not).
    pub fn ops_seen(&self) -> u64 {
        self.layer.ops_seen()
    }

    fn charge_us(&self, us: f64) {
        let scaled = us * self.latency.scale();
        self.latency
            .finish(Duration::from_nanos((scaled * 1000.0) as u64));
    }

    /// Runs one operation under the schedule. `op` names the operation for
    /// the error message; `apply` performs it against the inner backend.
    fn run<T>(&self, op: &str, key: &str, apply: impl FnOnce() -> AftResult<T>) -> AftResult<T> {
        if !self.enabled.load(Ordering::Acquire) {
            return apply();
        }
        let (index, fault) = self.layer.decide_next_indexed(key);
        let chaos = self.schedule().storage_chaos();
        match fault {
            // MidCrash is platform-layer vocabulary; the storage layer of a
            // schedule never emits it, but the unified FaultKind makes it
            // representable — pass through defensively.
            FaultKind::None | FaultKind::MidCrash => {
                self.counters.passed.fetch_add(1, Ordering::Relaxed);
                apply()
            }
            FaultKind::Slow => {
                self.counters.slowed.fetch_add(1, Ordering::Relaxed);
                self.charge_us(chaos.slow_extra_us);
                apply()
            }
            FaultKind::Timeout => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                self.charge_us(chaos.timeout_us);
                Err(AftError::StorageTransient(format!(
                    "chaos: {op} of {key:?} timed out (op #{index})"
                )))
            }
            FaultKind::TransientError { applied } => {
                if applied {
                    // The store applied the write and the ack was lost: the
                    // caller will retry and duplicate the request.
                    self.counters.errors_applied.fetch_add(1, Ordering::Relaxed);
                    apply()?;
                } else {
                    self.counters.errors_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(AftError::StorageTransient(format!(
                    "chaos: {op} of {key:?} failed transiently (op #{index}, applied={applied})"
                )))
            }
        }
    }
}

impl ChaosInjector for FaultyBackend {
    fn layer(&self) -> Layer {
        Layer::Storage
    }

    fn ops_seen(&self) -> u64 {
        self.layer.ops_seen()
    }

    fn faults_injected(&self) -> u64 {
        self.chaos_stats().total_faults()
    }
}

impl StorageEngine for FaultyBackend {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.run("get", key, || self.inner.get(key))
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.run("put", key, || self.inner.put(key, value))
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        // One decision per batch, keyed by its first item: a batch API call
        // fails or lands as a unit.
        let key = items.first().map(|(k, _)| k.clone()).unwrap_or_default();
        self.run("put_batch", &key, || self.inner.put_batch(items))
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.run("delete", key, || self.inner.delete(key))
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        let key = keys.first().cloned().unwrap_or_default();
        self.run("delete_batch", &key, || self.inner.delete_batch(keys))
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.run("list", prefix, || self.inner.list_prefix(prefix))
    }

    fn supports_batch_put(&self) -> bool {
        self.inner.supports_batch_put()
    }

    fn supports_deferred_latency(&self) -> bool {
        self.inner.supports_deferred_latency()
    }

    fn stats(&self) -> Arc<StorageStats> {
        self.inner.stats()
    }
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("schedule", self.layer.schedule())
            .field("ops_seen", &self.ops_seen())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{measure_cost, LatencyMode};
    use crate::memory::InMemoryStore;
    use crate::sharded::stripe_of;
    use aft_chaos::StorageChaos;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn spec(seed: u64, storage: StorageChaos) -> ChaosSpec {
        ChaosSpec::new(seed).storage(storage)
    }

    fn faulty(spec: &ChaosSpec) -> Arc<FaultyBackend> {
        FaultyBackend::from_spec(
            InMemoryStore::shared(),
            spec,
            LatencyModel::new(LatencyMode::Virtual, 1.0),
        )
    }

    #[test]
    fn identical_seeds_produce_identical_schedules() {
        let mk = || {
            spec(
                42,
                StorageChaos {
                    error_rate: 0.2,
                    timeout_rate: 0.1,
                    ..StorageChaos::quiet()
                },
            )
            .schedule()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(
            a.materialize(Layer::Storage, 500, "k"),
            b.materialize(Layer::Storage, 500, "k")
        );
        // And the schedule is not degenerate: both faults and passes occur.
        let schedule = a.materialize(Layer::Storage, 500, "k");
        assert!(schedule.contains(&FaultKind::None));
        assert!(schedule
            .iter()
            .any(|f| matches!(f, FaultKind::TransientError { .. })));
        assert!(schedule.contains(&FaultKind::Timeout));
    }

    #[test]
    fn transient_errors_surface_typed_not_panic() {
        // error_rate 1.0: every operation fails with the typed error.
        let backend = faulty(&spec(3, StorageChaos::transient_errors(1.0)));
        match backend.put("k", val("v")) {
            Err(AftError::StorageTransient(msg)) => {
                assert!(msg.contains("chaos"), "message names the injector: {msg}")
            }
            other => panic!("expected StorageTransient, got {other:?}"),
        }
        assert!(backend.get("k").is_err());
        let stats = backend.chaos_stats();
        assert_eq!(stats.total_faults(), 2);
        assert_eq!(stats.passed, 0);
        // The adapter trait reports the same counters.
        assert_eq!(ChaosInjector::faults_injected(&*backend), 2);
        assert_eq!(ChaosInjector::layer(&*backend), Layer::Storage);
    }

    #[test]
    fn applied_but_unacked_writes_land_before_the_error() {
        // With error_rate 1.0 roughly half the failures apply first; find
        // one and verify the write is durable despite the error.
        let backend = faulty(&spec(9, StorageChaos::transient_errors(1.0)));
        let mut applied_seen = false;
        for i in 0..64 {
            let key = format!("k{i}");
            let _ = backend.put(&key, val("v"));
            if backend.inner().get(&key).unwrap().is_some() {
                applied_seen = true;
                break;
            }
        }
        assert!(applied_seen, "some injected errors must apply first");
        assert!(backend.chaos_stats().errors_applied >= 1);
    }

    #[test]
    fn timeouts_charge_latency_then_fail() {
        let backend = faulty(&spec(5, StorageChaos::timeouts(1.0, 25_000.0)));
        let (result, cost) = measure_cost(|| backend.put("k", val("v")));
        assert!(matches!(result, Err(AftError::StorageTransient(_))));
        assert!(
            cost >= Duration::from_millis(24),
            "the 25ms timeout must be charged, got {cost:?}"
        );
        assert!(
            backend.inner().get("k").unwrap().is_none(),
            "timeouts are never applied"
        );
        assert_eq!(backend.chaos_stats().timeouts, 1);
    }

    #[test]
    fn slow_stripe_charges_only_its_stripe_and_never_errors() {
        let stripes = 8;
        let slow = stripe_of("victim", stripes);
        let backend = faulty(&spec(1, StorageChaos::slow_stripe(slow, stripes, 10_000.0)));
        let (result, cost) = measure_cost(|| backend.put("victim", val("v")));
        result.unwrap();
        assert!(
            cost >= Duration::from_millis(9),
            "gray stripe pays: {cost:?}"
        );

        // A key on another stripe is full speed.
        let other = (0..64)
            .map(|i| format!("other{i}"))
            .find(|k| stripe_of(k, stripes) != slow)
            .expect("some key lands elsewhere");
        let (result, cost) = measure_cost(|| backend.put(&other, val("v")));
        result.unwrap();
        assert!(cost < Duration::from_millis(1), "healthy stripe: {cost:?}");
        let stats = backend.chaos_stats();
        assert_eq!(stats.slowed, 1);
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.total_faults(), 0);
    }

    #[test]
    fn disabling_pauses_injection_without_consuming_the_schedule() {
        let backend = faulty(&spec(3, StorageChaos::transient_errors(1.0)));
        backend.set_enabled(false);
        for i in 0..8 {
            backend.put(&format!("k{i}"), val("v")).unwrap();
        }
        assert_eq!(backend.ops_seen(), 0, "paused ops consume no indices");
        assert_eq!(backend.chaos_stats().total_faults(), 0);
        backend.set_enabled(true);
        assert!(backend.put("k", val("v")).is_err(), "schedule resumes");
        assert_eq!(backend.ops_seen(), 1);
    }

    #[test]
    fn quiet_plan_is_fully_transparent() {
        let backend = faulty(&ChaosSpec::new(1));
        backend.put("k", val("v")).unwrap();
        assert_eq!(backend.get("k").unwrap().unwrap(), val("v"));
        backend
            .put_batch(vec![("a".into(), val("1")), ("b".into(), val("2"))])
            .unwrap();
        assert_eq!(backend.list_prefix("").unwrap().len(), 3);
        backend.delete("a").unwrap();
        backend.delete_batch(&["b".into()]).unwrap();
        assert_eq!(backend.list_prefix("").unwrap(), vec!["k"]);
        let stats = backend.chaos_stats();
        assert_eq!(stats.total_faults(), 0);
        assert_eq!(stats.passed, 7);
        // Capabilities pass through the wrapper untouched.
        assert_eq!(
            backend.supports_batch_put(),
            backend.inner().supports_batch_put()
        );
        assert_eq!(
            backend.supports_deferred_latency(),
            backend.inner().supports_deferred_latency()
        );
    }
}
