//! Deterministic storage fault injection.
//!
//! The paper's guarantees are only interesting *through* failures: §4.2's
//! fault manager exists because a node can die between acknowledging a commit
//! and broadcasting it, and §3.1's only storage assumption (durable once
//! acknowledged) leaves the store free to drop, delay, or throttle any
//! individual request. Formal treatments of serverless semantics make the
//! same point — the behaviors worth testing are exactly the crash / retry /
//! duplicate interleavings — so they must be first-class, seeded, and
//! reproducible rather than left to chance.
//!
//! This module provides:
//!
//! * [`FailurePlan`] — a pure, seeded schedule mapping an operation index
//!   (and the operation's primary key) to a [`FaultKind`]. Identical seeds
//!   produce identical index→fault schedules, so single-threaded histories
//!   replay bit-exactly. Under concurrency the *schedule* is still
//!   identical, but which logical operation draws which index depends on
//!   thread interleaving — re-running a seed reproduces the same fault
//!   pressure and mix, not necessarily the same fault-to-operation pairing.
//! * [`FaultyBackend`] — a [`StorageEngine`] wrapper that consults the plan
//!   on every operation and injects three fault modes:
//!   * **transient errors** ([`AftError::StorageTransient`]): the request is
//!     dropped. Half of the injected errors are *applied-but-unacknowledged*
//!     — the write lands and then the acknowledgement is lost — which is the
//!     duplicate-on-retry interleaving AFT's idempotent storage keys (§3.1)
//!     are designed to absorb;
//!   * **timeouts**: the full timeout latency is charged (slept in `Sleep`
//!     mode, recorded in `Virtual` mode) and then the same transient error
//!     surfaces — the shape of a client-side deadline expiring;
//!   * **slow-stripe "gray failure"**: every operation whose primary key
//!     hashes to one designated stripe pays a fixed extra latency. The
//!     backend never errors, it is just persistently slow for a slice of the
//!     keyspace — the degradation that health checks miss.
//!
//! Injected latency goes through the shared [`LatencyModel`], so it obeys
//! the ambient mode exactly like the simulators' own latency: it defers onto
//! the I/O engine's timer wheel inside `capture_deferred` scopes, and in
//! `Virtual` mode it is charged to the operation's cost without sleeping —
//! the overlap accounting of the pipelined engine keeps working unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aft_types::{AftError, AftResult, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::counters::StorageStats;
use crate::engine::{SharedStorage, StorageEngine};
use crate::latency::LatencyModel;
use crate::sharded::stripe_of;

/// Tuning for a [`FaultyBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the fault schedule; identical seeds reproduce identical
    /// schedules.
    pub seed: u64,
    /// Probability in `[0, 1]` that an operation fails with a transient
    /// error (half of these apply the operation before losing the ack).
    pub error_rate: f64,
    /// Probability in `[0, 1]` that an operation times out: the timeout
    /// latency is charged, then a transient error surfaces.
    pub timeout_rate: f64,
    /// The charged latency of one timeout, in microseconds before global
    /// scaling (modeled on a client-side request deadline).
    pub timeout_us: f64,
    /// The gray-failure stripe: operations whose primary key hashes to this
    /// stripe (out of [`ChaosConfig::stripes`]) pay
    /// [`ChaosConfig::slow_extra_us`] of extra latency. `None` disables the
    /// mode.
    pub slow_stripe: Option<usize>,
    /// Extra latency per slow-stripe operation, in microseconds before
    /// global scaling.
    pub slow_extra_us: f64,
    /// Stripe count the gray-failure mode hashes keys into.
    pub stripes: usize,
}

impl ChaosConfig {
    /// A schedule that never injects anything (useful as a baseline leg).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            error_rate: 0.0,
            timeout_rate: 0.0,
            timeout_us: 0.0,
            slow_stripe: None,
            slow_extra_us: 0.0,
            stripes: crate::sharded::DEFAULT_STRIPES,
        }
    }

    /// Transient-error mode: `rate` of operations fail with a retryable
    /// error (half applied-then-dropped-ack, half dropped outright).
    pub fn transient_errors(seed: u64, rate: f64) -> Self {
        ChaosConfig {
            error_rate: rate.clamp(0.0, 1.0),
            ..ChaosConfig::quiet(seed)
        }
    }

    /// Timeout mode: `rate` of operations charge `timeout_us` and then fail
    /// with a retryable error.
    pub fn timeouts(seed: u64, rate: f64, timeout_us: f64) -> Self {
        ChaosConfig {
            timeout_rate: rate.clamp(0.0, 1.0),
            timeout_us: timeout_us.max(0.0),
            ..ChaosConfig::quiet(seed)
        }
    }

    /// Gray-failure mode: every operation on keys of `stripe` (out of
    /// `stripes`) pays `slow_extra_us` of extra latency; nothing errors.
    pub fn slow_stripe(seed: u64, stripe: usize, stripes: usize, slow_extra_us: f64) -> Self {
        let stripes = stripes.max(1);
        ChaosConfig {
            slow_stripe: Some(stripe % stripes),
            slow_extra_us: slow_extra_us.max(0.0),
            stripes,
            ..ChaosConfig::quiet(seed)
        }
    }
}

/// What the plan injects into one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation executes normally.
    None,
    /// The operation fails with [`AftError::StorageTransient`]. When
    /// `applied` is true the operation's effect lands *before* the failure
    /// (an acknowledgement lost in flight); a retry then duplicates the
    /// request, which idempotent storage keys must absorb.
    TransientError {
        /// Whether the operation was applied before the ack was lost.
        applied: bool,
    },
    /// The operation charges the configured timeout latency and then fails
    /// with [`AftError::StorageTransient`] without being applied.
    Timeout,
    /// The operation succeeds but pays the gray-failure latency penalty.
    Slow,
}

/// A pure, seeded fault schedule: operation index (plus the operation's
/// primary key, for the stripe-targeted gray-failure mode) → [`FaultKind`].
#[derive(Debug, Clone, Copy)]
pub struct FailurePlan {
    config: ChaosConfig,
}

impl FailurePlan {
    /// Builds the plan for `config`.
    pub fn new(config: ChaosConfig) -> Self {
        FailurePlan { config }
    }

    /// The plan's tuning.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// The fault injected into operation number `op_index` on `key`.
    ///
    /// Deterministic in `(seed, op_index, key)` and independent of call
    /// order: each decision draws from its own RNG keyed by the pair, so
    /// concurrent callers racing for indices still reproduce the same
    /// schedule for the same index sequence.
    pub fn decide(&self, op_index: u64, key: &str) -> FaultKind {
        let c = &self.config;
        // The gray failure is keyed by data placement, not by chance: a
        // degraded stripe is slow for *every* request that hashes to it.
        if let Some(slow) = c.slow_stripe {
            if stripe_of(key, c.stripes) == slow {
                return FaultKind::Slow;
            }
        }
        if c.error_rate <= 0.0 && c.timeout_rate <= 0.0 {
            return FaultKind::None;
        }
        // SplitMix-style per-op stream: cheap, stateless, order-independent.
        let stream = c
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(op_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = StdRng::seed_from_u64(stream);
        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < c.error_rate {
            FaultKind::TransientError {
                applied: rng.gen_bool(0.5),
            }
        } else if draw < c.error_rate + c.timeout_rate {
            FaultKind::Timeout
        } else {
            FaultKind::None
        }
    }

    /// The first `n` decisions for a fixed key — the materialised schedule,
    /// used by determinism tests and for replaying a failure report.
    pub fn schedule(&self, n: u64, key: &str) -> Vec<FaultKind> {
        (0..n).map(|i| self.decide(i, key)).collect()
    }
}

/// Point-in-time counters of a [`FaultyBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Operations that executed cleanly.
    pub passed: u64,
    /// Injected transient errors (dropped requests).
    pub errors_dropped: u64,
    /// Injected transient errors where the operation applied before the ack
    /// was lost.
    pub errors_applied: u64,
    /// Injected timeouts.
    pub timeouts: u64,
    /// Operations slowed by the gray-failure stripe.
    pub slowed: u64,
}

impl ChaosStatsSnapshot {
    /// Every fault injected, of any kind.
    pub fn total_faults(&self) -> u64 {
        self.errors_dropped + self.errors_applied + self.timeouts
    }
}

#[derive(Debug, Default)]
struct ChaosCounters {
    passed: AtomicU64,
    errors_dropped: AtomicU64,
    errors_applied: AtomicU64,
    timeouts: AtomicU64,
    slowed: AtomicU64,
}

/// A [`StorageEngine`] wrapper injecting the faults of a [`FailurePlan`].
///
/// The wrapper is transparent when no fault fires: every operation, counter,
/// and capability of the inner backend passes through, including deferred
/// latency, so a chaos leg measures the same system as the clean leg plus
/// the injected faults.
pub struct FaultyBackend {
    inner: SharedStorage,
    plan: FailurePlan,
    latency: Arc<LatencyModel>,
    /// While false, every operation passes straight through without
    /// consuming a schedule index — verification phases read ground truth
    /// without racing the injector, and re-enabling resumes the schedule
    /// where it left off.
    enabled: AtomicBool,
    op_counter: AtomicU64,
    counters: ChaosCounters,
}

impl FaultyBackend {
    /// Wraps `inner`, injecting faults per `config`; injected latency obeys
    /// `latency`'s mode and scale (share the inner backend's model so chaos
    /// latency scales with everything else).
    pub fn new(inner: SharedStorage, config: ChaosConfig, latency: Arc<LatencyModel>) -> Arc<Self> {
        Arc::new(FaultyBackend {
            inner,
            plan: FailurePlan::new(config),
            latency,
            enabled: AtomicBool::new(true),
            op_counter: AtomicU64::new(0),
            counters: ChaosCounters::default(),
        })
    }

    /// Pauses (`false`) or resumes (`true`) fault injection. Paused
    /// operations bypass the schedule entirely.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FailurePlan {
        &self.plan
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &SharedStorage {
        &self.inner
    }

    /// Injection counters so far.
    pub fn chaos_stats(&self) -> ChaosStatsSnapshot {
        ChaosStatsSnapshot {
            passed: self.counters.passed.load(Ordering::Relaxed),
            errors_dropped: self.counters.errors_dropped.load(Ordering::Relaxed),
            errors_applied: self.counters.errors_applied.load(Ordering::Relaxed),
            timeouts: self.counters.timeouts.load(Ordering::Relaxed),
            slowed: self.counters.slowed.load(Ordering::Relaxed),
        }
    }

    /// Operations that have passed through the wrapper (fault or not).
    pub fn ops_seen(&self) -> u64 {
        self.op_counter.load(Ordering::Relaxed)
    }

    fn charge_us(&self, us: f64) {
        let scaled = us * self.latency.scale();
        self.latency
            .finish(Duration::from_nanos((scaled * 1000.0) as u64));
    }

    /// Runs one operation under the plan. `op` names the operation for the
    /// error message; `apply` performs it against the inner backend.
    fn run<T>(&self, op: &str, key: &str, apply: impl FnOnce() -> AftResult<T>) -> AftResult<T> {
        if !self.enabled.load(Ordering::Acquire) {
            return apply();
        }
        let index = self.op_counter.fetch_add(1, Ordering::Relaxed);
        match self.plan.decide(index, key) {
            FaultKind::None => {
                self.counters.passed.fetch_add(1, Ordering::Relaxed);
                apply()
            }
            FaultKind::Slow => {
                self.counters.slowed.fetch_add(1, Ordering::Relaxed);
                self.charge_us(self.plan.config().slow_extra_us);
                apply()
            }
            FaultKind::Timeout => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                self.charge_us(self.plan.config().timeout_us);
                Err(AftError::StorageTransient(format!(
                    "chaos: {op} of {key:?} timed out (op #{index})"
                )))
            }
            FaultKind::TransientError { applied } => {
                if applied {
                    // The store applied the write and the ack was lost: the
                    // caller will retry and duplicate the request.
                    self.counters.errors_applied.fetch_add(1, Ordering::Relaxed);
                    apply()?;
                } else {
                    self.counters.errors_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(AftError::StorageTransient(format!(
                    "chaos: {op} of {key:?} failed transiently (op #{index}, applied={applied})"
                )))
            }
        }
    }
}

impl StorageEngine for FaultyBackend {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.run("get", key, || self.inner.get(key))
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.run("put", key, || self.inner.put(key, value))
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        // One decision per batch, keyed by its first item: a batch API call
        // fails or lands as a unit.
        let key = items.first().map(|(k, _)| k.clone()).unwrap_or_default();
        self.run("put_batch", &key, || self.inner.put_batch(items))
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.run("delete", key, || self.inner.delete(key))
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        let key = keys.first().cloned().unwrap_or_default();
        self.run("delete_batch", &key, || self.inner.delete_batch(keys))
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.run("list", prefix, || self.inner.list_prefix(prefix))
    }

    fn supports_batch_put(&self) -> bool {
        self.inner.supports_batch_put()
    }

    fn supports_deferred_latency(&self) -> bool {
        self.inner.supports_deferred_latency()
    }

    fn stats(&self) -> Arc<StorageStats> {
        self.inner.stats()
    }
}

impl std::fmt::Debug for FaultyBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultyBackend")
            .field("plan", &self.plan)
            .field("ops_seen", &self.ops_seen())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{measure_cost, LatencyMode};
    use crate::memory::InMemoryStore;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn faulty(config: ChaosConfig) -> Arc<FaultyBackend> {
        FaultyBackend::new(
            InMemoryStore::shared(),
            config,
            LatencyModel::new(LatencyMode::Virtual, 1.0),
        )
    }

    #[test]
    fn identical_seeds_produce_identical_schedules() {
        let a = FailurePlan::new(ChaosConfig {
            error_rate: 0.2,
            timeout_rate: 0.1,
            ..ChaosConfig::quiet(42)
        });
        let b = FailurePlan::new(ChaosConfig {
            error_rate: 0.2,
            timeout_rate: 0.1,
            ..ChaosConfig::quiet(42)
        });
        assert_eq!(a.schedule(500, "k"), b.schedule(500, "k"));
        // And the schedule is not degenerate: both faults and passes occur.
        let schedule = a.schedule(500, "k");
        assert!(schedule.contains(&FaultKind::None));
        assert!(schedule
            .iter()
            .any(|f| matches!(f, FaultKind::TransientError { .. })));
        assert!(schedule.contains(&FaultKind::Timeout));
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let mk = |seed| {
            FailurePlan::new(ChaosConfig {
                error_rate: 0.3,
                ..ChaosConfig::quiet(seed)
            })
            .schedule(200, "k")
        };
        assert_ne!(mk(1), mk(2), "seeds must steer the schedule");
    }

    #[test]
    fn decisions_are_order_independent() {
        let plan = FailurePlan::new(ChaosConfig {
            error_rate: 0.25,
            timeout_rate: 0.25,
            ..ChaosConfig::quiet(7)
        });
        // Querying indices out of order or repeatedly never changes answers.
        let forward: Vec<FaultKind> = (0..100).map(|i| plan.decide(i, "k")).collect();
        let backward: Vec<FaultKind> = (0..100).rev().map(|i| plan.decide(i, "k")).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        assert_eq!(plan.decide(63, "k"), plan.decide(63, "k"));
    }

    #[test]
    fn injected_error_rate_tracks_the_configured_rate() {
        let plan = FailurePlan::new(ChaosConfig {
            error_rate: 0.2,
            ..ChaosConfig::quiet(11)
        });
        let faults = plan
            .schedule(2_000, "k")
            .into_iter()
            .filter(|f| matches!(f, FaultKind::TransientError { .. }))
            .count();
        let rate = faults as f64 / 2_000.0;
        assert!(
            (rate - 0.2).abs() < 0.05,
            "injected rate {rate} should be near 0.2"
        );
    }

    #[test]
    fn transient_errors_surface_typed_not_panic() {
        // error_rate 1.0: every operation fails with the typed error.
        let backend = faulty(ChaosConfig::transient_errors(3, 1.0));
        match backend.put("k", val("v")) {
            Err(AftError::StorageTransient(msg)) => {
                assert!(msg.contains("chaos"), "message names the injector: {msg}")
            }
            other => panic!("expected StorageTransient, got {other:?}"),
        }
        assert!(backend.get("k").is_err());
        let stats = backend.chaos_stats();
        assert_eq!(stats.total_faults(), 2);
        assert_eq!(stats.passed, 0);
    }

    #[test]
    fn applied_but_unacked_writes_land_before_the_error() {
        // With error_rate 1.0 roughly half the failures apply first; find
        // one and verify the write is durable despite the error.
        let backend = faulty(ChaosConfig::transient_errors(9, 1.0));
        let mut applied_seen = false;
        for i in 0..64 {
            let key = format!("k{i}");
            let _ = backend.put(&key, val("v"));
            if backend.inner().get(&key).unwrap().is_some() {
                applied_seen = true;
                break;
            }
        }
        assert!(applied_seen, "some injected errors must apply first");
        assert!(backend.chaos_stats().errors_applied >= 1);
    }

    #[test]
    fn timeouts_charge_latency_then_fail() {
        let backend = faulty(ChaosConfig::timeouts(5, 1.0, 25_000.0));
        let (result, cost) = measure_cost(|| backend.put("k", val("v")));
        assert!(matches!(result, Err(AftError::StorageTransient(_))));
        assert!(
            cost >= Duration::from_millis(24),
            "the 25ms timeout must be charged, got {cost:?}"
        );
        assert!(
            backend.inner().get("k").unwrap().is_none(),
            "timeouts are never applied"
        );
        assert_eq!(backend.chaos_stats().timeouts, 1);
    }

    #[test]
    fn slow_stripe_charges_only_its_stripe_and_never_errors() {
        let stripes = 8;
        let slow = stripe_of("victim", stripes);
        let backend = faulty(ChaosConfig::slow_stripe(1, slow, stripes, 10_000.0));
        let (result, cost) = measure_cost(|| backend.put("victim", val("v")));
        result.unwrap();
        assert!(
            cost >= Duration::from_millis(9),
            "gray stripe pays: {cost:?}"
        );

        // A key on another stripe is full speed.
        let other = (0..64)
            .map(|i| format!("other{i}"))
            .find(|k| stripe_of(k, stripes) != slow)
            .expect("some key lands elsewhere");
        let (result, cost) = measure_cost(|| backend.put(&other, val("v")));
        result.unwrap();
        assert!(cost < Duration::from_millis(1), "healthy stripe: {cost:?}");
        let stats = backend.chaos_stats();
        assert_eq!(stats.slowed, 1);
        assert_eq!(stats.passed, 1);
        assert_eq!(stats.total_faults(), 0);
    }

    #[test]
    fn disabling_pauses_injection_without_consuming_the_schedule() {
        let backend = faulty(ChaosConfig::transient_errors(3, 1.0));
        backend.set_enabled(false);
        for i in 0..8 {
            backend.put(&format!("k{i}"), val("v")).unwrap();
        }
        assert_eq!(backend.ops_seen(), 0, "paused ops consume no indices");
        assert_eq!(backend.chaos_stats().total_faults(), 0);
        backend.set_enabled(true);
        assert!(backend.put("k", val("v")).is_err(), "schedule resumes");
        assert_eq!(backend.ops_seen(), 1);
    }

    #[test]
    fn quiet_plan_is_fully_transparent() {
        let backend = faulty(ChaosConfig::quiet(1));
        backend.put("k", val("v")).unwrap();
        assert_eq!(backend.get("k").unwrap().unwrap(), val("v"));
        backend
            .put_batch(vec![("a".into(), val("1")), ("b".into(), val("2"))])
            .unwrap();
        assert_eq!(backend.list_prefix("").unwrap().len(), 3);
        backend.delete("a").unwrap();
        backend.delete_batch(&["b".into()]).unwrap();
        assert_eq!(backend.list_prefix("").unwrap(), vec!["k"]);
        let stats = backend.chaos_stats();
        assert_eq!(stats.total_faults(), 0);
        assert_eq!(stats.passed, 7);
        // Capabilities pass through the wrapper untouched.
        assert_eq!(
            backend.supports_batch_put(),
            backend.inner().supports_batch_put()
        );
        assert_eq!(
            backend.supports_deferred_latency(),
            backend.inner().supports_deferred_latency()
        );
    }
}
