//! Latency models for the simulated cloud services.
//!
//! The paper's evaluation runs against real AWS services; this reproduction
//! replaces them with in-process simulators whose latency is drawn from
//! parameterised distributions. Two properties matter for reproducing the
//! *shape* of every figure:
//!
//! 1. The relative magnitudes between services (S3 ≫ DynamoDB > Redis) and
//!    between operations (batch vs sequential writes), and
//! 2. the heaviness of each service's tail (S3's small-object writes have a
//!    notoriously long tail, which drives the 99th-percentile whiskers in
//!    Figures 2–6).
//!
//! A [`LatencyModel`] is a log-normal-ish sampler described by a median and a
//! p99 target. All models are scaled by a single global factor so that a full
//! experiment (tens of thousands of transactions) finishes in seconds while
//! preserving every ratio; `LatencyMode::Virtual` disables sleeping entirely
//! for deterministic unit tests and records the would-have-slept time instead.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

/// Standard normal quantile for p99 (Φ⁻¹(0.99)).
const Z_P99: f64 = 2.326_347_874;

thread_local! {
    /// Simulated latency charged by the current thread since the innermost
    /// [`measure_cost`] scope began. Every [`LatencyModel::finish`] adds to
    /// it, so a caller can learn exactly how much simulated time one storage
    /// operation cost — in `Virtual` mode this is the *only* way to observe
    /// an operation's latency.
    static OP_CHARGE_NS: Cell<u64> = const { Cell::new(0) };
    /// Sleep time suppressed inside the innermost [`capture_deferred`] scope:
    /// durations that `Sleep` mode would have slept but instead handed to the
    /// caller to apply later (the I/O engine's timer wheel).
    static DEFERRED_NS: Cell<u64> = const { Cell::new(0) };
    /// Whether a [`capture_deferred`] scope is active on this thread.
    static DEFER_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` and returns the simulated latency it charged on this thread.
///
/// Works in both modes: in `Sleep` mode the charge equals the time slept
/// (before overhead calibration), in `Virtual` mode it is the recorded
/// would-have-slept time. Nested scopes compose — an outer scope sees the
/// inner scope's charge too.
pub fn measure_cost<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let saved = OP_CHARGE_NS.with(|c| c.replace(0));
    let out = f();
    let charged = OP_CHARGE_NS.with(|c| c.replace(saved.saturating_add(c.get())));
    (out, Duration::from_nanos(charged))
}

/// Runs `f` with sleeping suppressed: any latency that `Sleep` mode would
/// have slept is instead returned as the *deferred* duration, for the caller
/// to apply asynchronously (the I/O engine schedules the operation's
/// completion that far in the future on its timer wheel). The charged
/// duration is returned as well, exactly as [`measure_cost`] would.
///
/// In `Virtual` mode nothing sleeps anyway, so the deferred duration is zero
/// and completions are immediate; the charge still reports the sampled cost.
pub fn capture_deferred<T>(f: impl FnOnce() -> T) -> (T, DeferredCost) {
    let saved_charge = OP_CHARGE_NS.with(|c| c.replace(0));
    let saved_deferred = DEFERRED_NS.with(|c| c.replace(0));
    let was_active = DEFER_ACTIVE.with(|a| a.replace(true));
    let out = f();
    DEFER_ACTIVE.with(|a| a.set(was_active));
    let charged = OP_CHARGE_NS.with(|c| c.replace(saved_charge.saturating_add(c.get())));
    let deferred = DEFERRED_NS.with(|c| c.replace(saved_deferred));
    (
        out,
        DeferredCost {
            charged: Duration::from_nanos(charged),
            deferred: Duration::from_nanos(deferred),
        },
    )
}

/// The cost of one operation run under [`capture_deferred`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeferredCost {
    /// Total simulated latency the operation sampled (both modes).
    pub charged: Duration,
    /// The part of `charged` whose sleep was suppressed and must be applied
    /// by the caller (zero in `Virtual` mode).
    pub deferred: Duration,
}

/// How sampled latencies are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyMode {
    /// Sleep for the sampled (scaled) duration — used by the benchmark
    /// harness, where wall-clock concurrency effects matter (throughput
    /// plateaus, queueing during node failures).
    #[default]
    Sleep,
    /// Do not sleep; only accumulate the sampled time in a counter. Used by
    /// unit and property tests that need determinism and speed.
    Virtual,
}

/// A latency distribution for one class of storage operation.
///
/// Latencies are sampled from a log-normal distribution fitted to the
/// requested median and p99, which matches the long-tailed behaviour of cloud
/// storage services well enough for shape reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Median latency in microseconds (before global scaling).
    pub median_us: f64,
    /// 99th-percentile latency in microseconds (before global scaling).
    pub p99_us: f64,
    /// Additional per-kilobyte transfer cost in microseconds.
    pub per_kb_us: f64,
}

impl LatencyProfile {
    /// A profile with no latency at all.
    pub const ZERO: LatencyProfile = LatencyProfile {
        median_us: 0.0,
        p99_us: 0.0,
        per_kb_us: 0.0,
    };

    /// Creates a profile from a median and p99, both in microseconds.
    pub fn new(median_us: f64, p99_us: f64) -> Self {
        LatencyProfile {
            median_us,
            p99_us: p99_us.max(median_us),
            per_kb_us: 0.0,
        }
    }

    /// Adds a per-kilobyte transfer cost.
    pub fn with_per_kb(mut self, per_kb_us: f64) -> Self {
        self.per_kb_us = per_kb_us;
        self
    }

    /// The log-normal sigma implied by the median/p99 pair.
    fn sigma(&self) -> f64 {
        if self.median_us <= 0.0 || self.p99_us <= self.median_us {
            return 0.0;
        }
        (self.p99_us / self.median_us).ln() / Z_P99
    }

    /// Samples one latency (in microseconds, unscaled) for a payload of
    /// `payload_bytes`.
    pub fn sample_us<R: Rng + ?Sized>(&self, rng: &mut R, payload_bytes: usize) -> f64 {
        if self.median_us <= 0.0 {
            return self.per_kb_us * (payload_bytes as f64 / 1024.0);
        }
        let sigma = self.sigma();
        let base = if sigma == 0.0 {
            self.median_us
        } else {
            // Box-Muller: we only need one standard normal per sample.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            self.median_us * (sigma * z).exp()
        };
        base + self.per_kb_us * (payload_bytes as f64 / 1024.0)
    }
}

/// A scaled, mode-aware latency injector shared by a backend's operations.
#[derive(Debug)]
pub struct LatencyModel {
    mode: LatencyMode,
    /// Global scale factor applied to every sample (e.g. 0.02 turns a 10 ms
    /// service into 200 µs of simulated latency).
    scale: f64,
    /// Total simulated latency injected, in nanoseconds. In `Virtual` mode
    /// this is the only observable effect.
    injected_ns: AtomicU64,
}

impl LatencyModel {
    /// Creates a latency model.
    pub fn new(mode: LatencyMode, scale: f64) -> Arc<Self> {
        Arc::new(LatencyModel {
            mode,
            scale: scale.max(0.0),
            injected_ns: AtomicU64::new(0),
        })
    }

    /// A model that never sleeps and never records time; for unit tests.
    pub fn disabled() -> Arc<Self> {
        Self::new(LatencyMode::Virtual, 0.0)
    }

    /// The injection mode.
    pub fn mode(&self) -> LatencyMode {
        self.mode
    }

    /// The global scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Samples a latency from `profile`, scales it, and applies it according
    /// to the mode. Returns the (scaled) duration that was applied.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        profile: &LatencyProfile,
        rng: &mut R,
        payload_bytes: usize,
    ) -> Duration {
        let duration = self.sample(profile, rng, payload_bytes);
        self.finish(duration)
    }

    /// Samples (and scales) a latency without applying it. Callers that keep
    /// their RNG behind a lock use this to sample while holding the lock and
    /// then call [`finish`](LatencyModel::finish) after releasing it, so that
    /// the simulated service never serialises concurrent requests on its RNG.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        profile: &LatencyProfile,
        rng: &mut R,
        payload_bytes: usize,
    ) -> Duration {
        let us = profile.sample_us(rng, payload_bytes) * self.scale;
        Duration::from_nanos((us * 1000.0) as u64)
    }

    /// Records a previously sampled duration and, in `Sleep` mode, sleeps for
    /// it. Returns the duration.
    ///
    /// Inside a [`capture_deferred`] scope the sleep is suppressed and the
    /// duration is handed to the scope instead, so an I/O engine worker can
    /// apply the latency as a deferred completion rather than by blocking.
    pub fn finish(&self, duration: Duration) -> Duration {
        self.injected_ns
            .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
        OP_CHARGE_NS.with(|c| c.set(c.get().saturating_add(duration.as_nanos() as u64)));
        if self.mode == LatencyMode::Sleep && !duration.is_zero() && DEFER_ACTIVE.with(Cell::get) {
            DEFERRED_NS.with(|c| c.set(c.get().saturating_add(duration.as_nanos() as u64)));
            return duration;
        }
        if self.mode == LatencyMode::Sleep && !duration.is_zero() {
            // Plain `thread::sleep` is used rather than spinning: the
            // simulations run hundreds of client threads, frequently on
            // modest hosts, and busy-waiting would distort every measurement
            // by stealing CPU from the threads doing real work. The kernel
            // overshoots short sleeps by a roughly constant amount, so that
            // overhead is calibrated once and subtracted; durations below the
            // overhead are treated as free rather than inflated to ~100 µs,
            // which preserves the ordering between fast and slow services.
            let overhead = sleep_overhead();
            if duration > overhead {
                std::thread::sleep(duration - overhead);
            }
        }
        duration
    }

    /// Applies a *batch* of previously sampled durations as one overlapped
    /// round trip: the charged (and, in `Sleep` mode, slept) time is the
    /// **maximum** of the samples, not their sum, because the requests were
    /// issued concurrently and the caller waits for the slowest one. This is
    /// the per-batch overlap accounting the virtual clock needs: N in-flight
    /// requests against a backend overlap their sampled latencies.
    ///
    /// Returns the applied (max) duration.
    pub fn finish_batch(&self, durations: &[Duration]) -> Duration {
        let max = durations.iter().copied().max().unwrap_or(Duration::ZERO);
        self.finish(max)
    }

    /// Samples from `profile` using an RNG behind a mutex, holding the lock
    /// only for the sample, then records/sleeps outside the lock.
    pub fn apply_with<R: Rng>(
        &self,
        profile: &LatencyProfile,
        rng: &parking_lot::Mutex<R>,
        payload_bytes: usize,
    ) -> Duration {
        let duration = {
            let mut rng = rng.lock();
            self.sample(profile, &mut *rng, payload_bytes)
        };
        self.finish(duration)
    }

    /// Total simulated latency injected so far.
    pub fn injected(&self) -> Duration {
        Duration::from_nanos(self.injected_ns.load(Ordering::Relaxed))
    }
}

/// A lock-striped latency sampler: one seeded RNG per stripe, so concurrent
/// requests to a simulated service sample latency without serialising on a
/// single RNG mutex. Stripe selection follows the same `hash(key) → stripe`
/// mapping as the data plane, keeping runs reproducible for a fixed key set.
pub struct StripedSampler {
    model: Arc<LatencyModel>,
    rngs: Box<[parking_lot::Mutex<rand::rngs::StdRng>]>,
}

impl StripedSampler {
    /// Creates a sampler over `model` with `stripes` independent RNGs seeded
    /// deterministically from `seed`.
    pub fn new(model: Arc<LatencyModel>, seed: u64, stripes: usize) -> Self {
        use rand::SeedableRng;
        let stripes = stripes.max(1);
        StripedSampler {
            model,
            rngs: (0..stripes)
                .map(|i| {
                    parking_lot::Mutex::new(rand::rngs::StdRng::seed_from_u64(
                        seed.wrapping_add(i as u64),
                    ))
                })
                .collect(),
        }
    }

    /// The underlying latency model.
    pub fn model(&self) -> &Arc<LatencyModel> {
        &self.model
    }

    /// Number of RNG stripes.
    pub fn stripes(&self) -> usize {
        self.rngs.len()
    }

    /// Samples from `profile` on the RNG of `stripe` (held only for the
    /// sample), then records/sleeps outside the lock. Returns the applied
    /// duration.
    pub fn apply(&self, profile: &LatencyProfile, stripe: usize, payload_bytes: usize) -> Duration {
        let duration = self.sample(profile, stripe, payload_bytes);
        self.model.finish(duration)
    }

    /// Samples from `profile` on the RNG of `stripe` *without* applying the
    /// latency. Backends that issue several requests concurrently (a
    /// pipelined client's multi-key write) sample each request here and then
    /// apply the batch once via [`LatencyModel::finish_batch`].
    pub fn sample(
        &self,
        profile: &LatencyProfile,
        stripe: usize,
        payload_bytes: usize,
    ) -> Duration {
        let mut rng = self.rngs[stripe % self.rngs.len()].lock();
        self.model.sample(profile, &mut *rng, payload_bytes)
    }
}

impl std::fmt::Debug for StripedSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedSampler")
            .field("stripes", &self.rngs.len())
            .finish_non_exhaustive()
    }
}

/// The host's `thread::sleep` overshoot for short sleeps, measured once.
fn sleep_overhead() -> Duration {
    static OVERHEAD: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let requested = Duration::from_micros(50);
        let rounds = 10;
        let start = std::time::Instant::now();
        for _ in 0..rounds {
            std::thread::sleep(requested);
        }
        let average = start.elapsed() / rounds;
        average
            .saturating_sub(requested)
            .min(Duration::from_micros(300))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_profile_is_free() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(LatencyProfile::ZERO.sample_us(&mut rng, 4096), 0.0);
    }

    #[test]
    fn median_is_roughly_respected() {
        let profile = LatencyProfile::new(1_000.0, 5_000.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut samples: Vec<f64> = (0..5_000).map(|_| profile.sample_us(&mut rng, 0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - 1_000.0).abs() / 1_000.0 < 0.15,
            "median {median} should be within 15% of 1000"
        );
        let p99 = samples[(samples.len() as f64 * 0.99) as usize];
        assert!(
            (p99 - 5_000.0).abs() / 5_000.0 < 0.35,
            "p99 {p99} should be within 35% of 5000"
        );
    }

    #[test]
    fn per_kb_cost_scales_with_payload() {
        let profile = LatencyProfile::new(100.0, 100.0).with_per_kb(10.0);
        let mut rng = StdRng::seed_from_u64(7);
        let small = profile.sample_us(&mut rng, 1024);
        let large = profile.sample_us(&mut rng, 1024 * 100);
        assert!(large > small + 900.0, "100KB should cost ~990us more");
    }

    #[test]
    fn virtual_mode_records_without_sleeping() {
        let model = LatencyModel::new(LatencyMode::Virtual, 1.0);
        let profile = LatencyProfile::new(50_000.0, 50_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let start = std::time::Instant::now();
        let applied = model.apply(&profile, &mut rng, 0);
        assert!(
            start.elapsed() < Duration::from_millis(20),
            "must not sleep"
        );
        assert!(applied >= Duration::from_millis(40));
        assert!(model.injected() >= Duration::from_millis(40));
    }

    #[test]
    fn sleep_mode_actually_sleeps() {
        let model = LatencyModel::new(LatencyMode::Sleep, 1.0);
        let profile = LatencyProfile::new(2_000.0, 2_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let start = std::time::Instant::now();
        model.apply(&profile, &mut rng, 0);
        assert!(start.elapsed() >= Duration::from_micros(1_500));
    }

    #[test]
    fn scale_factor_shrinks_latency() {
        let model = LatencyModel::new(LatencyMode::Virtual, 0.01);
        let profile = LatencyProfile::new(10_000.0, 10_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let applied = model.apply(&profile, &mut rng, 0);
        assert!(applied <= Duration::from_micros(150));
    }

    #[test]
    fn disabled_model_injects_nothing() {
        let model = LatencyModel::disabled();
        let mut rng = StdRng::seed_from_u64(3);
        model.apply(&LatencyProfile::new(1_000.0, 2_000.0), &mut rng, 0);
        assert_eq!(model.injected(), Duration::ZERO);
    }

    #[test]
    fn striped_sampler_records_into_the_shared_model() {
        let model = LatencyModel::new(LatencyMode::Virtual, 1.0);
        let sampler = StripedSampler::new(Arc::clone(&model), 9, 4);
        assert_eq!(sampler.stripes(), 4);
        let profile = LatencyProfile::new(1_000.0, 1_000.0);
        for stripe in 0..8 {
            let applied = sampler.apply(&profile, stripe, 0);
            assert!(applied >= Duration::from_micros(900));
        }
        assert!(sampler.model().injected() >= Duration::from_millis(7));
    }

    #[test]
    fn striped_sampler_clamps_zero_stripes() {
        let sampler = StripedSampler::new(LatencyModel::disabled(), 1, 0);
        assert_eq!(sampler.stripes(), 1);
        sampler.apply(&LatencyProfile::ZERO, 5, 0);
    }

    #[test]
    fn measure_cost_reports_charged_latency_and_nests() {
        let model = LatencyModel::new(LatencyMode::Virtual, 1.0);
        let profile = LatencyProfile::new(1_000.0, 1_000.0);
        let ((), outer) = measure_cost(|| {
            let mut rng = StdRng::seed_from_u64(1);
            model.apply(&profile, &mut rng, 0);
            let ((), inner) = measure_cost(|| {
                let mut rng = StdRng::seed_from_u64(2);
                model.apply(&profile, &mut rng, 0);
            });
            assert!(inner >= Duration::from_micros(900));
        });
        // The outer scope sees both applications.
        assert!(outer >= Duration::from_micros(1_800), "outer = {outer:?}");
    }

    #[test]
    fn capture_deferred_suppresses_sleep_and_reports_it() {
        let model = LatencyModel::new(LatencyMode::Sleep, 1.0);
        let profile = LatencyProfile::new(20_000.0, 20_000.0);
        let start = std::time::Instant::now();
        let ((), cost) = capture_deferred(|| {
            let mut rng = StdRng::seed_from_u64(1);
            model.apply(&profile, &mut rng, 0);
        });
        assert!(
            start.elapsed() < Duration::from_millis(10),
            "the 20ms sleep must be deferred, not taken"
        );
        assert!(cost.deferred >= Duration::from_millis(18));
        assert_eq!(cost.charged, cost.deferred, "all sleep time was deferred");
    }

    #[test]
    fn capture_deferred_in_virtual_mode_defers_nothing() {
        let model = LatencyModel::new(LatencyMode::Virtual, 1.0);
        let profile = LatencyProfile::new(5_000.0, 5_000.0);
        let ((), cost) = capture_deferred(|| {
            let mut rng = StdRng::seed_from_u64(1);
            model.apply(&profile, &mut rng, 0);
        });
        assert_eq!(cost.deferred, Duration::ZERO);
        assert!(cost.charged >= Duration::from_millis(4));
    }

    #[test]
    fn finish_batch_charges_the_max_not_the_sum() {
        let model = LatencyModel::new(LatencyMode::Virtual, 1.0);
        let durations = [
            Duration::from_millis(3),
            Duration::from_millis(9),
            Duration::from_millis(5),
        ];
        let ((), charged) = measure_cost(|| {
            model.finish_batch(&durations);
        });
        assert_eq!(charged, Duration::from_millis(9));
        assert_eq!(model.injected(), Duration::from_millis(9));
        assert_eq!(model.finish_batch(&[]), Duration::ZERO);
    }
}
