//! Pipelined storage I/O: a submission/completion engine.
//!
//! AFT's real implementation hides storage round trips by issuing requests
//! concurrently — §3.3 only requires that all of a transaction's data writes
//! are durable *before* its commit record, never that they land one after
//! another. The blocking [`StorageEngine`] trait cannot express that: an
//! 8-key commit over a backend without a batch API pays nine sequential
//! round trips. This module adds the missing layer:
//!
//! * [`StorageRequest`] — one storage operation as a value (get / put /
//!   batched put / delete / batched delete / list).
//! * [`IoEngine::submit`] — enqueue a request, get back a pollable
//!   [`IoTicket`]; [`IoEngine::submit_all`] returns a [`CompletionSet`]
//!   whose `wait_all` is the barrier callers place between a transaction's
//!   data writes and its commit-record append.
//! * A **worker pool** executes requests concurrently. For backends whose
//!   simulated latency is client-observed network time
//!   ([`StorageEngine::supports_deferred_latency`]), the worker runs the
//!   operation under [`latency::capture_deferred`]: the data-plane effect
//!   applies immediately, the sampled delay is *not* slept, and the
//!   completion is instead scheduled on a hashed **timer wheel** — so a
//!   handful of workers sustain hundreds of in-flight requests, exactly like
//!   an async client over a real network. Backends that model service-side
//!   occupancy (e.g. [`crate::SimShardedService`]'s request lanes) are
//!   executed blocking, and overlap is bounded by the worker count.
//! * **Overlap accounting for the virtual clock**: every completion carries
//!   the simulated latency it charged, and a [`CompletionSet`] charges the
//!   batch one *wave* at a time — the **maximum** of each
//!   [`IoEngine::overlap_window`]-sized chunk, summed across chunks. A batch
//!   that fits the window costs its slowest member; a sequential engine
//!   (window 1) charges the plain sum. This is how `LatencyMode::Virtual`
//!   experiments observe pipelining without sleeping, without ever
//!   undercharging a batch larger than the engine's real concurrency.
//!
//! [`IoConfig::sequential()`] (zero workers) executes every request inline
//! at `submit`, reproducing the historical one-round-trip-at-a-time
//! behaviour through the same API — the baseline every pipelined experiment
//! compares against. [`SequentialEngine`] is the matching storage-side
//! wrapper: it forces per-key API calls (no batching) so the baseline also
//! pays full sequential round-trip charging inside `put_batch`.
//!
//! A note on simulation fidelity: a deferred operation's data-plane effect is
//! visible in the backend *before* its completion fires, as if the service
//! applied the write mid-flight. AFT never depends on the opposite — data
//! is invisible until a commit record references it, and the record is only
//! submitted after every data completion has fired.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aft_types::{AftResult, Value};
use parking_lot::{Condvar, Mutex};

use crate::engine::{SharedStorage, StorageEngine};
use crate::latency::{capture_deferred, measure_cost};

/// Op-level retry policy for transient storage faults.
///
/// Cloud stores drop, throttle, and time out individual requests as a matter
/// of course; AFT's storage writes are idempotent (every key version lands
/// at a unique storage key, §3.1), so the right place to absorb those faults
/// is the submission path itself. A request that fails with
/// [`aft_types::AftError::is_transient_storage`] is re-issued up to
/// `max_attempts` times with exponential backoff; the backoff is *charged to
/// the operation's simulated cost* (and, for deferred completions, added to
/// the completion delay), so the PR 3 overlap accounting sees retries as
/// what they are — a slower operation — without any thread sleeping through
/// a virtual-clock experiment. Only exhaustion surfaces the typed
/// [`aft_types::AftError::StorageTransient`] error to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts per request (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `base_backoff << (n-1)`, capped at
    /// [`RetryConfig::max_backoff`].
    pub base_backoff: Duration,
    /// Upper bound of a single backoff step.
    pub max_backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryConfig {
    /// No retries: transient faults propagate on the first failure.
    pub fn disabled() -> Self {
        RetryConfig {
            max_attempts: 1,
            ..RetryConfig::default()
        }
    }

    /// Overrides the attempt budget (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The backoff charged before retrying after attempt `attempt` (1-based)
    /// failed.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let stepped = self.base_backoff.saturating_mul(1u32 << shift);
        stepped.min(self.max_backoff)
    }
}

/// Tuning for an [`IoEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    /// Worker threads executing submitted requests. `0` disables the pool:
    /// every request executes inline at `submit`, fully sequentially.
    pub workers: usize,
    /// Maximum requests in flight (submitted, completion not yet fired);
    /// `submit` blocks once the limit is reached, like a bounded device
    /// queue.
    pub max_in_flight: usize,
    /// Resolution of the deferred-completion timer wheel.
    pub wheel_tick: Duration,
    /// Slot count of the timer wheel.
    pub wheel_slots: usize,
    /// Op-level retry policy for transient storage faults.
    pub retry: RetryConfig,
}

impl Default for IoConfig {
    fn default() -> Self {
        Self::pipelined()
    }
}

impl IoConfig {
    /// The standard pipelined configuration: an 8-worker pool with a deep
    /// in-flight window and a 100 µs wheel tick.
    pub fn pipelined() -> Self {
        IoConfig {
            workers: 8,
            max_in_flight: 256,
            wheel_tick: Duration::from_micros(100),
            wheel_slots: 128,
            retry: RetryConfig::default(),
        }
    }

    /// The explicitly-sequential configuration: no workers, requests execute
    /// inline one at a time and a batch charges the *sum* of its members.
    pub fn sequential() -> Self {
        IoConfig {
            workers: 0,
            max_in_flight: 1,
            wheel_tick: Duration::from_micros(100),
            wheel_slots: 1,
            retry: RetryConfig::default(),
        }
    }

    /// Overrides the worker count (`0` = sequential).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the in-flight window (clamped to ≥ 1).
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self
    }

    /// Overrides the transient-fault retry policy.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = retry;
        self
    }
}

/// One storage operation, as a submittable value.
#[derive(Debug, Clone)]
pub enum StorageRequest {
    /// Read one key.
    Get(String),
    /// Write one key.
    Put(String, Value),
    /// Write several keys through the backend's batch API (the backend
    /// decides how many API calls that takes).
    PutBatch(Vec<(String, Value)>),
    /// Delete one key.
    Delete(String),
    /// Delete several keys through the backend's batch API.
    DeleteBatch(Vec<String>),
    /// List all keys with a prefix.
    List(String),
}

/// The successful result of a [`StorageRequest`].
#[derive(Debug, Clone)]
pub enum StorageResponse {
    /// A `Get`'s value (or `None` for a missing key).
    Value(Option<Value>),
    /// A write or delete completed.
    Done,
    /// A `List`'s keys, in lexicographic order.
    Keys(Vec<String>),
}

impl StorageResponse {
    /// The value of a `Get` response; `None` for any other kind.
    pub fn into_value(self) -> Option<Value> {
        match self {
            StorageResponse::Value(v) => v,
            _ => None,
        }
    }

    /// The keys of a `List` response; empty for any other kind.
    pub fn into_keys(self) -> Vec<String> {
        match self {
            StorageResponse::Keys(keys) => keys,
            _ => Vec::new(),
        }
    }
}

/// A completed request: its result plus the simulated latency it charged.
#[derive(Debug)]
pub struct IoOutcome {
    /// The operation's result.
    pub result: AftResult<StorageResponse>,
    /// Simulated latency the operation charged (meaningful in both latency
    /// modes; in `Virtual` mode it is the only observable cost).
    pub cost: Duration,
}

type Ready = (AftResult<StorageResponse>, Duration);

/// Shared completion slot between a submitter and the executing side.
struct Completion {
    state: Mutex<Option<Ready>>,
    cond: Condvar,
}

impl Completion {
    fn new() -> Arc<Self> {
        Arc::new(Completion {
            state: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn fire(&self, result: AftResult<StorageResponse>, cost: Duration) {
        *self.state.lock() = Some((result, cost));
        self.cond.notify_all();
    }
}

/// A pollable handle for one submitted request.
pub struct IoTicket {
    completion: Arc<Completion>,
}

impl IoTicket {
    /// Returns true once the request's completion has fired.
    pub fn is_complete(&self) -> bool {
        self.completion.state.lock().is_some()
    }

    /// Blocks until the completion fires and returns it.
    pub fn wait(self) -> IoOutcome {
        let mut state = self.completion.state.lock();
        loop {
            if let Some((result, cost)) = state.take() {
                return IoOutcome { result, cost };
            }
            self.completion.cond.wait(&mut state);
        }
    }
}

/// The completions of one submitted batch.
pub struct CompletionSet {
    tickets: Vec<IoTicket>,
    /// The engine's overlap window at submission time (1 = sequential).
    window: usize,
}

impl CompletionSet {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Returns true for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Barrier: waits for every member and returns the batch outcome.
    pub fn wait_all(self) -> BatchOutcome {
        let mut results = Vec::with_capacity(self.tickets.len());
        let mut costs = Vec::with_capacity(self.tickets.len());
        for ticket in self.tickets {
            let outcome = ticket.wait();
            results.push(outcome.result);
            costs.push(outcome.cost);
        }
        // Overlap accounting, bounded by the engine's real concurrency: at
        // most `window` members are in flight together, so the batch is
        // charged one wave at a time — the max of each window-sized chunk,
        // summed across chunks. A sequential engine (window 1) degenerates to
        // the plain sum; a batch that fits the window costs its slowest
        // member.
        let window = self.window.max(1);
        let cost = costs
            .chunks(window)
            .map(|wave| wave.iter().copied().max().unwrap_or(Duration::ZERO))
            .sum();
        BatchOutcome {
            results,
            costs,
            cost,
        }
    }
}

/// The outcome of a [`CompletionSet::wait_all`] barrier.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-member results, in submission order.
    pub results: Vec<AftResult<StorageResponse>>,
    /// Per-member charged latencies, in submission order.
    pub costs: Vec<Duration>,
    /// The batch's charged latency: the sum over window-sized waves of each
    /// wave's slowest member. With everything in one window that is the max
    /// of the members; with a sequential engine (window 1) it is the sum.
    pub cost: Duration,
}

impl BatchOutcome {
    /// Returns the batch cost if every member succeeded, or the first error.
    pub fn ok(self) -> AftResult<Duration> {
        for result in self.results {
            result?;
        }
        Ok(self.cost)
    }

    /// Returns every member's response if all succeeded, plus the batch
    /// cost; or the first error.
    pub fn into_responses(self) -> AftResult<(Vec<StorageResponse>, Duration)> {
        let mut responses = Vec::with_capacity(self.results.len());
        for result in self.results {
            responses.push(result?);
        }
        Ok((responses, self.cost))
    }
}

/// Point-in-time counters of an [`IoEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Requests submitted.
    pub submitted: u64,
    /// Completions fired.
    pub completed: u64,
    /// Completions that went through the timer wheel (deferred latency).
    pub deferred: u64,
    /// Requests executed inline by the sequential path.
    pub inline: u64,
    /// Highest in-flight depth observed.
    pub peak_in_flight: u64,
    /// Transient-fault retries performed by the submission path.
    pub retries: u64,
    /// Requests whose retry budget was exhausted (the typed transient error
    /// propagated to the caller).
    pub retry_exhausted: u64,
}

#[derive(Debug, Default)]
struct IoStatsInner {
    submitted: AtomicU64,
    completed: AtomicU64,
    deferred: AtomicU64,
    inline: AtomicU64,
    peak_in_flight: AtomicU64,
    retries: AtomicU64,
    retry_exhausted: AtomicU64,
}

struct Job {
    request: StorageRequest,
    completion: Arc<Completion>,
}

struct EngineState {
    queue: VecDeque<Job>,
    in_flight: usize,
    shutdown: bool,
}

struct Inner {
    storage: SharedStorage,
    config: IoConfig,
    /// Whether the backend's latency may be deferred to the timer wheel.
    deferrable: bool,
    state: Mutex<EngineState>,
    /// Signals workers that the queue is non-empty (or shutdown).
    work_cond: Condvar,
    /// Signals submitters that in-flight depth dropped below the window.
    space_cond: Condvar,
    wheel: TimerWheel,
    stats: IoStatsInner,
}

impl Inner {
    fn execute_request(&self, request: StorageRequest) -> AftResult<StorageResponse> {
        let storage = &self.storage;
        match request {
            StorageRequest::Get(key) => storage.get(&key).map(StorageResponse::Value),
            StorageRequest::Put(key, value) => {
                storage.put(&key, value).map(|()| StorageResponse::Done)
            }
            StorageRequest::PutBatch(items) => {
                storage.put_batch(items).map(|()| StorageResponse::Done)
            }
            StorageRequest::Delete(key) => storage.delete(&key).map(|()| StorageResponse::Done),
            StorageRequest::DeleteBatch(keys) => {
                storage.delete_batch(&keys).map(|()| StorageResponse::Done)
            }
            StorageRequest::List(prefix) => storage.list_prefix(&prefix).map(StorageResponse::Keys),
        }
    }

    /// Executes `request`, absorbing transient storage faults per the retry
    /// policy. Returns the final result plus the total backoff charged; the
    /// failed attempts' own sampled latency accumulates in the ambient
    /// [`measure_cost`]/[`capture_deferred`] scope like any other charge.
    fn execute_with_retry(
        &self,
        request: StorageRequest,
    ) -> (AftResult<StorageResponse>, Duration) {
        let retry = self.config.retry;
        let mut backoff_total = Duration::ZERO;
        let mut attempt = 1u32;
        loop {
            let result = self.execute_request(request.clone());
            match &result {
                Err(e) if e.is_transient_storage() && attempt < retry.max_attempts => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    backoff_total += retry.backoff_for(attempt);
                    attempt += 1;
                }
                Err(e) if e.is_transient_storage() => {
                    self.stats.retry_exhausted.fetch_add(1, Ordering::Relaxed);
                    return (result, backoff_total);
                }
                _ => return (result, backoff_total),
            }
        }
    }

    /// Fires a completion and releases its in-flight slot. The counter and
    /// the slot are updated *before* the completion fires: a thread that
    /// returns from `wait()` must observe its own request as completed.
    fn finish(&self, completion: &Completion, result: AftResult<StorageResponse>, cost: Duration) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock();
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.space_cond.notify_all();
        completion.fire(result, cost);
    }

    /// One worker's execution of one job.
    fn run_job(self: &Arc<Self>, job: Job) {
        if self.deferrable {
            let ((result, backoff), cost) =
                capture_deferred(|| self.execute_with_retry(job.request));
            // Retry backoff is part of the operation's simulated duration:
            // charge it, and push the deferred completion out by it too.
            let charged = cost.charged + backoff;
            if cost.deferred.is_zero() {
                self.finish(&job.completion, result, charged);
            } else {
                // The sampled network delay was suppressed; deliver the
                // completion when it would really have arrived.
                self.stats.deferred.fetch_add(1, Ordering::Relaxed);
                self.wheel.schedule(
                    cost.deferred + backoff,
                    Fired {
                        inner: Arc::clone(self),
                        completion: job.completion,
                        result,
                        cost: charged,
                    },
                );
            }
        } else {
            // Service-occupancy backends keep exact blocking semantics; the
            // worker is busy for the whole service time.
            let ((result, backoff), charged) =
                measure_cost(|| self.execute_with_retry(job.request));
            self.finish(&job.completion, result, charged + backoff);
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let job = {
                let mut state = self.state.lock();
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    self.work_cond.wait(&mut state);
                }
            };
            self.run_job(job);
        }
    }
}

/// A deferred completion waiting on the timer wheel.
struct Fired {
    inner: Arc<Inner>,
    completion: Arc<Completion>,
    result: AftResult<StorageResponse>,
    cost: Duration,
}

impl Fired {
    fn fire(self) {
        self.inner.finish(&self.completion, self.result, self.cost);
    }
}

struct Scheduled {
    /// Absolute wheel tick at which the entry fires. Congruent to its slot
    /// index mod the slot count, so the cursor's pass over the slot at
    /// exactly this tick (or a later revolution, for long delays) delivers
    /// it — an entry is never parked for a spurious extra revolution.
    deadline_tick: u64,
    payload: Fired,
}

struct WheelState {
    slots: Vec<Vec<Scheduled>>,
    /// Ticks consumed so far (cursor = current_tick % slots). Fast-forwarded
    /// to the wall clock whenever the wheel goes from empty to non-empty, so
    /// idle time is never replayed tick by tick.
    current_tick: u64,
    pending: usize,
    shutdown: bool,
}

/// A hashed timer wheel delivering deferred completions.
///
/// Entries carry an absolute deadline tick and hash to `deadline_tick %
/// slots`; delays longer than one revolution simply stay in their slot until
/// the cursor's tick count reaches the deadline. The timer thread parks
/// while the wheel is empty, so engines over `Virtual`-mode backends (which
/// never defer) cost nothing at rest. Precision is one tick, biased early:
/// the deadline is rounded *down* to a tick boundary, mirroring how the
/// blocking path treats sub-overhead sleeps as free — firing up to one tick
/// early compensates the timed-wait overshoot of the host.
struct TimerWheel {
    tick: Duration,
    state: Mutex<WheelState>,
    cond: Condvar,
    epoch: Instant,
}

impl TimerWheel {
    fn new(tick: Duration, slots: usize) -> Self {
        let tick = tick.max(Duration::from_micros(10));
        TimerWheel {
            tick,
            state: Mutex::new(WheelState {
                slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
                current_tick: 0,
                pending: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            epoch: Instant::now(),
        }
    }

    /// The absolute tick the wall clock had reached at `at` (rounded down).
    fn wall_tick(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.epoch).as_nanos() / self.tick.as_nanos()) as u64
    }

    fn schedule(&self, delay: Duration, payload: Fired) {
        let now = Instant::now();
        let mut state = self.state.lock();
        if state.pending == 0 {
            // Empty wheel: jump the cursor to the present so the timer
            // thread's catch-up never replays the idle gap tick by tick.
            state.current_tick = self.wall_tick(now);
        }
        // Rounded down, but always strictly in the future of the cursor so
        // the next pass delivers it.
        let deadline_tick = self.wall_tick(now + delay).max(state.current_tick + 1);
        let slot = (deadline_tick % state.slots.len() as u64) as usize;
        state.slots[slot].push(Scheduled {
            deadline_tick,
            payload,
        });
        state.pending += 1;
        drop(state);
        self.cond.notify_all();
    }

    fn timer_loop(&self) {
        let mut state = self.state.lock();
        loop {
            if state.shutdown {
                // Unblock any remaining waiters: their results are already
                // computed, only the simulated delay is cut short.
                let leftovers: Vec<Scheduled> =
                    state.slots.iter_mut().flat_map(std::mem::take).collect();
                state.pending = 0;
                drop(state);
                for entry in leftovers {
                    entry.payload.fire();
                }
                return;
            }
            if state.pending == 0 {
                self.cond.wait(&mut state);
                continue;
            }
            let _ = self.cond.wait_for(&mut state, self.tick);
            if state.shutdown {
                continue;
            }
            // Advance to the tick the wall clock has reached (wait_for may
            // overshoot; catching up keeps the wheel drift-free).
            let target_tick = self.wall_tick(Instant::now());
            let mut due: Vec<Fired> = Vec::new();
            while state.current_tick < target_tick {
                state.current_tick += 1;
                let tick_now = state.current_tick;
                let cursor = (tick_now % state.slots.len() as u64) as usize;
                let slot = &mut state.slots[cursor];
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].deadline_tick <= tick_now {
                        due.push(slot.swap_remove(i).payload);
                    } else {
                        // A later revolution's entry; leave it in place.
                        i += 1;
                    }
                }
            }
            state.pending -= due.len().min(state.pending);
            if !due.is_empty() {
                drop(state);
                for payload in due {
                    payload.fire();
                }
                state = self.state.lock();
            }
        }
    }

    fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cond.notify_all();
    }
}

/// The pipelined storage I/O engine: a submission queue, a worker pool, and
/// a timer wheel for deferred completions. See the module docs.
pub struct IoEngine {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    timer: Option<JoinHandle<()>>,
}

impl IoEngine {
    /// Creates an engine over `storage` and spawns its threads (none in the
    /// sequential configuration).
    pub fn new(storage: SharedStorage, config: IoConfig) -> Self {
        let deferrable = storage.supports_deferred_latency();
        let inner = Arc::new(Inner {
            deferrable,
            wheel: TimerWheel::new(config.wheel_tick, config.wheel_slots),
            state: Mutex::new(EngineState {
                queue: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work_cond: Condvar::new(),
            space_cond: Condvar::new(),
            stats: IoStatsInner::default(),
            storage,
            config: IoConfig {
                max_in_flight: config.max_in_flight.max(1),
                ..config
            },
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        // The wheel only ever holds entries for deferrable backends.
        let timer = (config.workers > 0 && deferrable).then(|| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || inner.wheel.timer_loop())
        });
        IoEngine {
            inner,
            workers,
            timer,
        }
    }

    /// The engine's storage backend.
    pub fn storage(&self) -> &SharedStorage {
        &self.inner.storage
    }

    /// The engine's tuning.
    pub fn config(&self) -> IoConfig {
        self.inner.config
    }

    /// Whether requests overlap (worker pool active) or run one at a time.
    pub fn is_pipelined(&self) -> bool {
        !self.workers.is_empty()
    }

    /// How many requests can truly be in flight together: the in-flight
    /// window for deferrable backends (workers only shepherd requests onto
    /// the timer wheel), the worker count for blocking backends, and 1 for
    /// the sequential configuration. Batch cost accounting uses this so the
    /// virtual clock never undercharges a batch larger than the overlap the
    /// engine actually provides.
    pub fn overlap_window(&self) -> usize {
        if self.workers.is_empty() {
            1
        } else if self.inner.deferrable {
            self.inner.config.max_in_flight
        } else {
            self.workers.len().min(self.inner.config.max_in_flight)
        }
    }

    /// Point-in-time engine counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        let s = &self.inner.stats;
        IoStatsSnapshot {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            deferred: s.deferred.load(Ordering::Relaxed),
            inline: s.inline.load(Ordering::Relaxed),
            peak_in_flight: s.peak_in_flight.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            retry_exhausted: s.retry_exhausted.load(Ordering::Relaxed),
        }
    }

    /// Submits one request and returns its completion ticket. Blocks while
    /// the in-flight window is full (bounded queue depth).
    pub fn submit(&self, request: StorageRequest) -> IoTicket {
        self.inner.stats.submitted.fetch_add(1, Ordering::Relaxed);
        let completion = Completion::new();
        if self.workers.is_empty() {
            // Sequential path: execute inline, charging the full round trip
            // (and any retry backoff) on the calling thread.
            self.inner.stats.inline.fetch_add(1, Ordering::Relaxed);
            let ((result, backoff), charged) =
                measure_cost(|| self.inner.execute_with_retry(request));
            self.inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            completion.fire(result, charged + backoff);
            return IoTicket { completion };
        }
        let mut state = self.inner.state.lock();
        while state.in_flight >= self.inner.config.max_in_flight {
            self.inner.space_cond.wait(&mut state);
        }
        state.in_flight += 1;
        let depth = state.in_flight as u64;
        state.queue.push_back(Job {
            request,
            completion: Arc::clone(&completion),
        });
        drop(state);
        self.inner
            .stats
            .peak_in_flight
            .fetch_max(depth, Ordering::Relaxed);
        self.inner.work_cond.notify_one();
        IoTicket { completion }
    }

    /// Submits a batch of requests and returns their completion set.
    pub fn submit_all(&self, requests: impl IntoIterator<Item = StorageRequest>) -> CompletionSet {
        CompletionSet {
            tickets: requests.into_iter().map(|r| self.submit(r)).collect(),
            window: self.overlap_window(),
        }
    }

    /// Submits one request and waits for it.
    pub fn execute(&self, request: StorageRequest) -> IoOutcome {
        self.submit(request).wait()
    }

    /// Durably writes every item, overlapping the round trips, and returns
    /// the batch's charged latency.
    ///
    /// Backends with a native batch API get one `PutBatch` request (their
    /// own call-count limits apply); backends without one get one `Put` per
    /// item — the same API calls a sequential client would make, issued
    /// concurrently.
    pub fn put_all(&self, mut items: Vec<(String, Value)>) -> AftResult<Duration> {
        match items.len() {
            0 => Ok(Duration::ZERO),
            1 => {
                let (key, value) = items.pop().expect("len checked");
                let outcome = self.execute(StorageRequest::Put(key, value));
                outcome.result.map(|_| outcome.cost)
            }
            _ if self.inner.storage.supports_batch_put() => {
                let outcome = self.execute(StorageRequest::PutBatch(items));
                outcome.result.map(|_| outcome.cost)
            }
            _ => self
                .submit_all(items.into_iter().map(|(k, v)| StorageRequest::Put(k, v)))
                .wait_all()
                .ok(),
        }
    }

    /// Reads every key, overlapping the round trips; the responses come back
    /// in submission order.
    pub fn get_all(&self, keys: impl IntoIterator<Item = String>) -> CompletionSet {
        self.submit_all(keys.into_iter().map(StorageRequest::Get))
    }
}

impl Drop for IoEngine {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
        }
        self.inner.work_cond.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.inner.wheel.shutdown();
        if let Some(timer) = self.timer.take() {
            let _ = timer.join();
        }
    }
}

impl std::fmt::Debug for IoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoEngine")
            .field("config", &self.inner.config)
            .field("pipelined", &self.is_pipelined())
            .field("deferrable", &self.inner.deferrable)
            .finish_non_exhaustive()
    }
}

/// A storage wrapper that forces fully sequential, per-key API calls.
///
/// `put_batch` and `delete_batch` degrade to one single-key call per item,
/// each paying its full round trip, and `supports_batch_put` is false — the
/// exact behaviour of the pre-pipelining implementation. Pair it with
/// [`IoConfig::sequential()`] for the baseline leg of pipelining
/// experiments; the pipelined backends themselves now charge concurrent
/// batches the max of their samples, so this wrapper is the only place
/// sequential full-RTT charging survives.
pub struct SequentialEngine {
    inner: SharedStorage,
}

impl SequentialEngine {
    /// Wraps `inner` in the sequential shell.
    pub fn new(inner: SharedStorage) -> Arc<Self> {
        Arc::new(SequentialEngine { inner })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &SharedStorage {
        &self.inner
    }
}

impl StorageEngine for SequentialEngine {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.inner.get(key)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.inner.put(key, value)
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        for (key, value) in items {
            self.inner.put(&key, value)?;
        }
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.inner.delete(key)
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        for key in keys {
            self.inner.delete(key)?;
        }
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.inner.list_prefix(prefix)
    }

    fn supports_batch_put(&self) -> bool {
        false
    }

    fn supports_deferred_latency(&self) -> bool {
        self.inner.supports_deferred_latency()
    }

    fn stats(&self) -> Arc<crate::counters::StorageStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyMode, LatencyModel, LatencyProfile};
    use crate::memory::InMemoryStore;
    use crate::profiles::ServiceProfile;
    use crate::s3::SimS3;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn s3_virtual() -> SharedStorage {
        SimS3::with_profile(
            ServiceProfile::s3(),
            LatencyModel::new(LatencyMode::Virtual, 1.0),
            7,
        )
    }

    #[test]
    fn submit_round_trips_through_a_memory_backend() {
        let engine = IoEngine::new(InMemoryStore::shared(), IoConfig::pipelined());
        assert!(engine.is_pipelined());
        let put = engine.execute(StorageRequest::Put("k".into(), val("v")));
        assert!(put.result.is_ok());
        let got = engine.execute(StorageRequest::Get("k".into()));
        assert_eq!(got.result.unwrap().into_value().unwrap(), val("v"));
        let missing = engine.execute(StorageRequest::Get("nope".into()));
        assert!(missing.result.unwrap().into_value().is_none());
        let stats = engine.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn sequential_config_executes_inline() {
        let engine = IoEngine::new(InMemoryStore::shared(), IoConfig::sequential());
        assert!(!engine.is_pipelined());
        let ticket = engine.submit(StorageRequest::Put("k".into(), val("v")));
        assert!(ticket.is_complete(), "inline execution completes at submit");
        assert!(ticket.wait().result.is_ok());
        assert_eq!(engine.stats().inline, 1);
    }

    #[test]
    fn list_and_delete_requests_work() {
        let engine = IoEngine::new(InMemoryStore::shared(), IoConfig::pipelined());
        engine
            .submit_all((0..4).map(|i| StorageRequest::Put(format!("data/{i}"), val("x"))))
            .wait_all()
            .ok()
            .unwrap();
        let listed = engine.execute(StorageRequest::List("data/".into()));
        assert_eq!(listed.result.unwrap().into_keys().len(), 4);
        engine
            .execute(StorageRequest::Delete("data/0".into()))
            .result
            .unwrap();
        engine
            .execute(StorageRequest::DeleteBatch(vec![
                "data/1".into(),
                "data/2".into(),
            ]))
            .result
            .unwrap();
        let listed = engine.execute(StorageRequest::List("data/".into()));
        assert_eq!(listed.result.unwrap().into_keys(), vec!["data/3"]);
    }

    #[test]
    fn pipelined_batch_charges_max_sequential_charges_sum() {
        // A fixed 10ms write latency makes the accounting exact: 8 overlapped
        // puts charge one round trip, 8 sequential puts charge eight.
        let profile = ServiceProfile {
            write: LatencyProfile::new(10_000.0, 10_000.0),
            ..ServiceProfile::zero()
        };
        let fixed_s3 = |seed| -> SharedStorage {
            SimS3::with_profile(profile, LatencyModel::new(LatencyMode::Virtual, 1.0), seed)
        };
        let items: Vec<(String, Value)> = (0..8).map(|i| (format!("k{i}"), val("v"))).collect();

        let pipelined = IoEngine::new(fixed_s3(7), IoConfig::pipelined());
        let pipe_cost = pipelined.put_all(items.clone()).unwrap();

        let sequential = IoEngine::new(
            SequentialEngine::new(fixed_s3(7)) as SharedStorage,
            IoConfig::sequential(),
        );
        let seq_cost = sequential.put_all(items).unwrap();

        assert!(
            pipe_cost >= Duration::from_millis(9) && pipe_cost <= Duration::from_millis(11),
            "pipelined batch charges the max: {pipe_cost:?}"
        );
        assert!(
            seq_cost >= Duration::from_millis(79) && seq_cost <= Duration::from_millis(81),
            "sequential batch charges the sum: {seq_cost:?}"
        );
    }

    #[test]
    fn batch_cost_is_charged_in_window_sized_waves() {
        // A fixed 10ms write and an overlap window of 2: six puts cannot all
        // overlap, so the batch charges three waves — 30ms, not 10ms.
        let profile = ServiceProfile {
            write: LatencyProfile::new(10_000.0, 10_000.0),
            ..ServiceProfile::zero()
        };
        let storage: SharedStorage =
            SimS3::with_profile(profile, LatencyModel::new(LatencyMode::Virtual, 1.0), 3);
        let engine = IoEngine::new(storage, IoConfig::pipelined().with_max_in_flight(2));
        assert_eq!(engine.overlap_window(), 2);
        let outcome = engine
            .submit_all((0..6).map(|i| StorageRequest::Put(format!("k{i}"), val("v"))))
            .wait_all();
        let cost = outcome.ok().unwrap();
        assert!(
            cost >= Duration::from_millis(29) && cost <= Duration::from_millis(32),
            "3 waves x 10ms expected, got {cost:?}"
        );
    }

    #[test]
    fn batch_outcome_reports_per_member_costs() {
        let engine = IoEngine::new(s3_virtual(), IoConfig::pipelined());
        let outcome = engine
            .submit_all((0..4).map(|i| StorageRequest::Put(format!("k{i}"), val("v"))))
            .wait_all();
        assert_eq!(outcome.costs.len(), 4);
        let max = outcome.costs.iter().copied().max().unwrap();
        assert_eq!(outcome.cost, max, "pipelined batch cost is the max member");
        assert!(outcome.ok().is_ok());
    }

    #[test]
    fn deferred_completions_overlap_wall_clock_sleeps() {
        // Four 20ms S3 writes, pipelined: the batch completes in roughly one
        // write's wall time because the sleeps are deferred to the wheel and
        // overlap. Generous bounds keep this stable on loaded hosts.
        let profile = ServiceProfile {
            write: LatencyProfile::new(20_000.0, 20_000.0),
            ..ServiceProfile::zero()
        };
        let storage: SharedStorage =
            SimS3::with_profile(profile, LatencyModel::new(LatencyMode::Sleep, 1.0), 3);
        let engine = IoEngine::new(storage, IoConfig::pipelined());
        let items: Vec<(String, Value)> = (0..4).map(|i| (format!("k{i}"), val("v"))).collect();
        let start = Instant::now();
        engine.put_all(items).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(15),
            "completions must still wait out the latency, took {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(60),
            "four 20ms writes must overlap, took {elapsed:?}"
        );
        assert!(engine.stats().deferred >= 4);
    }

    #[test]
    fn in_flight_window_applies_backpressure_without_losing_requests() {
        let engine = IoEngine::new(
            s3_virtual(),
            IoConfig::pipelined().with_workers(2).with_max_in_flight(2),
        );
        let outcome = engine
            .submit_all((0..16).map(|i| StorageRequest::Put(format!("k{i}"), val("v"))))
            .wait_all();
        assert!(outcome.ok().is_ok());
        let stats = engine.stats();
        assert_eq!(stats.completed, 16);
        assert!(stats.peak_in_flight <= 2);
    }

    #[test]
    fn sequential_engine_forces_per_key_calls() {
        use crate::counters::OpKind;
        let raw = s3_virtual();
        let wrapped = SequentialEngine::new(Arc::clone(&raw) as SharedStorage);
        assert!(!wrapped.supports_batch_put());
        assert!(wrapped.supports_deferred_latency());
        assert_eq!(wrapped.name(), "sequential");
        wrapped
            .put_batch(vec![("a".into(), val("1")), ("b".into(), val("2"))])
            .unwrap();
        wrapped.delete_batch(&["a".into(), "b".into()]).unwrap();
        let stats = wrapped.stats();
        assert_eq!(stats.calls(OpKind::Put), 2);
        assert_eq!(stats.calls(OpKind::Delete), 2);
        assert_eq!(stats.calls(OpKind::BatchPut), 0);
        assert_eq!(stats.calls(OpKind::BatchDelete), 0);
    }

    #[test]
    fn transient_faults_are_absorbed_by_retry() {
        use crate::chaos::FaultyBackend;
        use crate::latency::LatencyModel;
        use aft_chaos::{ChaosSpec, StorageChaos};
        // ~30% transient errors: with 4 attempts per op the chance of any of
        // 32 puts exhausting is ~0.8%^… negligible for a fixed seed; verify
        // the workload completes, retries were actually performed, and the
        // final state is intact.
        let backend: SharedStorage = FaultyBackend::from_spec(
            InMemoryStore::shared(),
            &ChaosSpec::new(0xC4A05).storage(StorageChaos::transient_errors(0.3)),
            LatencyModel::new(LatencyMode::Virtual, 1.0),
        );
        let engine = IoEngine::new(backend, IoConfig::pipelined());
        let outcome = engine
            .submit_all((0..32).map(|i| StorageRequest::Put(format!("k{i}"), val("v"))))
            .wait_all();
        outcome.ok().expect("retries must absorb transient faults");
        let listed = engine.execute(StorageRequest::List("k".into()));
        assert_eq!(listed.result.unwrap().into_keys().len(), 32);
        let stats = engine.stats();
        assert!(stats.retries > 0, "a 30% fault rate must trigger retries");
        assert_eq!(stats.retry_exhausted, 0);
    }

    #[test]
    fn retry_exhaustion_surfaces_the_typed_error() {
        use crate::chaos::FaultyBackend;
        use crate::latency::LatencyModel;
        use aft_chaos::{ChaosSpec, StorageChaos};
        use aft_types::AftError;
        // Every operation fails: the budget exhausts and the typed error
        // propagates — no panic, no untyped failure.
        let backend: SharedStorage = FaultyBackend::from_spec(
            InMemoryStore::shared(),
            &ChaosSpec::new(7).storage(StorageChaos::transient_errors(1.0)),
            LatencyModel::new(LatencyMode::Virtual, 1.0),
        );
        let engine = IoEngine::new(
            backend,
            IoConfig::pipelined().with_retry(RetryConfig::default().with_max_attempts(3)),
        );
        let outcome = engine.execute(StorageRequest::Put("k".into(), val("v")));
        match outcome.result {
            Err(AftError::StorageTransient(_)) => {}
            other => panic!("expected StorageTransient after exhaustion, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.retries, 2, "3 attempts = 2 retries");
        assert_eq!(stats.retry_exhausted, 1);
    }

    #[test]
    fn retry_backoff_is_charged_to_the_operation_cost() {
        use crate::chaos::FaultyBackend;
        use crate::latency::LatencyModel;
        use aft_chaos::{ChaosSpec, StorageChaos};
        // Zero-latency inner store, 100% fault rate, 4 attempts: the only
        // cost is the three backoff steps (0.5 + 1 + 2 ms with the default
        // policy).
        let backend: SharedStorage = FaultyBackend::from_spec(
            InMemoryStore::shared(),
            &ChaosSpec::new(7).storage(StorageChaos::transient_errors(1.0)),
            LatencyModel::new(LatencyMode::Virtual, 1.0),
        );
        let engine = IoEngine::new(backend, IoConfig::sequential());
        let outcome = engine.execute(StorageRequest::Get("k".into()));
        assert!(outcome.result.is_err());
        assert!(
            outcome.cost >= Duration::from_micros(3_400)
                && outcome.cost <= Duration::from_micros(3_600),
            "0.5+1+2 ms of backoff expected, got {:?}",
            outcome.cost
        );
    }

    #[test]
    fn backoff_schedule_grows_and_caps() {
        let retry = RetryConfig::default();
        assert_eq!(retry.backoff_for(1), Duration::from_micros(500));
        assert_eq!(retry.backoff_for(2), Duration::from_millis(1));
        assert_eq!(retry.backoff_for(3), Duration::from_millis(2));
        assert_eq!(retry.backoff_for(10), Duration::from_millis(20), "capped");
        assert_eq!(RetryConfig::disabled().max_attempts, 1);
        assert_eq!(
            RetryConfig::default().with_max_attempts(0).max_attempts,
            1,
            "clamped"
        );
    }

    #[test]
    fn batched_deletes_overlap_via_submit_all() {
        // The shape GlobalGc uses: one DeleteBatch request per transaction,
        // submitted together and barriered, with per-member results.
        let engine = IoEngine::new(s3_virtual(), IoConfig::pipelined());
        for i in 0..6 {
            engine
                .execute(StorageRequest::Put(format!("k{i}"), val("v")))
                .result
                .unwrap();
        }
        let outcome = engine
            .submit_all([
                StorageRequest::DeleteBatch(vec!["k0".into(), "k1".into()]),
                StorageRequest::DeleteBatch(vec!["k2".into(), "k3".into()]),
                StorageRequest::DeleteBatch(vec!["k4".into(), "k5".into()]),
            ])
            .wait_all();
        assert_eq!(outcome.results.len(), 3);
        let cost = outcome.ok().unwrap();
        assert!(cost > Duration::ZERO);
        let listed = engine.execute(StorageRequest::List("k".into()));
        assert!(listed.result.unwrap().into_keys().is_empty());
    }
}
