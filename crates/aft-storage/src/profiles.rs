//! Calibrated latency profiles for the simulated cloud services.
//!
//! The absolute numbers below are taken from the magnitudes reported in the
//! paper's evaluation (Figures 2 and 3) and from public characterisations of
//! the services: DynamoDB single-digit-millisecond reads/writes with a
//! moderate tail, Redis sub-millisecond operations, S3 tens-of-milliseconds
//! object operations with a very heavy tail for small objects. What matters
//! for reproducing the figures is not the absolute values but the ratios and
//! tail shapes, which survive the global scale factor applied by
//! [`LatencyModel`](crate::LatencyModel).

use crate::latency::LatencyProfile;

/// The full latency description of one simulated storage service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProfile {
    /// Single-key read.
    pub read: LatencyProfile,
    /// Single-key write.
    pub write: LatencyProfile,
    /// Base cost of a batched write API call (DynamoDB `BatchWriteItem`).
    pub batch_write_base: LatencyProfile,
    /// Additional cost per item inside a batched write, in microseconds.
    pub batch_write_per_item_us: f64,
    /// Single-key delete.
    pub delete: LatencyProfile,
    /// Prefix scan / list.
    pub list: LatencyProfile,
    /// Storage-level transactional call (only meaningful for DynamoDB).
    pub transact: LatencyProfile,
}

impl ServiceProfile {
    /// A profile with no latency at all — used by unit tests.
    pub fn zero() -> Self {
        ServiceProfile {
            read: LatencyProfile::ZERO,
            write: LatencyProfile::ZERO,
            batch_write_base: LatencyProfile::ZERO,
            batch_write_per_item_us: 0.0,
            delete: LatencyProfile::ZERO,
            list: LatencyProfile::ZERO,
            transact: LatencyProfile::ZERO,
        }
    }

    /// AWS DynamoDB: single-digit-millisecond KVS with a batch-write API and
    /// a (more expensive) transactional API.
    pub fn dynamodb() -> Self {
        ServiceProfile {
            read: LatencyProfile::new(2_500.0, 9_000.0).with_per_kb(15.0),
            write: LatencyProfile::new(3_000.0, 11_000.0).with_per_kb(20.0),
            batch_write_base: LatencyProfile::new(3_200.0, 12_000.0).with_per_kb(10.0),
            batch_write_per_item_us: 350.0,
            delete: LatencyProfile::new(2_800.0, 10_000.0),
            list: LatencyProfile::new(6_000.0, 25_000.0),
            transact: LatencyProfile::new(6_500.0, 22_000.0).with_per_kb(20.0),
        }
    }

    /// AWS ElastiCache / Redis in cluster mode: memory-speed KVS.
    pub fn redis() -> Self {
        ServiceProfile {
            read: LatencyProfile::new(500.0, 1_400.0).with_per_kb(4.0),
            write: LatencyProfile::new(550.0, 1_600.0).with_per_kb(5.0),
            // MSET within a shard: slightly more than a single SET.
            batch_write_base: LatencyProfile::new(650.0, 1_900.0).with_per_kb(4.0),
            batch_write_per_item_us: 60.0,
            delete: LatencyProfile::new(500.0, 1_400.0),
            list: LatencyProfile::new(2_000.0, 6_000.0),
            transact: LatencyProfile::new(900.0, 2_500.0),
        }
    }

    /// AWS S3: throughput-oriented object store; slow, very heavy-tailed
    /// writes for small objects, no batch API.
    pub fn s3() -> Self {
        ServiceProfile {
            read: LatencyProfile::new(14_000.0, 80_000.0).with_per_kb(8.0),
            write: LatencyProfile::new(28_000.0, 250_000.0).with_per_kb(10.0),
            // S3 has no batch write; the simulator never uses these fields but
            // keeps them equal to the single-write cost for completeness.
            batch_write_base: LatencyProfile::new(28_000.0, 250_000.0).with_per_kb(10.0),
            batch_write_per_item_us: 0.0,
            delete: LatencyProfile::new(18_000.0, 90_000.0),
            list: LatencyProfile::new(40_000.0, 150_000.0),
            transact: LatencyProfile::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_ordering_matches_the_paper() {
        // The property every figure depends on: Redis < DynamoDB << S3.
        let d = ServiceProfile::dynamodb();
        let r = ServiceProfile::redis();
        let s = ServiceProfile::s3();
        assert!(r.read.median_us < d.read.median_us);
        assert!(d.read.median_us < s.read.median_us);
        assert!(r.write.median_us < d.write.median_us);
        assert!(d.write.median_us < s.write.median_us);
    }

    #[test]
    fn s3_tail_is_much_heavier_than_dynamo() {
        let d = ServiceProfile::dynamodb();
        let s = ServiceProfile::s3();
        let d_ratio = d.write.p99_us / d.write.median_us;
        let s_ratio = s.write.p99_us / s.write.median_us;
        assert!(
            s_ratio > 2.0 * d_ratio,
            "S3 writes must have a much heavier tail"
        );
    }

    #[test]
    fn dynamo_batch_beats_sequential_for_multi_writes() {
        let d = ServiceProfile::dynamodb();
        // 10 sequential writes vs one batch of 10.
        let sequential = 10.0 * d.write.median_us;
        let batched = d.batch_write_base.median_us + 10.0 * d.batch_write_per_item_us;
        assert!(batched < sequential / 2.0);
    }

    #[test]
    fn zero_profile_is_free() {
        let z = ServiceProfile::zero();
        assert_eq!(z.read.median_us, 0.0);
        assert_eq!(z.batch_write_per_item_us, 0.0);
    }
}
