//! Per-backend operation statistics.
//!
//! Every simulated backend counts its API calls and payload bytes. The
//! evaluation harness uses these counters to explain latency differences the
//! same way the paper does (e.g. §6.3: "for all configurations, we make 11
//! API calls — 10 for the IOs and 1 for the final commit record").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// The kinds of storage API calls the engines expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A single-key read.
    Get,
    /// A single-key write.
    Put,
    /// A batched multi-key write (one API call).
    BatchPut,
    /// A single-key delete.
    Delete,
    /// A batched multi-key delete (one API call).
    BatchDelete,
    /// A prefix scan / list operation.
    List,
    /// A storage-level transactional write (DynamoDB transaction mode).
    TransactWrite,
    /// A storage-level transactional read (DynamoDB transaction mode).
    TransactRead,
}

impl OpKind {
    /// All operation kinds, for iteration in reports.
    pub const ALL: [OpKind; 8] = [
        OpKind::Get,
        OpKind::Put,
        OpKind::BatchPut,
        OpKind::Delete,
        OpKind::BatchDelete,
        OpKind::List,
        OpKind::TransactWrite,
        OpKind::TransactRead,
    ];

    fn index(self) -> usize {
        match self {
            OpKind::Get => 0,
            OpKind::Put => 1,
            OpKind::BatchPut => 2,
            OpKind::Delete => 3,
            OpKind::BatchDelete => 4,
            OpKind::List => 5,
            OpKind::TransactWrite => 6,
            OpKind::TransactRead => 7,
        }
    }

    /// Human-readable name used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::BatchPut => "batch_put",
            OpKind::Delete => "delete",
            OpKind::BatchDelete => "batch_delete",
            OpKind::List => "list",
            OpKind::TransactWrite => "transact_write",
            OpKind::TransactRead => "transact_read",
        }
    }
}

/// Per-stripe access counters for a lock-striped backend.
///
/// A striped backend records one count per stripe touched; the counts roll up
/// into the owning [`StorageStats`] (their sum equals the number of per-key
/// accesses the backend served) and expose the stripe balance, which the
/// scaling experiments report to show the striping is actually spreading load.
#[derive(Debug)]
pub struct StripeCounters {
    ops: Box<[AtomicU64]>,
}

impl StripeCounters {
    /// Creates zeroed counters for `stripes` stripes.
    pub fn new(stripes: usize) -> Arc<Self> {
        Arc::new(StripeCounters {
            ops: (0..stripes.max(1)).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Number of stripes tracked.
    pub fn stripes(&self) -> usize {
        self.ops.len()
    }

    /// Records one access to `stripe`.
    pub fn record(&self, stripe: usize) {
        self.ops[stripe % self.ops.len()].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time per-stripe access counts.
    pub fn counts(&self) -> Vec<u64> {
        self.ops.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Total accesses across every stripe.
    pub fn total(&self) -> u64 {
        self.ops.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Thread-safe operation counters shared by a backend and its observers.
#[derive(Debug, Default)]
pub struct StorageStats {
    calls: [AtomicU64; 8],
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    conflicts: AtomicU64,
    /// Per-stripe counters attached by lock-striped backends.
    stripes: OnceLock<Arc<StripeCounters>>,
}

impl StorageStats {
    /// Creates a fresh, zeroed counter set behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one API call of the given kind.
    pub fn record_call(&self, op: OpKind) {
        self.calls[op.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records bytes returned to the caller.
    pub fn record_read_bytes(&self, n: usize) {
        self.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records bytes accepted from the caller.
    pub fn record_written_bytes(&self, n: usize) {
        self.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Records a transactional conflict abort (DynamoDB transaction mode).
    pub fn record_conflict(&self) {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
    }

    /// Attaches the per-stripe counters of a lock-striped backend so
    /// observers holding only the stats handle can read the stripe balance.
    /// Attaching a second set is a no-op (a backend has one map).
    pub fn attach_stripes(&self, counters: Arc<StripeCounters>) {
        let _ = self.stripes.set(counters);
    }

    /// Per-stripe access counts of the attached striped backend, or an empty
    /// vector if the backend is not striped.
    pub fn stripe_counts(&self) -> Vec<u64> {
        self.stripes.get().map(|s| s.counts()).unwrap_or_default()
    }

    /// Number of calls recorded for `op`.
    pub fn calls(&self, op: OpKind) -> u64 {
        self.calls[op.index()].load(Ordering::Relaxed)
    }

    /// Total API calls across all operation kinds.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StorageStatsSnapshot {
        let mut calls = [0u64; 8];
        for (i, c) in self.calls.iter().enumerate() {
            calls[i] = c.load(Ordering::Relaxed);
        }
        StorageStatsSnapshot {
            calls,
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.calls {
            c.store(0, Ordering::Relaxed);
        }
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.conflicts.store(0, Ordering::Relaxed);
        if let Some(stripes) = self.stripes.get() {
            for c in &stripes.ops {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// An immutable snapshot of [`StorageStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStatsSnapshot {
    calls: [u64; 8],
    /// Bytes returned by reads.
    pub bytes_read: u64,
    /// Bytes accepted by writes.
    pub bytes_written: u64,
    /// Transactional conflict aborts observed.
    pub conflicts: u64,
}

impl StorageStatsSnapshot {
    /// Number of calls recorded for `op` at snapshot time.
    pub fn calls(&self, op: OpKind) -> u64 {
        self.calls[op.index()]
    }

    /// Total API calls at snapshot time.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// The per-kind difference between two snapshots (`self - earlier`).
    pub fn delta_since(&self, earlier: &StorageStatsSnapshot) -> StorageStatsSnapshot {
        let mut calls = [0u64; 8];
        for i in 0..calls.len() {
            calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
        }
        StorageStatsSnapshot {
            calls,
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = StorageStats::default();
        s.record_call(OpKind::Get);
        s.record_call(OpKind::Get);
        s.record_call(OpKind::BatchPut);
        s.record_read_bytes(100);
        s.record_written_bytes(50);
        s.record_conflict();

        assert_eq!(s.calls(OpKind::Get), 2);
        assert_eq!(s.calls(OpKind::BatchPut), 1);
        assert_eq!(s.calls(OpKind::Put), 0);
        assert_eq!(s.total_calls(), 3);

        let snap = s.snapshot();
        assert_eq!(snap.bytes_read, 100);
        assert_eq!(snap.bytes_written, 50);
        assert_eq!(snap.conflicts, 1);
    }

    #[test]
    fn snapshot_delta() {
        let s = StorageStats::default();
        s.record_call(OpKind::Put);
        let first = s.snapshot();
        s.record_call(OpKind::Put);
        s.record_call(OpKind::Get);
        let second = s.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.calls(OpKind::Put), 1);
        assert_eq!(delta.calls(OpKind::Get), 1);
        assert_eq!(delta.total_calls(), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = StorageStats::default();
        s.record_call(OpKind::List);
        s.record_written_bytes(10);
        s.reset();
        assert_eq!(s.total_calls(), 0);
        assert_eq!(s.snapshot().bytes_written, 0);
    }

    #[test]
    fn stripe_counters_roll_up_and_reset() {
        let stats = StorageStats::default();
        assert!(stats.stripe_counts().is_empty(), "no stripes attached yet");
        let stripes = StripeCounters::new(4);
        stats.attach_stripes(Arc::clone(&stripes));
        stripes.record(0);
        stripes.record(1);
        stripes.record(1);
        assert_eq!(stats.stripe_counts(), vec![1, 2, 0, 0]);
        assert_eq!(stripes.total(), 3);
        // A second attach is ignored; the first counters stay live.
        stats.attach_stripes(StripeCounters::new(2));
        assert_eq!(stats.stripe_counts().len(), 4);
        stats.reset();
        assert_eq!(stripes.total(), 0);
    }

    #[test]
    fn all_kinds_have_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for op in OpKind::ALL {
            assert!(seen.insert(op.index()), "duplicate index for {:?}", op);
            assert!(!op.name().is_empty());
        }
    }
}
