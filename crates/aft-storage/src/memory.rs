//! In-memory blob storage.
//!
//! [`MemoryMap`] is the data plane shared by every simulated backend: a
//! sorted map of string keys to opaque blobs behind a read-write lock. The
//! simulators wrap it with latency models and API-shape restrictions;
//! [`InMemoryStore`] exposes it directly as a zero-latency [`StorageEngine`]
//! for unit tests and protocol-only benchmarks.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use aft_types::{AftResult, Value};
use parking_lot::RwLock;

use crate::counters::{OpKind, StorageStats};
use crate::engine::StorageEngine;

/// A thread-safe sorted map of string keys to blobs.
#[derive(Debug, Default)]
pub struct MemoryMap {
    inner: RwLock<BTreeMap<String, Value>>,
}

impl MemoryMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Returns the blob stored at `key`.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.inner.read().get(key).cloned()
    }

    /// Stores `value` at `key`, returning the previous blob if any.
    pub fn put(&self, key: &str, value: Value) -> Option<Value> {
        self.inner.write().insert(key.to_owned(), value)
    }

    /// Removes `key`, returning the previous blob if any.
    pub fn remove(&self, key: &str) -> Option<Value> {
        self.inner.write().remove(key)
    }

    /// Returns all keys starting with `prefix` in lexicographic order.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let map = self.inner.read();
        map.range::<String, _>((Bound::Included(prefix.to_owned()), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Returns true if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Total bytes of stored payloads (keys excluded).
    pub fn payload_bytes(&self) -> usize {
        self.inner.read().values().map(|v| v.len()).sum()
    }
}

/// A zero-latency storage engine backed by [`MemoryMap`].
#[derive(Debug, Default)]
pub struct InMemoryStore {
    map: MemoryMap,
    stats: Arc<StorageStats>,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryStore::default()
    }

    /// Creates an empty store behind a shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Number of keys stored; useful for GC assertions in tests.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StorageEngine for InMemoryStore {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.stats.record_call(OpKind::Get);
        let v = self.map.get(key);
        if let Some(v) = &v {
            self.stats.record_read_bytes(v.len());
        }
        Ok(v)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.stats.record_call(OpKind::Put);
        self.stats.record_written_bytes(value.len());
        self.map.put(key, value);
        Ok(())
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        self.stats.record_call(OpKind::BatchPut);
        for (k, v) in items {
            self.stats.record_written_bytes(v.len());
            self.map.put(&k, v);
        }
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.stats.record_call(OpKind::Delete);
        self.map.remove(key);
        Ok(())
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        self.stats.record_call(OpKind::BatchDelete);
        for k in keys {
            self.map.remove(k);
        }
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.stats.record_call(OpKind::List);
        Ok(self.map.keys_with_prefix(prefix))
    }

    fn supports_batch_put(&self) -> bool {
        true
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_delete_round_trip() {
        let store = InMemoryStore::new();
        assert!(store.get("k").unwrap().is_none());
        store.put("k", val("v1")).unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), val("v1"));
        store.put("k", val("v2")).unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), val("v2"));
        store.delete("k").unwrap();
        assert!(store.get("k").unwrap().is_none());
        // Deleting a missing key is not an error.
        store.delete("k").unwrap();
    }

    #[test]
    fn batch_put_stores_everything_in_one_call() {
        let store = InMemoryStore::new();
        store
            .put_batch(vec![
                ("a".into(), val("1")),
                ("b".into(), val("2")),
                ("c".into(), val("3")),
            ])
            .unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.stats().calls(OpKind::BatchPut), 1);
        assert_eq!(store.stats().calls(OpKind::Put), 0);
    }

    #[test]
    fn list_prefix_returns_sorted_matches_only() {
        let store = InMemoryStore::new();
        for k in ["commit/002", "commit/001", "data/k/001", "commit/010"] {
            store.put(k, val("x")).unwrap();
        }
        let listed = store.list_prefix("commit/").unwrap();
        assert_eq!(listed, vec!["commit/001", "commit/002", "commit/010"]);
        assert!(store.list_prefix("nothing/").unwrap().is_empty());
    }

    #[test]
    fn delete_batch_removes_all() {
        let store = InMemoryStore::new();
        store.put("a", val("1")).unwrap();
        store.put("b", val("2")).unwrap();
        store
            .delete_batch(&["a".to_owned(), "b".to_owned(), "missing".to_owned()])
            .unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn memory_map_prefix_scan_is_exact() {
        let map = MemoryMap::new();
        map.put("ab", val("1"));
        map.put("abc", val("2"));
        map.put("abd", val("3"));
        map.put("ac", val("4"));
        assert_eq!(map.keys_with_prefix("ab"), vec!["ab", "abc", "abd"]);
        assert_eq!(map.keys_with_prefix("abc"), vec!["abc"]);
        assert_eq!(map.payload_bytes(), 4);
    }

    #[test]
    fn stats_track_bytes() {
        let store = InMemoryStore::new();
        store.put("k", val("hello")).unwrap();
        store.get("k").unwrap();
        let snap = store.stats().snapshot();
        assert_eq!(snap.bytes_written, 5);
        assert_eq!(snap.bytes_read, 5);
    }
}
