//! In-memory blob storage.
//!
//! [`MemoryMap`] is the data plane shared by every simulated backend: a
//! sorted map of string keys to opaque blobs, lock-striped N ways so that
//! concurrent clients touching different keys never serialise on one lock
//! (see [`sharded`](crate::sharded)). The simulators wrap it with latency
//! models and API-shape restrictions; [`InMemoryStore`] exposes it directly
//! as a zero-latency [`StorageEngine`] for unit tests, protocol-only
//! benchmarks, and the throughput-scaling experiments.

use std::sync::Arc;

use aft_types::{AftResult, Value};

use crate::counters::{OpKind, StorageStats, StripeCounters};
use crate::engine::StorageEngine;
use crate::sharded::{ShardedMap, DEFAULT_STRIPES};

/// A thread-safe sorted map of string keys to blobs.
///
/// Internally lock-striped; the default stripe count is
/// [`DEFAULT_STRIPES`]. Use [`MemoryMap::with_stripes`] to pick a specific
/// count (`1` reproduces the historical single-global-lock behaviour, which
/// the scaling experiments use as their baseline).
#[derive(Debug, Default)]
pub struct MemoryMap {
    inner: ShardedMap,
}

impl MemoryMap {
    /// Creates an empty map with the default stripe count.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Creates an empty map with an explicit stripe count (clamped to ≥ 1).
    pub fn with_stripes(stripes: usize) -> Self {
        MemoryMap {
            inner: ShardedMap::new(stripes),
        }
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.inner.stripe_count()
    }

    /// The map's per-stripe access counters.
    pub fn stripe_counters(&self) -> Arc<StripeCounters> {
        self.inner.counters()
    }

    /// Returns the blob stored at `key`.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.inner.get(key)
    }

    /// Stores `value` at `key`, returning the previous blob if any.
    pub fn put(&self, key: &str, value: Value) -> Option<Value> {
        self.inner.put(key, value)
    }

    /// Removes `key`, returning the previous blob if any.
    pub fn remove(&self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Returns all keys starting with `prefix` in lexicographic order.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner.keys_with_prefix(prefix)
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns true if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Total bytes of stored payloads (keys excluded).
    pub fn payload_bytes(&self) -> usize {
        self.inner.payload_bytes()
    }
}

/// A zero-latency storage engine backed by [`MemoryMap`].
#[derive(Debug)]
pub struct InMemoryStore {
    map: MemoryMap,
    stats: Arc<StorageStats>,
}

impl Default for InMemoryStore {
    fn default() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }
}

impl InMemoryStore {
    /// Creates an empty store with the default stripe count.
    pub fn new() -> Self {
        InMemoryStore::default()
    }

    /// Creates an empty store with an explicit lock-stripe count.
    pub fn with_stripes(stripes: usize) -> Self {
        let map = MemoryMap::with_stripes(stripes);
        let stats = StorageStats::new_shared();
        stats.attach_stripes(map.stripe_counters());
        InMemoryStore { map, stats }
    }

    /// Creates an empty store behind a shared handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Number of lock stripes in the data plane.
    pub fn stripe_count(&self) -> usize {
        self.map.stripe_count()
    }

    /// Number of keys stored; useful for GC assertions in tests.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns true if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl StorageEngine for InMemoryStore {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn get(&self, key: &str) -> AftResult<Option<Value>> {
        self.stats.record_call(OpKind::Get);
        let v = self.map.get(key);
        if let Some(v) = &v {
            self.stats.record_read_bytes(v.len());
        }
        Ok(v)
    }

    fn put(&self, key: &str, value: Value) -> AftResult<()> {
        self.stats.record_call(OpKind::Put);
        self.stats.record_written_bytes(value.len());
        self.map.put(key, value);
        Ok(())
    }

    fn put_batch(&self, items: Vec<(String, Value)>) -> AftResult<()> {
        self.stats.record_call(OpKind::BatchPut);
        for (k, v) in items {
            self.stats.record_written_bytes(v.len());
            self.map.put(&k, v);
        }
        Ok(())
    }

    fn delete(&self, key: &str) -> AftResult<()> {
        self.stats.record_call(OpKind::Delete);
        self.map.remove(key);
        Ok(())
    }

    fn delete_batch(&self, keys: &[String]) -> AftResult<()> {
        self.stats.record_call(OpKind::BatchDelete);
        for k in keys {
            self.map.remove(k);
        }
        Ok(())
    }

    fn list_prefix(&self, prefix: &str) -> AftResult<Vec<String>> {
        self.stats.record_call(OpKind::List);
        Ok(self.map.keys_with_prefix(prefix))
    }

    fn supports_batch_put(&self) -> bool {
        true
    }

    fn supports_deferred_latency(&self) -> bool {
        // Zero latency: nothing to defer, but deferral is trivially safe.
        true
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_delete_round_trip() {
        let store = InMemoryStore::new();
        assert!(store.get("k").unwrap().is_none());
        store.put("k", val("v1")).unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), val("v1"));
        store.put("k", val("v2")).unwrap();
        assert_eq!(store.get("k").unwrap().unwrap(), val("v2"));
        store.delete("k").unwrap();
        assert!(store.get("k").unwrap().is_none());
        // Deleting a missing key is not an error.
        store.delete("k").unwrap();
    }

    #[test]
    fn batch_put_stores_everything_in_one_call() {
        let store = InMemoryStore::new();
        store
            .put_batch(vec![
                ("a".into(), val("1")),
                ("b".into(), val("2")),
                ("c".into(), val("3")),
            ])
            .unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.stats().calls(OpKind::BatchPut), 1);
        assert_eq!(store.stats().calls(OpKind::Put), 0);
    }

    #[test]
    fn list_prefix_returns_sorted_matches_only() {
        let store = InMemoryStore::new();
        for k in ["commit/002", "commit/001", "data/k/001", "commit/010"] {
            store.put(k, val("x")).unwrap();
        }
        let listed = store.list_prefix("commit/").unwrap();
        assert_eq!(listed, vec!["commit/001", "commit/002", "commit/010"]);
        assert!(store.list_prefix("nothing/").unwrap().is_empty());
    }

    #[test]
    fn delete_batch_removes_all() {
        let store = InMemoryStore::new();
        store.put("a", val("1")).unwrap();
        store.put("b", val("2")).unwrap();
        store
            .delete_batch(&["a".to_owned(), "b".to_owned(), "missing".to_owned()])
            .unwrap();
        assert!(store.is_empty());
    }

    #[test]
    fn memory_map_prefix_scan_is_exact() {
        let map = MemoryMap::new();
        map.put("ab", val("1"));
        map.put("abc", val("2"));
        map.put("abd", val("3"));
        map.put("ac", val("4"));
        assert_eq!(map.keys_with_prefix("ab"), vec!["ab", "abc", "abd"]);
        assert_eq!(map.keys_with_prefix("abc"), vec!["abc"]);
        assert_eq!(map.payload_bytes(), 4);
    }

    #[test]
    fn striped_and_single_stripe_stores_behave_identically() {
        let striped = InMemoryStore::with_stripes(8);
        let single = InMemoryStore::with_stripes(1);
        assert_eq!(striped.stripe_count(), 8);
        assert_eq!(single.stripe_count(), 1);
        for store in [&striped, &single] {
            for i in 0..50 {
                store.put(&format!("data/k/{i:03}"), val("x")).unwrap();
            }
        }
        assert_eq!(
            striped.list_prefix("data/").unwrap(),
            single.list_prefix("data/").unwrap()
        );
        assert_eq!(striped.len(), single.len());
        // The striped store's per-key accesses roll up into its stats.
        assert_eq!(striped.stats().stripe_counts().iter().sum::<u64>(), 50);
        assert_eq!(striped.stats().stripe_counts().len(), 8);
    }

    #[test]
    fn stats_track_bytes() {
        let store = InMemoryStore::new();
        store.put("k", val("hello")).unwrap();
        store.get("k").unwrap();
        let snap = store.stats().snapshot();
        assert_eq!(snap.bytes_written, 5);
        assert_eq!(snap.bytes_read, 5);
    }
}
