//! Property-based test: the pipelined I/O engine is observationally
//! equivalent to the sequential engine.
//!
//! Pipelining may only change *when* round trips happen, never what the
//! store ends up holding: applying the same batched workload through a
//! pipelined [`IoEngine`] and through the sequential wrapper must produce
//! byte-identical final storage state. Batches use distinct keys per batch
//! (concurrent writes to one key have no defined order in either engine) and
//! the engine barriers between batches, exactly like the commit flush does.
//!
//! A second property checks the overlap accounting itself: a pipelined
//! batch's charged latency equals its slowest member, never the sum.

use std::sync::Arc;
use std::time::Duration;

use aft_storage::io::{IoConfig, IoEngine, StorageRequest};
use aft_storage::{
    LatencyMode, LatencyModel, SequentialEngine, ServiceProfile, SharedStorage, SimS3,
};
use aft_types::Value;
use bytes::Bytes;
use proptest::prelude::*;

/// One batch of a generated workload; keys inside a batch are deduplicated.
#[derive(Debug, Clone)]
enum Step {
    Puts(Vec<(String, Vec<u8>)>),
    Deletes(Vec<String>),
    NativeBatch(Vec<(String, Vec<u8>)>),
}

fn arb_key() -> impl Strategy<Value = String> {
    // A small alphabet so batches collide across (never within) batches.
    "[ab]{1,2}[0-9]{0,1}".prop_map(|tail| format!("data/{tail}"))
}

fn dedup_keys<T>(items: Vec<(String, T)>) -> Vec<(String, T)> {
    let mut seen = std::collections::HashSet::new();
    items
        .into_iter()
        .filter(|(k, _)| seen.insert(k.clone()))
        .collect()
}

fn arb_batch() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => proptest::collection::vec(
            (arb_key(), proptest::collection::vec(any::<u8>(), 0..16)),
            1..8
        )
        .prop_map(|items| Step::Puts(dedup_keys(items))),
        2 => proptest::collection::vec(arb_key(), 1..8).prop_map(|keys| {
            let mut keys = keys;
            keys.sort();
            keys.dedup();
            Step::Deletes(keys)
        }),
        2 => proptest::collection::vec(
            (arb_key(), proptest::collection::vec(any::<u8>(), 0..16)),
            1..8
        )
        .prop_map(|items| Step::NativeBatch(dedup_keys(items))),
    ]
}

fn apply(engine: &IoEngine, batch: &Step) {
    match batch {
        Step::Puts(items) => {
            // Individual puts submitted concurrently, barriered.
            let outcome = engine
                .submit_all(items.iter().map(|(k, v)| {
                    StorageRequest::Put(k.clone(), Value::from(Bytes::from(v.clone())))
                }))
                .wait_all();
            outcome.ok().unwrap();
        }
        Step::Deletes(keys) => {
            engine
                .execute(StorageRequest::DeleteBatch(keys.clone()))
                .result
                .unwrap();
        }
        Step::NativeBatch(items) => {
            engine
                .put_all(
                    items
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(Bytes::from(v.clone()))))
                        .collect(),
                )
                .unwrap();
        }
    }
}

/// Every key/value pair currently in the store, rendered for comparison.
fn full_state(engine: &IoEngine) -> Vec<(String, Option<Value>)> {
    let keys = engine
        .execute(StorageRequest::List(String::new()))
        .result
        .unwrap()
        .into_keys();
    keys.into_iter()
        .map(|k| {
            let v = engine
                .execute(StorageRequest::Get(k.clone()))
                .result
                .unwrap()
                .into_value();
            (k, v)
        })
        .collect()
}

fn s3_virtual(seed: u64) -> SharedStorage {
    SimS3::with_profile(
        ServiceProfile::s3(),
        LatencyModel::new(LatencyMode::Virtual, 1.0),
        seed,
    )
}

proptest! {
    #[test]
    fn pipelined_engine_reaches_the_sequential_final_state(
        batches in proptest::collection::vec(arb_batch(), 1..24),
        workers in 2usize..12,
    ) {
        let sequential = IoEngine::new(
            SequentialEngine::new(s3_virtual(1)) as SharedStorage,
            IoConfig::sequential(),
        );
        let pipelined = IoEngine::new(
            s3_virtual(1),
            IoConfig::pipelined().with_workers(workers),
        );
        for batch in &batches {
            apply(&sequential, batch);
            apply(&pipelined, batch);
        }
        prop_assert_eq!(full_state(&pipelined), full_state(&sequential));
    }

    #[test]
    fn pipelined_batch_cost_is_the_max_member_never_the_sum(
        keys in proptest::collection::vec(arb_key(), 2..10),
    ) {
        let mut keys = keys;
        keys.sort();
        keys.dedup();
        let engine = IoEngine::new(s3_virtual(9), IoConfig::pipelined());
        let outcome = engine
            .submit_all(keys.iter().map(|k| {
                StorageRequest::Put(k.clone(), Value::from(Bytes::from_static(b"v")))
            }))
            .wait_all();
        let max = outcome.costs.iter().copied().max().unwrap_or(Duration::ZERO);
        let sum: Duration = outcome.costs.iter().sum();
        prop_assert_eq!(outcome.cost, max);
        if outcome.costs.len() > 1 {
            prop_assert!(outcome.cost < sum, "overlap accounting must beat the sum");
        }
        prop_assert!(outcome.ok().is_ok());
    }
}

#[test]
fn engines_share_one_arc_backend_safely() {
    // Many engines over one backend (the cluster layout: every node has its
    // own engine over the shared store) must interleave without losing
    // writes.
    let backend = s3_virtual(4);
    let engines: Vec<IoEngine> = (0..4)
        .map(|_| IoEngine::new(Arc::clone(&backend) as SharedStorage, IoConfig::pipelined()))
        .collect();
    std::thread::scope(|scope| {
        for (i, engine) in engines.iter().enumerate() {
            scope.spawn(move || {
                for j in 0..25 {
                    engine
                        .execute(StorageRequest::Put(
                            format!("e{i}/k{j}"),
                            Value::from(Bytes::from_static(b"v")),
                        ))
                        .result
                        .unwrap();
                }
            });
        }
    });
    let listed = engines[0]
        .execute(StorageRequest::List(String::new()))
        .result
        .unwrap()
        .into_keys();
    assert_eq!(listed.len(), 100);
}
