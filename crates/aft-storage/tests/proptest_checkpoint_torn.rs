//! Property-based test of checkpoint torn-write safety: a checkpoint whose
//! manifest *or* any chunk is cut off at an **arbitrary byte prefix** (the
//! shape a crash mid-PUT leaves behind) must be CRC-rejected by
//! [`load_latest_checkpoint`], which then falls back cleanly to the previous
//! intact checkpoint — and to "no checkpoint" when every one is torn.

use std::sync::Arc;

use aft_storage::checkpoint::{chunk_key, manifest_key, publish_checkpoint, Checkpoint};
use aft_storage::io::{IoConfig, IoEngine};
use aft_storage::{load_latest_checkpoint, InMemoryStore, SharedStorage};
use aft_types::{Key, TransactionId, TransactionRecord, Uuid};
use proptest::prelude::*;

fn record(ts: u64) -> TransactionRecord {
    TransactionRecord::new(
        TransactionId::new(ts, Uuid::from_u128(ts as u128)),
        [Key::new(format!("k{}", ts % 7))],
    )
}

/// Two published checkpoints on fresh storage; returns the storage handle
/// and the engine.
fn two_checkpoints(older: u64, newer: u64) -> (SharedStorage, IoEngine) {
    let storage: SharedStorage = InMemoryStore::shared();
    let io = IoEngine::new(Arc::clone(&storage), IoConfig::pipelined());
    let first = Checkpoint::new(older, (1..=5).map(record).collect());
    publish_checkpoint(&io, &first, || Ok(())).unwrap();
    let second = Checkpoint::new(newer, (1..=9).map(record).collect());
    publish_checkpoint(&io, &second, || Ok(())).unwrap();
    (storage, io)
}

/// Overwrites `key` with a strict byte prefix of its current blob.
fn tear(storage: &SharedStorage, key: &str, frac: f64) -> usize {
    let blob = storage.get(key).unwrap().expect("blob must exist");
    let cut = ((blob.len() as f64) * frac) as usize;
    storage
        .put(key, bytes::Bytes::copy_from_slice(&blob[..cut]))
        .unwrap();
    cut
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tearing the newest checkpoint's manifest or chunk at any byte
    /// prefix makes the loader reject exactly that checkpoint and fall
    /// back to the previous intact one.
    #[test]
    fn torn_prefix_is_rejected_with_clean_fallback(
        frac in 0.0..1.0f64,
        tear_chunk in any::<bool>(),
    ) {
        let (storage, io) = two_checkpoints(1, 2);
        let target = if tear_chunk { chunk_key(2, 0) } else { manifest_key(2) };
        tear(&storage, &target, frac);

        let load = load_latest_checkpoint(&io).unwrap();
        prop_assert_eq!(load.rejected, 1, "the torn checkpoint must be rejected");
        let fallback = load.checkpoint.expect("previous checkpoint must load");
        prop_assert_eq!(fallback.id, 1);
        prop_assert_eq!(fallback.records.len(), 5);
    }

    /// When every checkpoint is torn, the loader reports "no checkpoint"
    /// (full-replay fallback) instead of erroring or returning garbage.
    #[test]
    fn all_torn_means_no_checkpoint(
        frac_a in 0.0..1.0f64,
        frac_b in 0.0..1.0f64,
        chunk_a in any::<bool>(),
        chunk_b in any::<bool>(),
    ) {
        let (storage, io) = two_checkpoints(1, 2);
        tear(&storage, &if chunk_a { chunk_key(1, 0) } else { manifest_key(1) }, frac_a);
        tear(&storage, &if chunk_b { chunk_key(2, 0) } else { manifest_key(2) }, frac_b);

        let load = load_latest_checkpoint(&io).unwrap();
        prop_assert_eq!(load.rejected, 2);
        prop_assert!(load.checkpoint.is_none());
    }
}

/// Exhaustive companion to the property above: *every* strict byte prefix
/// of the newest manifest is rejected, not just sampled ones.
#[test]
fn every_manifest_prefix_is_rejected() {
    let (storage, io) = two_checkpoints(1, 2);
    let intact = storage.get(&manifest_key(2)).unwrap().unwrap();
    for cut in 0..intact.len() {
        storage
            .put(
                &manifest_key(2),
                bytes::Bytes::copy_from_slice(&intact[..cut]),
            )
            .unwrap();
        let load = load_latest_checkpoint(&io).unwrap();
        assert_eq!(load.rejected, 1, "prefix of {cut} bytes must be rejected");
        assert_eq!(load.checkpoint.expect("fallback").id, 1);
    }
    // Restoring the full blob restores the newest checkpoint.
    storage.put(&manifest_key(2), intact).unwrap();
    let load = load_latest_checkpoint(&io).unwrap();
    assert_eq!(load.rejected, 0);
    assert_eq!(load.checkpoint.unwrap().id, 2);
}
