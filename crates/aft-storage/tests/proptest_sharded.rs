//! Property-based test: a lock-striped map is observationally equivalent to
//! the single-lock map it replaced.
//!
//! The striping in [`ShardedMap`] must be invisible to callers — every
//! operation sequence must produce byte-identical results whether the map
//! has one stripe (the historical single-global-lock layout) or many. The
//! whole PR rests on this equivalence: if it holds, swapping stripe counts
//! can only change performance, never protocol behaviour.

use aft_storage::ShardedMap;
use aft_types::Value;
use bytes::Bytes;
use proptest::prelude::*;

/// One operation of a randomly generated map workload.
#[derive(Debug, Clone)]
enum Op {
    Put(String, Vec<u8>),
    Get(String),
    Remove(String),
    ListPrefix(String),
    Len,
    PayloadBytes,
}

fn arb_namespace() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("data"), Just("commit"), Just("idx")]
}

fn arb_key() -> impl Strategy<Value = String> {
    // A small alphabet so puts/gets/removes collide often and prefixes
    // overlap (the interesting cases for a striped sorted map).
    (arb_namespace(), "[ab]{0,3}[0-9]{0,2}").prop_map(|(ns, tail)| format!("{ns}/{tail}"))
}

fn arb_prefix() -> impl Strategy<Value = String> {
    (arb_namespace(), "[/]{0,1}[ab]{0,1}").prop_map(|(ns, tail)| format!("{ns}{tail}"))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_key(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(k, v)| Op::Put(k, v)),
        3 => arb_key().prop_map(Op::Get),
        2 => arb_key().prop_map(Op::Remove),
        2 => arb_prefix().prop_map(Op::ListPrefix),
        1 => Just(Op::Len),
        1 => Just(Op::PayloadBytes),
    ]
}

fn apply(map: &ShardedMap, op: &Op) -> String {
    // Each op's observable outcome, rendered so outcomes can be compared
    // across maps with different stripe counts.
    match op {
        Op::Put(k, v) => format!("{:?}", map.put(k, Value::from(Bytes::from(v.clone())))),
        Op::Get(k) => format!("{:?}", map.get(k)),
        Op::Remove(k) => format!("{:?}", map.remove(k)),
        Op::ListPrefix(p) => format!("{:?}", map.keys_with_prefix(p)),
        Op::Len => format!("{}", map.len()),
        Op::PayloadBytes => format!("{}", map.payload_bytes()),
    }
}

proptest! {
    #[test]
    fn striped_map_is_observationally_equivalent_to_single_lock(
        ops in proptest::collection::vec(arb_op(), 1..120),
        stripes in 2usize..32,
    ) {
        let single = ShardedMap::new(1);
        let striped = ShardedMap::new(stripes);
        for (i, op) in ops.iter().enumerate() {
            let expected = apply(&single, op);
            let actual = apply(&striped, op);
            prop_assert_eq!(
                &actual, &expected,
                "op #{} {:?} diverged with {} stripes", i, op, stripes
            );
        }
        prop_assert_eq!(striped.len(), single.len());
        prop_assert_eq!(striped.payload_bytes(), single.payload_bytes());
        prop_assert_eq!(striped.is_empty(), single.is_empty());
        // Full-scan equivalence at the end, including empty-prefix scans.
        prop_assert_eq!(striped.keys_with_prefix(""), single.keys_with_prefix(""));
    }

    #[test]
    fn stripe_counters_account_every_point_access(
        ops in proptest::collection::vec(arb_op(), 1..60),
        stripes in 1usize..16,
    ) {
        let map = ShardedMap::new(stripes);
        let mut point_ops = 0u64;
        for op in &ops {
            apply(&map, op);
            if matches!(op, Op::Put(..) | Op::Get(..) | Op::Remove(..)) {
                point_ops += 1;
            }
        }
        prop_assert_eq!(map.counters().total(), point_ops);
    }
}
