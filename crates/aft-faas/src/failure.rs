//! Failure injection — the platform-layer adapter of the unified
//! [`aft_chaos`] fault schedule.
//!
//! The motivating example of §1 is a function that writes key `k`, fails, and
//! never writes key `l` — exposing a fractional update to concurrent readers
//! unless something guarantees atomic visibility. The failure injector
//! recreates exactly that situation: functions can be killed before they run,
//! after they run (work done, acknowledgement lost — the idempotence case),
//! or *mid-body* via an explicit crash point that workload functions consult
//! between their writes.
//!
//! Decisions come from the faas layer of an [`aft_chaos::ChaosSpec`]
//! schedule — the same pure, seeded, order-independent machinery as the
//! storage and net layers — so one seed replays a whole cross-layer trial,
//! platform failures included. The mapping from the unified [`FaultKind`]s:
//!
//! * `TransientError { applied: false }` → [`FailurePoint::BeforeBody`]
//!   (the invocation dies with no side effects);
//! * `TransientError { applied: true }` → [`FailurePoint::AfterBody`]
//!   (side effects applied, acknowledgement lost);
//! * `MidCrash` → [`FailurePoint::MidBody`] (the body crashes between two
//!   writes — the fractional-update hazard itself).

use std::sync::atomic::{AtomicU64, Ordering};

use aft_chaos::{ChaosInjector, ChaosSpec, FaasChaos, FaultKind, Layer, LayerSchedule};

/// Where, relative to the function body, an injected failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePoint {
    /// The invocation fails before the body runs (no side effects).
    BeforeBody,
    /// The body runs to completion but the invocation is reported as failed
    /// (side effects applied, acknowledgement lost) — retries must be
    /// idempotent to survive this.
    AfterBody,
    /// The body is asked to crash at its next mid-body crash point (between
    /// two writes); only functions that poll
    /// [`FailureInjector::should_crash_midway`] observe this.
    MidBody,
}

/// A seeded failure injector shared by all invocations of a platform.
#[derive(Debug)]
pub struct FailureInjector {
    layer: LayerSchedule,
    /// Number of outstanding mid-body crash requests; workload functions
    /// consume them at their crash points.
    pending_mid_body: AtomicU64,
    injected: AtomicU64,
}

impl FailureInjector {
    /// Builds the injector over the faas layer of `spec`'s schedule.
    pub fn from_spec(spec: &ChaosSpec) -> Self {
        FailureInjector {
            layer: spec.layer(Layer::Faas),
            pending_mid_body: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// An injector that never fails anything.
    pub fn disabled() -> Self {
        Self::from_spec(&ChaosSpec::new(0))
    }

    /// Decides whether (and where) this invocation fails.
    pub fn decide(&self) -> Option<FailurePoint> {
        let point = match self.layer.decide_next("invoke") {
            FaultKind::None | FaultKind::Timeout | FaultKind::Slow => None,
            FaultKind::TransientError { applied: false } => Some(FailurePoint::BeforeBody),
            FaultKind::TransientError { applied: true } => Some(FailurePoint::AfterBody),
            FaultKind::MidCrash => Some(FailurePoint::MidBody),
        };
        if point == Some(FailurePoint::MidBody) {
            self.pending_mid_body.fetch_add(1, Ordering::Relaxed);
        }
        if point.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        point
    }

    /// Called by workload functions at their mid-body crash points (between
    /// two writes). Returns true if the function should crash now, consuming
    /// one pending mid-body failure.
    pub fn should_crash_midway(&self) -> bool {
        self.pending_mid_body
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Total failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The injector's faas-layer tuning.
    pub fn chaos(&self) -> FaasChaos {
        self.layer.schedule().faas_chaos()
    }
}

impl ChaosInjector for FailureInjector {
    fn layer(&self) -> Layer {
        Layer::Faas
    }

    fn ops_seen(&self) -> u64 {
        self.layer.ops_seen()
    }

    fn faults_injected(&self) -> u64 {
        self.injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(seed: u64, p: f64) -> ChaosSpec {
        ChaosSpec::new(seed).faas(FaasChaos::uniform(p))
    }

    #[test]
    fn disabled_injector_never_fires() {
        let injector = FailureInjector::disabled();
        for _ in 0..100 {
            assert_eq!(injector.decide(), None);
        }
        assert!(!injector.should_crash_midway());
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn always_fail_plan_fires_every_time() {
        let injector = FailureInjector::from_spec(&ChaosSpec::new(1).faas(FaasChaos {
            before_body: 1.0,
            after_body: 0.0,
            mid_body: 0.0,
        }));
        for _ in 0..50 {
            assert_eq!(injector.decide(), Some(FailurePoint::BeforeBody));
        }
        assert_eq!(injector.injected(), 50);
        assert_eq!(ChaosInjector::ops_seen(&injector), 50);
        assert_eq!(ChaosInjector::faults_injected(&injector), 50);
    }

    #[test]
    fn uniform_plan_hits_roughly_the_requested_rate() {
        let injector = FailureInjector::from_spec(&uniform(42, 0.3));
        let fired = (0..10_000).filter(|_| injector.decide().is_some()).count();
        assert!(
            (2_400..3_600).contains(&fired),
            "expected ~3000 failures, got {fired}"
        );
    }

    #[test]
    fn mid_body_requests_are_consumed_once() {
        let injector = FailureInjector::from_spec(&ChaosSpec::new(7).faas(FaasChaos {
            before_body: 0.0,
            after_body: 0.0,
            mid_body: 1.0,
        }));
        assert_eq!(injector.decide(), Some(FailurePoint::MidBody));
        assert!(injector.should_crash_midway());
        assert!(!injector.should_crash_midway(), "each request crashes once");
    }
}
