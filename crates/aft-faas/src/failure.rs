//! Failure injection.
//!
//! The motivating example of §1 is a function that writes key `k`, fails, and
//! never writes key `l` — exposing a fractional update to concurrent readers
//! unless something guarantees atomic visibility. The failure injector
//! recreates exactly that situation: functions can be killed before they run,
//! after they run (work done, acknowledgement lost — the idempotence case),
//! or *mid-body* via an explicit crash point that workload functions consult
//! between their writes.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where, relative to the function body, an injected failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePoint {
    /// The invocation fails before the body runs (no side effects).
    BeforeBody,
    /// The body runs to completion but the invocation is reported as failed
    /// (side effects applied, acknowledgement lost) — retries must be
    /// idempotent to survive this.
    AfterBody,
    /// The body is asked to crash at its next mid-body crash point (between
    /// two writes); only functions that poll
    /// [`FailureInjector::should_crash_midway`] observe this.
    MidBody,
}

/// Probabilities of each failure point, evaluated independently per
/// invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailurePlan {
    /// Probability of failing before the body runs.
    pub before_body: f64,
    /// Probability of failing after the body runs.
    pub after_body: f64,
    /// Probability of a mid-body crash request.
    pub mid_body: f64,
}

impl FailurePlan {
    /// A plan that never injects failures.
    pub const NONE: FailurePlan = FailurePlan {
        before_body: 0.0,
        after_body: 0.0,
        mid_body: 0.0,
    };

    /// A plan that fails each invocation with probability `p`, split evenly
    /// across the three failure points.
    pub fn uniform(p: f64) -> Self {
        FailurePlan {
            before_body: p / 3.0,
            after_body: p / 3.0,
            mid_body: p / 3.0,
        }
    }

    /// Returns true if this plan can never fire.
    pub fn is_none(&self) -> bool {
        self.before_body <= 0.0 && self.after_body <= 0.0 && self.mid_body <= 0.0
    }
}

/// A seeded failure injector shared by all invocations of a platform.
#[derive(Debug)]
pub struct FailureInjector {
    plan: FailurePlan,
    rng: Mutex<StdRng>,
    /// Number of outstanding mid-body crash requests; workload functions
    /// consume them at their crash points.
    pending_mid_body: AtomicU64,
    injected: AtomicU64,
}

impl FailureInjector {
    /// Creates an injector with the given plan and RNG seed.
    pub fn new(plan: FailurePlan, seed: u64) -> Self {
        FailureInjector {
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            pending_mid_body: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// An injector that never fails anything.
    pub fn disabled() -> Self {
        Self::new(FailurePlan::NONE, 0)
    }

    /// Decides whether (and where) this invocation fails.
    pub fn decide(&self) -> Option<FailurePoint> {
        if self.plan.is_none() {
            return None;
        }
        let roll: f64 = self.rng.lock().gen();
        let point = if roll < self.plan.before_body {
            Some(FailurePoint::BeforeBody)
        } else if roll < self.plan.before_body + self.plan.after_body {
            Some(FailurePoint::AfterBody)
        } else if roll < self.plan.before_body + self.plan.after_body + self.plan.mid_body {
            Some(FailurePoint::MidBody)
        } else {
            None
        };
        if point == Some(FailurePoint::MidBody) {
            self.pending_mid_body.fetch_add(1, Ordering::Relaxed);
        }
        if point.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        point
    }

    /// Called by workload functions at their mid-body crash points (between
    /// two writes). Returns true if the function should crash now, consuming
    /// one pending mid-body failure.
    pub fn should_crash_midway(&self) -> bool {
        self.pending_mid_body
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Total failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The configured plan.
    pub fn plan(&self) -> FailurePlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let injector = FailureInjector::disabled();
        for _ in 0..100 {
            assert_eq!(injector.decide(), None);
        }
        assert!(!injector.should_crash_midway());
        assert_eq!(injector.injected(), 0);
    }

    #[test]
    fn always_fail_plan_fires_every_time() {
        let injector = FailureInjector::new(
            FailurePlan {
                before_body: 1.0,
                after_body: 0.0,
                mid_body: 0.0,
            },
            1,
        );
        for _ in 0..50 {
            assert_eq!(injector.decide(), Some(FailurePoint::BeforeBody));
        }
        assert_eq!(injector.injected(), 50);
    }

    #[test]
    fn uniform_plan_hits_roughly_the_requested_rate() {
        let injector = FailureInjector::new(FailurePlan::uniform(0.3), 42);
        let fired = (0..10_000).filter(|_| injector.decide().is_some()).count();
        assert!(
            (2_400..3_600).contains(&fired),
            "expected ~3000 failures, got {fired}"
        );
    }

    #[test]
    fn mid_body_requests_are_consumed_once() {
        let injector = FailureInjector::new(
            FailurePlan {
                before_body: 0.0,
                after_body: 0.0,
                mid_body: 1.0,
            },
            7,
        );
        assert_eq!(injector.decide(), Some(FailurePoint::MidBody));
        assert!(injector.should_crash_midway());
        assert!(!injector.should_crash_midway(), "each request crashes once");
    }

    #[test]
    fn plan_helpers() {
        assert!(FailurePlan::NONE.is_none());
        assert!(!FailurePlan::uniform(0.5).is_none());
        let p = FailurePlan::uniform(0.3);
        assert!((p.before_body + p.after_body + p.mid_body - 0.3).abs() < 1e-9);
    }
}
