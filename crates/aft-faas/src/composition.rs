//! Function compositions.
//!
//! The paper models each logical request as a *linear composition* of one or
//! more functions executing on the FaaS platform (§2.2); the evaluation's
//! standard workload is a 2-function composition where each function performs
//! one write and two reads (§6.1.2), and Figure 6 sweeps the composition
//! length from 1 to 10 functions.
//!
//! A [`Composition<C>`] is a named sequence of steps over a request context
//! `C`. The context is whatever the workload needs to carry across functions
//! — for AFT-backed requests it holds the AFT node handle and the transaction
//! ID (the only state that may legally cross function boundaries), for the
//! Plain baselines it holds a storage handle and the request's bookkeeping.

use std::sync::Arc;

use aft_types::AftResult;

/// Information about the current invocation, passed to every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationInfo {
    /// Index of this function within the composition (0-based).
    pub step_index: usize,
    /// Number of functions in the composition.
    pub total_steps: usize,
    /// Which attempt of the logical request this is (0 = first try).
    pub attempt: u32,
}

/// One function body: takes the request context and invocation info.
pub type StepFn<C> = Arc<dyn Fn(&mut C, &InvocationInfo) -> AftResult<()> + Send + Sync>;

/// A linear composition of functions making up one logical request.
#[derive(Clone)]
pub struct Composition<C> {
    name: String,
    steps: Vec<StepFn<C>>,
}

impl<C> Composition<C> {
    /// Creates an empty composition with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Composition {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a function to the composition.
    pub fn then(
        mut self,
        step: impl Fn(&mut C, &InvocationInfo) -> AftResult<()> + Send + Sync + 'static,
    ) -> Self {
        self.steps.push(Arc::new(step));
        self
    }

    /// Builds a composition of `n` identical functions (the Figure 6 sweep).
    pub fn repeated(
        name: impl Into<String>,
        n: usize,
        step: impl Fn(&mut C, &InvocationInfo) -> AftResult<()> + Send + Sync + 'static,
    ) -> Self {
        let step: StepFn<C> = Arc::new(step);
        Composition {
            name: name.into(),
            steps: (0..n).map(|_| Arc::clone(&step)).collect(),
        }
    }

    /// The composition's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of functions in the composition.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns true if the composition has no functions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step at `index`.
    pub fn step(&self, index: usize) -> Option<&StepFn<C>> {
        self.steps.get(index)
    }
}

impl<C> std::fmt::Debug for Composition<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composition")
            .field("name", &self.name)
            .field("steps", &self.steps.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_run_in_order() {
        let composition: Composition<Vec<usize>> = Composition::new("ordered")
            .then(|ctx: &mut Vec<usize>, info| {
                ctx.push(info.step_index);
                Ok(())
            })
            .then(|ctx: &mut Vec<usize>, info| {
                ctx.push(info.step_index * 10);
                Ok(())
            });

        assert_eq!(composition.len(), 2);
        assert_eq!(composition.name(), "ordered");
        let mut ctx = Vec::new();
        for i in 0..composition.len() {
            let info = InvocationInfo {
                step_index: i,
                total_steps: composition.len(),
                attempt: 0,
            };
            composition.step(i).unwrap()(&mut ctx, &info).unwrap();
        }
        assert_eq!(ctx, vec![0, 10]);
    }

    #[test]
    fn repeated_builds_n_identical_steps() {
        let composition: Composition<u32> = Composition::repeated("rep", 7, |ctx, _| {
            *ctx += 1;
            Ok(())
        });
        assert_eq!(composition.len(), 7);
        assert!(!composition.is_empty());
        assert!(composition.step(7).is_none());
    }

    #[test]
    fn empty_composition() {
        let composition: Composition<()> = Composition::new("empty");
        assert!(composition.is_empty());
        assert_eq!(composition.len(), 0);
    }
}
