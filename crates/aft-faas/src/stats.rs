//! Counters describing the simulated FaaS platform's activity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe platform counters.
#[derive(Debug, Default)]
pub struct PlatformStats {
    invocations: AtomicU64,
    cold_starts: AtomicU64,
    injected_failures: AtomicU64,
    request_attempts: AtomicU64,
    requests_completed: AtomicU64,
    requests_failed: AtomicU64,
    peak_concurrency: AtomicU64,
}

impl PlatformStats {
    /// Creates a zeroed counter set behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records one function invocation (cold or warm).
    pub fn record_invocation(&self, cold: bool) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        if cold {
            self.cold_starts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one injected function failure.
    pub fn record_injected_failure(&self) {
        self.injected_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one attempt at executing a logical request.
    pub fn record_request_attempt(&self) {
        self.request_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical request that eventually completed.
    pub fn record_request_completed(&self) {
        self.requests_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical request that exhausted its retries.
    pub fn record_request_failed(&self) {
        self.requests_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the peak concurrency watermark.
    pub fn observe_concurrency(&self, current: u64) {
        self.peak_concurrency.fetch_max(current, Ordering::Relaxed);
    }

    /// Total function invocations.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected_failures.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time snapshot.
    pub fn snapshot(&self) -> PlatformStatsSnapshot {
        PlatformStatsSnapshot {
            invocations: self.invocations.load(Ordering::Relaxed),
            cold_starts: self.cold_starts.load(Ordering::Relaxed),
            injected_failures: self.injected_failures.load(Ordering::Relaxed),
            request_attempts: self.request_attempts.load(Ordering::Relaxed),
            requests_completed: self.requests_completed.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            peak_concurrency: self.peak_concurrency.load(Ordering::Relaxed),
        }
    }
}

/// An immutable snapshot of [`PlatformStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformStatsSnapshot {
    /// Function invocations performed.
    pub invocations: u64,
    /// Invocations that paid a cold-start penalty.
    pub cold_starts: u64,
    /// Function failures injected by the failure plan.
    pub injected_failures: u64,
    /// Logical request attempts (first try plus retries).
    pub request_attempts: u64,
    /// Logical requests that completed successfully.
    pub requests_completed: u64,
    /// Logical requests that exhausted their retry budget.
    pub requests_failed: u64,
    /// Highest number of concurrently executing functions observed.
    pub peak_concurrency: u64,
}

impl PlatformStatsSnapshot {
    /// Average attempts needed per completed request.
    pub fn attempts_per_request(&self) -> f64 {
        if self.requests_completed == 0 {
            0.0
        } else {
            self.request_attempts as f64 / self.requests_completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = PlatformStats::default();
        stats.record_invocation(false);
        stats.record_invocation(true);
        stats.record_injected_failure();
        stats.record_request_attempt();
        stats.record_request_attempt();
        stats.record_request_completed();
        stats.observe_concurrency(3);
        stats.observe_concurrency(1);

        let snap = stats.snapshot();
        assert_eq!(snap.invocations, 2);
        assert_eq!(snap.cold_starts, 1);
        assert_eq!(snap.injected_failures, 1);
        assert_eq!(snap.peak_concurrency, 3);
        assert!((snap.attempts_per_request() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn attempts_per_request_with_no_completions() {
        assert_eq!(PlatformStatsSnapshot::default().attempts_per_request(), 0.0);
    }
}
