//! Retry policies and request outcomes.
//!
//! The paper's fault-tolerance model is deliberately simple: failed functions
//! are retried (at-least-once execution), and AFT's atomicity + idempotence
//! turn that into exactly-once *semantics* (§1, §3.3.1, §7). Clients also
//! retry whole logical requests when AFT reports that no valid key version
//! exists for a read (§3.6). [`RetryPolicy`] captures the retry budget and
//! backoff used by the simulated clients.

use std::time::Duration;

use aft_types::AftError;

/// How a logical request (a composition of functions) is retried.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum number of attempts for the whole request, including the first
    /// one. Zero is treated as one.
    pub max_attempts: u32,
    /// Fixed delay between attempts (the simulated client's timeout/backoff).
    pub backoff: Duration,
    /// Whether a retry reuses the same transaction ID (continuing the
    /// transaction, possible when the AFT node survived) or starts fresh.
    /// The evaluation always restarts from scratch, which is the simplest —
    /// and the paper's default — model.
    pub reuse_transaction_id: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff: Duration::ZERO,
            reuse_transaction_id: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// A policy with the given attempt budget and no backoff.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The effective number of attempts (at least one).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Whether an error from an attempt warrants another try.
    pub fn should_retry(&self, error: &AftError, attempt: u32) -> bool {
        attempt + 1 < self.attempts() && error.is_retryable()
    }
}

/// The result of executing one logical request through the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Attempts consumed (1 = no retries needed).
    pub attempts: u32,
    /// Function invocations performed across all attempts.
    pub invocations: u32,
    /// The error that aborted the final attempt, if the request ultimately
    /// failed.
    pub error: Option<AftError>,
}

impl RequestOutcome {
    /// Returns true if the request eventually succeeded.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_types::{Key, TransactionId};

    #[test]
    fn default_policy_retries_retryable_errors() {
        let policy = RetryPolicy::default();
        let retryable = AftError::NoValidVersion {
            key: Key::new("k"),
            txn: TransactionId::NULL,
        };
        assert!(policy.should_retry(&retryable, 0));
        assert!(policy.should_retry(&retryable, 3));
        assert!(!policy.should_retry(&retryable, 4), "budget exhausted");
        assert!(!policy.should_retry(&AftError::Codec("bad".into()), 0));
    }

    #[test]
    fn no_retries_policy_never_retries() {
        let policy = RetryPolicy::no_retries();
        let err = AftError::Unavailable("down".into());
        assert!(!policy.should_retry(&err, 0));
        assert_eq!(policy.attempts(), 1);
    }

    #[test]
    fn zero_attempts_is_clamped_to_one() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.attempts(), 1);
        assert_eq!(RetryPolicy::with_attempts(0).attempts(), 1);
    }

    #[test]
    fn outcome_success_flag() {
        assert!(RequestOutcome {
            attempts: 1,
            invocations: 2,
            error: None
        }
        .succeeded());
        assert!(!RequestOutcome {
            attempts: 3,
            invocations: 6,
            error: Some(AftError::FunctionFailed("boom".into()))
        }
        .succeeded());
    }
}
