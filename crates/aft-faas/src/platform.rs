//! The FaaS platform simulator.
//!
//! [`FaasPlatform::run_request`] executes a [`Composition`] for one logical
//! request: each step is invoked with the platform's per-invocation overhead
//! (and occasional cold start), subject to the platform-wide concurrency
//! limit, with failures injected according to the configured
//! [`FaasChaos`] layer. Failed requests are retried per the client's
//! [`RetryPolicy`], restarting the composition from the first function with a
//! fresh context — the retry-from-scratch model of existing serverless
//! platforms that AFT is designed around (§7).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aft_storage::latency::{LatencyMode, LatencyModel, LatencyProfile};
use aft_types::{AftError, AftResult};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aft_chaos::{ChaosSpec, FaasChaos};

use crate::composition::{Composition, InvocationInfo};
use crate::failure::{FailureInjector, FailurePoint};
use crate::retry::{RequestOutcome, RetryPolicy};
use crate::stats::PlatformStats;

/// Configuration of the simulated FaaS platform.
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Latency of a warm invocation (queueing + dispatch + runtime overhead).
    pub warm_invocation: LatencyProfile,
    /// Latency of a cold start (container provisioning), paid *in addition*
    /// to the warm overhead.
    pub cold_start: LatencyProfile,
    /// Probability that an invocation is a cold start.
    pub cold_start_probability: f64,
    /// Maximum concurrently executing functions; 0 means unlimited. AWS
    /// Lambda's account-level cap is what limited the paper's Figure 8 run.
    pub concurrency_limit: usize,
    /// Whether simulated latencies sleep or are only recorded.
    pub latency_mode: LatencyMode,
    /// Global latency scale factor (shared with the storage simulators).
    pub latency_scale: f64,
    /// Faas-layer fault pressure applied to every invocation (the faas leg
    /// of the unified [`aft_chaos::ChaosSpec`]).
    pub chaos: FaasChaos,
    /// RNG seed.
    pub seed: u64,
}

impl PlatformConfig {
    /// A zero-latency, failure-free, unlimited-concurrency platform for unit
    /// tests.
    pub fn test() -> Self {
        PlatformConfig {
            warm_invocation: LatencyProfile::ZERO,
            cold_start: LatencyProfile::ZERO,
            cold_start_probability: 0.0,
            concurrency_limit: 0,
            latency_mode: LatencyMode::Virtual,
            latency_scale: 0.0,
            chaos: FaasChaos::quiet(),
            seed: 0xFAA5,
        }
    }

    /// An AWS-Lambda-like platform: ~14 ms warm invocation overhead, rare
    /// ~150 ms cold starts, scaled by `scale`.
    pub fn aws_like(scale: f64) -> Self {
        PlatformConfig {
            warm_invocation: LatencyProfile::new(14_000.0, 45_000.0),
            cold_start: LatencyProfile::new(150_000.0, 400_000.0),
            cold_start_probability: 0.002,
            concurrency_limit: 1_000,
            latency_mode: LatencyMode::Sleep,
            latency_scale: scale,
            chaos: FaasChaos::quiet(),
            seed: 0xFAA5,
        }
    }

    /// Sets the faas-layer fault pressure.
    pub fn with_chaos(mut self, chaos: FaasChaos) -> Self {
        self.chaos = chaos;
        self
    }

    /// Adopts the faas layer *and* the seed of a unified cross-layer spec,
    /// so the platform draws from the same schedule as every other layer of
    /// the trial.
    pub fn with_chaos_spec(mut self, spec: &ChaosSpec) -> Self {
        self.chaos = spec.faas;
        self.seed = spec.seed;
        self
    }

    /// Sets the concurrency limit.
    pub fn with_concurrency_limit(mut self, limit: usize) -> Self {
        self.concurrency_limit = limit;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The simulated FaaS platform.
pub struct FaasPlatform {
    config: PlatformConfig,
    latency: Arc<LatencyModel>,
    rng: Mutex<StdRng>,
    injector: FailureInjector,
    stats: Arc<PlatformStats>,
    active: AtomicU64,
    slot_lock: Mutex<usize>,
    slot_available: Condvar,
}

impl FaasPlatform {
    /// Creates a platform.
    pub fn new(config: PlatformConfig) -> Arc<Self> {
        Arc::new(FaasPlatform {
            latency: LatencyModel::new(config.latency_mode, config.latency_scale),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            injector: FailureInjector::from_spec(&ChaosSpec::new(config.seed).faas(config.chaos)),
            stats: PlatformStats::new_shared(),
            active: AtomicU64::new(0),
            slot_lock: Mutex::new(0),
            slot_available: Condvar::new(),
            config,
        })
    }

    /// The platform's counters.
    pub fn stats(&self) -> &Arc<PlatformStats> {
        &self.stats
    }

    /// The platform's failure injector. Workload functions that model crashes
    /// between two writes poll [`FailureInjector::should_crash_midway`] on it.
    pub fn injector(&self) -> &FailureInjector {
        &self.injector
    }

    /// Number of functions currently executing.
    pub fn active_invocations(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    fn acquire_slot(&self) -> SlotGuard<'_> {
        if self.config.concurrency_limit > 0 {
            let mut in_use = self.slot_lock.lock();
            while *in_use >= self.config.concurrency_limit {
                self.slot_available.wait(&mut in_use);
            }
            *in_use += 1;
        }
        let now_active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.observe_concurrency(now_active);
        SlotGuard { platform: self }
    }

    /// Invokes a single function body with platform overhead, concurrency
    /// accounting, and failure injection.
    pub fn invoke<T>(&self, body: impl FnOnce() -> AftResult<T>) -> AftResult<T> {
        let _slot = self.acquire_slot();

        let (cold, failure) = {
            let mut rng = self.rng.lock();
            let cold = self.config.cold_start_probability > 0.0
                && rng.gen::<f64>() < self.config.cold_start_probability;
            drop(rng);
            (cold, self.injector.decide())
        };
        self.stats.record_invocation(cold);

        // Sample the invocation overheads under the RNG lock but sleep
        // outside it: concurrent invocations must not serialise on the
        // sampler.
        if cold {
            self.latency
                .apply_with(&self.config.cold_start, &self.rng, 0);
        }
        self.latency
            .apply_with(&self.config.warm_invocation, &self.rng, 0);

        if failure == Some(FailurePoint::BeforeBody) {
            self.stats.record_injected_failure();
            return Err(AftError::FunctionFailed(
                "injected failure before function body".to_owned(),
            ));
        }

        let result = body();

        if failure == Some(FailurePoint::AfterBody) {
            // The body ran (its side effects are durable) but the platform
            // reports a failure — the retry must be idempotent.
            self.stats.record_injected_failure();
            return Err(AftError::FunctionFailed(
                "injected failure after function body".to_owned(),
            ));
        }
        result
    }

    /// Executes one logical request: the composition's functions in order,
    /// restarted from scratch (with a fresh context from `make_ctx`) on
    /// retryable failures, up to the policy's attempt budget.
    ///
    /// Returns the final context (if any attempt succeeded) along with the
    /// outcome. `make_ctx` receives the attempt number and may also be used
    /// to clean up state left by the previous attempt (e.g. aborting a
    /// dangling AFT transaction).
    pub fn run_request<C>(
        &self,
        composition: &Composition<C>,
        mut make_ctx: impl FnMut(u32) -> C,
        policy: &RetryPolicy,
    ) -> (Option<C>, RequestOutcome) {
        let mut total_invocations = 0u32;
        let attempts = policy.attempts();
        let mut last_error = None;
        let mut attempts_used = 0u32;

        for attempt in 0..attempts {
            attempts_used = attempt + 1;
            self.stats.record_request_attempt();
            let mut ctx = make_ctx(attempt);
            let mut step_error = None;

            for index in 0..composition.len() {
                let info = InvocationInfo {
                    step_index: index,
                    total_steps: composition.len(),
                    attempt,
                };
                total_invocations += 1;
                let step = composition
                    .step(index)
                    .expect("index is within composition length");
                if let Err(error) = self.invoke(|| step(&mut ctx, &info)) {
                    step_error = Some(error);
                    break;
                }
            }

            match step_error {
                None => {
                    self.stats.record_request_completed();
                    return (
                        Some(ctx),
                        RequestOutcome {
                            attempts: attempt + 1,
                            invocations: total_invocations,
                            error: None,
                        },
                    );
                }
                Some(error) => {
                    let retry = policy.should_retry(&error, attempt);
                    last_error = Some(error);
                    if retry {
                        if !policy.backoff.is_zero() {
                            std::thread::sleep(policy.backoff);
                        }
                        continue;
                    }
                    break;
                }
            }
        }

        self.stats.record_request_failed();
        (
            None,
            RequestOutcome {
                attempts: attempts_used,
                invocations: total_invocations,
                error: last_error,
            },
        )
    }
}

/// RAII guard for one concurrency slot.
struct SlotGuard<'a> {
    platform: &'a FaasPlatform,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.platform.active.fetch_sub(1, Ordering::Relaxed);
        if self.platform.config.concurrency_limit > 0 {
            let mut in_use = self.platform.slot_lock.lock();
            *in_use -= 1;
            self.platform.slot_available.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn invoke_runs_the_body_and_counts() {
        let platform = FaasPlatform::new(PlatformConfig::test());
        let out = platform.invoke(|| Ok(21 * 2)).unwrap();
        assert_eq!(out, 42);
        assert_eq!(platform.stats().invocations(), 1);
        assert_eq!(platform.active_invocations(), 0);
    }

    #[test]
    fn run_request_executes_every_step_in_order() {
        let platform = FaasPlatform::new(PlatformConfig::test());
        let composition: Composition<Vec<usize>> = Composition::new("req")
            .then(|ctx: &mut Vec<usize>, info| {
                ctx.push(info.step_index);
                Ok(())
            })
            .then(|ctx: &mut Vec<usize>, info| {
                ctx.push(info.step_index);
                Ok(())
            })
            .then(|ctx: &mut Vec<usize>, info| {
                ctx.push(info.step_index);
                Ok(())
            });
        let (ctx, outcome) =
            platform.run_request(&composition, |_| Vec::new(), &RetryPolicy::default());
        assert_eq!(ctx.unwrap(), vec![0, 1, 2]);
        assert!(outcome.succeeded());
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.invocations, 3);
    }

    #[test]
    fn retryable_failures_are_retried_with_fresh_context() {
        let platform = FaasPlatform::new(PlatformConfig::test());
        let failures_left = AtomicUsize::new(2);
        let composition: Composition<u32> = Composition::new("flaky").then(move |ctx, _| {
            *ctx += 1;
            if failures_left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                Err(AftError::Unavailable("transient".into()))
            } else {
                Ok(())
            }
        });
        let contexts_made = AtomicUsize::new(0);
        let (ctx, outcome) = platform.run_request(
            &composition,
            |_| {
                contexts_made.fetch_add(1, Ordering::SeqCst);
                0u32
            },
            &RetryPolicy::with_attempts(5),
        );
        assert_eq!(outcome.attempts, 3);
        assert_eq!(contexts_made.load(Ordering::SeqCst), 3);
        assert_eq!(ctx.unwrap(), 1, "fresh context per attempt");
        assert_eq!(platform.stats().snapshot().requests_completed, 1);
    }

    #[test]
    fn non_retryable_failures_stop_immediately() {
        let platform = FaasPlatform::new(PlatformConfig::test());
        let composition: Composition<()> =
            Composition::new("broken").then(|_, _| Err(AftError::Codec("corrupt".into())));
        let (ctx, outcome) =
            platform.run_request(&composition, |_| (), &RetryPolicy::with_attempts(10));
        assert!(ctx.is_none());
        assert!(!outcome.succeeded());
        assert_eq!(outcome.invocations, 1);
        assert_eq!(platform.stats().snapshot().requests_failed, 1);
    }

    #[test]
    fn exhausted_retries_report_the_last_error() {
        let platform = FaasPlatform::new(PlatformConfig::test());
        let composition: Composition<()> =
            Composition::new("always-down").then(|_, _| Err(AftError::Unavailable("down".into())));
        let (ctx, outcome) =
            platform.run_request(&composition, |_| (), &RetryPolicy::with_attempts(3));
        assert!(ctx.is_none());
        assert_eq!(outcome.invocations, 3);
        assert!(matches!(outcome.error, Some(AftError::Unavailable(_))));
    }

    #[test]
    fn injected_before_body_failures_are_retried_transparently() {
        let config = PlatformConfig::test().with_chaos(FaasChaos {
            before_body: 0.4,
            after_body: 0.0,
            mid_body: 0.0,
        });
        let platform = FaasPlatform::new(config);
        let composition: Composition<u32> = Composition::new("ok").then(|ctx, _| {
            *ctx += 1;
            Ok(())
        });
        let mut completed = 0;
        for _ in 0..200 {
            let (ctx, outcome) =
                platform.run_request(&composition, |_| 0u32, &RetryPolicy::with_attempts(20));
            if outcome.succeeded() {
                completed += 1;
                assert_eq!(ctx.unwrap(), 1);
            }
        }
        assert_eq!(
            completed, 200,
            "with a generous budget every request completes"
        );
        assert!(platform.stats().snapshot().injected_failures > 0);
    }

    #[test]
    fn concurrency_limit_bounds_parallel_invocations() {
        let platform = FaasPlatform::new(PlatformConfig::test().with_concurrency_limit(2));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let max_seen = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let platform = Arc::clone(&platform);
                let barrier = Arc::clone(&barrier);
                let max_seen = Arc::clone(&max_seen);
                scope.spawn(move || {
                    barrier.wait();
                    platform
                        .invoke(|| {
                            let now = platform.active_invocations();
                            max_seen.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(())
                        })
                        .unwrap();
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 2);
        assert_eq!(platform.stats().snapshot().invocations, 4);
        assert!(platform.stats().snapshot().peak_concurrency <= 2);
    }

    #[test]
    fn after_body_failures_keep_side_effects() {
        let config = PlatformConfig::test().with_chaos(FaasChaos {
            before_body: 0.0,
            after_body: 1.0,
            mid_body: 0.0,
        });
        let platform = FaasPlatform::new(config);
        let executed = AtomicUsize::new(0);
        let result: AftResult<()> = platform.invoke(|| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        assert!(matches!(result, Err(AftError::FunctionFailed(_))));
        assert_eq!(
            executed.load(Ordering::SeqCst),
            1,
            "body ran before the failure"
        );
    }
}
