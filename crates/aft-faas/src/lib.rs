//! A simulated Functions-as-a-Service platform (AWS Lambda stand-in).
//!
//! The paper's evaluation runs every workload as *compositions of functions*
//! on AWS Lambda: a logical request is a linear chain of functions, each of
//! which performs a few reads and writes against AFT (or directly against
//! storage for the baselines). The properties of the platform that shape the
//! results are:
//!
//! * per-invocation overhead (and occasional cold starts), which dominates
//!   end-to-end latency over fast stores like Redis (§6.1.2),
//! * a bound on concurrent function executions (the Figure 8 plateau at 640
//!   clients was caused by Lambda's concurrency limit, not by AFT),
//! * automatic retries: functions are executed *at least once*, and a failed
//!   function simply runs again (§1, §3.3.1), and
//! * failures can strike anywhere — including between two writes of the same
//!   function, which is exactly the fractional-update hazard AFT exists to
//!   mask.
//!
//! The platform is generic over the per-request context type `C`, so the same
//! machinery drives AFT-backed requests, Plain (direct-to-storage) baselines,
//! and the DynamoDB-transaction-mode baseline in `aft-workload`.

pub mod composition;
pub mod failure;
pub mod platform;
pub mod retry;
pub mod stats;

pub use composition::{Composition, InvocationInfo};
pub use failure::{FailureInjector, FailurePoint};
pub use platform::{FaasPlatform, PlatformConfig};
pub use retry::{RequestOutcome, RetryPolicy};
pub use stats::{PlatformStats, PlatformStatsSnapshot};
