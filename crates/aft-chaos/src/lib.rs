//! One fault-schedule API to drive every chaos layer.
//!
//! The repo injects faults at three layers — storage (dropped / duplicated /
//! slow requests), network (connection resets, delayed acks), and platform
//! (function crashes before / after / mid-body) — plus phase-exact node
//! kills. Each layer grew its own seeded planner; this crate replaces the
//! three copies with one substrate so a *single seed* reproduces an entire
//! cross-layer trial: a gray-failing stripe *while* connections flap *while*
//! functions retry *while* a node dies mid-commit.
//!
//! The pieces:
//!
//! * [`ChaosSpec`] — the one composable, fluent description of a trial's
//!   fault pressure: `ChaosSpec::new(seed).storage(..).net(..).faas(..)
//!   .kill(..)`. Layers left unset stay quiet, so every existing single-layer
//!   scenario is a special case.
//! * [`FaultSchedule`] — the pure schedule derived from a spec. Its
//!   [`decide`](FaultSchedule::decide)`(layer, op_index, key)` is
//!   deterministic in `(seed, layer, op_index, key)` and independent of call
//!   order or of what other layers are asked: each decision draws from its
//!   own RNG stream keyed by the triple, so concurrent layers racing for
//!   their indices still replay bit-exactly from the seed.
//! * [`LayerSchedule`] — a layer's stateful view: the schedule plus the
//!   layer's own operation counter, which is all the per-layer adapters
//!   ([`FaultyBackend`](https://docs.rs) in `aft-storage`, `ConnChaos` in
//!   `aft-net`, `FailureInjector` in `aft-faas`) need to hold.
//! * [`ChaosInjector`] — the adapter trait each layer's injector implements
//!   so trials can interrogate any injector uniformly.
//! * [`KillPlan`] — a phase-exact node kill, armed by the cluster layer's
//!   `ChaosController` from [`ChaosSpec::kills`].
//!
//! Per-layer decisions use SplitMix-style per-operation streams (the same
//! scheme the storage planner always had — the storage layer's schedule is
//! bit-compatible with it), salted per [`Layer`] so layers sharing one seed
//! draw decorrelated schedules.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use aft_types::CommitPhase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default stripe count the gray-failure mode hashes keys into (matches the
/// storage layer's default lock striping).
pub const DEFAULT_STRIPES: usize = 16;

/// Salt for the partition layer's edge-cut stream (decorrelates it from the
/// per-operation layers sharing the same seed).
const PARTITION_SALT: u64 = 0x9A47_0000_CE11_EDB3;

/// The stripe a key hashes to, out of `stripes`.
///
/// This is the canonical striping function: the sharded storage map places
/// keys with it and the gray-failure fault mode targets stripes with it, so
/// "slow stripe" degrades exactly the keys that share a placement shard.
pub fn stripe_of(key: &str, stripes: usize) -> usize {
    debug_assert!(stripes > 0, "stripe count must be positive");
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % stripes
}

/// The injection layers a [`FaultSchedule`] can be asked about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Storage-engine operations (get/put/delete/list against the store).
    Storage,
    /// Wire operations of the client SDK (request/response over a socket).
    Net,
    /// Function invocations on the FaaS platform.
    Faas,
}

impl Layer {
    /// Every layer.
    pub const ALL: [Layer; 3] = [Layer::Storage, Layer::Net, Layer::Faas];

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Layer::Storage => "storage",
            Layer::Net => "net",
            Layer::Faas => "faas",
        }
    }

    /// The per-layer salt mixed into the seed so layers sharing one seed
    /// draw decorrelated streams. Storage's salt is zero on purpose: its
    /// schedule stays bit-compatible with the original storage-only planner,
    /// so seeds recorded by earlier chaos reports still replay.
    fn salt(&self) -> u64 {
        match self {
            Layer::Storage => 0,
            Layer::Net => 0x4E45_545F_4641_554C,
            Layer::Faas => 0xFAA5_0000_F417_0001,
        }
    }
}

/// What the schedule injects into one operation of one layer.
///
/// The variants are the union of every layer's fault vocabulary; each layer
/// maps the subset it can express (the net adapter turns `TransientError`
/// into connection resets, the platform adapter turns it into
/// before/after-body invocation failures, and so on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation executes normally.
    None,
    /// The operation fails with a retryable error. When `applied` is true
    /// the operation's effect lands *before* the failure (an acknowledgement
    /// lost in flight); a retry then duplicates the request, which
    /// idempotent storage keys (§3.1) and the commit-dedup ledger (§4.2)
    /// must absorb. On the net layer this is a connection reset
    /// before (`applied: false`) or after (`applied: true`) the send; on the
    /// platform layer it is an invocation failure before or after the body.
    TransientError {
        /// Whether the operation was applied before the ack was lost.
        applied: bool,
    },
    /// The operation charges the configured timeout/delay latency and then
    /// fails (storage) or delivers its acknowledgement late (net).
    Timeout,
    /// The operation succeeds but pays the gray-failure latency penalty
    /// (storage only).
    Slow,
    /// The function body is asked to crash at its next mid-body crash point,
    /// between two writes — §1's fractional-update scenario (platform only).
    MidCrash,
}

impl FaultKind {
    /// True for every variant except [`FaultKind::None`].
    pub fn is_fault(&self) -> bool {
        !matches!(self, FaultKind::None)
    }
}

/// Storage-layer fault pressure (rates per storage operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageChaos {
    /// Probability in `[0, 1]` that an operation fails with a transient
    /// error (half of these apply the operation before losing the ack).
    pub error_rate: f64,
    /// Probability in `[0, 1]` that an operation times out: the timeout
    /// latency is charged, then a transient error surfaces.
    pub timeout_rate: f64,
    /// The charged latency of one timeout, in microseconds before global
    /// scaling (modeled on a client-side request deadline).
    pub timeout_us: f64,
    /// The gray-failure stripe: operations whose primary key hashes to this
    /// stripe (out of [`StorageChaos::stripes`]) pay
    /// [`StorageChaos::slow_extra_us`] of extra latency. `None` disables the
    /// mode.
    pub slow_stripe: Option<usize>,
    /// Extra latency per slow-stripe operation, in microseconds before
    /// global scaling.
    pub slow_extra_us: f64,
    /// Stripe count the gray-failure mode hashes keys into.
    pub stripes: usize,
}

impl StorageChaos {
    /// No storage faults.
    pub fn quiet() -> Self {
        StorageChaos {
            error_rate: 0.0,
            timeout_rate: 0.0,
            timeout_us: 0.0,
            slow_stripe: None,
            slow_extra_us: 0.0,
            stripes: DEFAULT_STRIPES,
        }
    }

    /// Transient-error mode: `rate` of operations fail with a retryable
    /// error (half applied-then-dropped-ack, half dropped outright).
    pub fn transient_errors(rate: f64) -> Self {
        StorageChaos {
            error_rate: rate.clamp(0.0, 1.0),
            ..StorageChaos::quiet()
        }
    }

    /// Timeout mode: `rate` of operations charge `timeout_us` and then fail
    /// with a retryable error.
    pub fn timeouts(rate: f64, timeout_us: f64) -> Self {
        StorageChaos {
            timeout_rate: rate.clamp(0.0, 1.0),
            timeout_us: timeout_us.max(0.0),
            ..StorageChaos::quiet()
        }
    }

    /// Gray-failure mode: every operation on keys of `stripe` (out of
    /// `stripes`) pays `slow_extra_us` of extra latency; nothing errors.
    pub fn slow_stripe(stripe: usize, stripes: usize, slow_extra_us: f64) -> Self {
        let stripes = stripes.max(1);
        StorageChaos {
            slow_stripe: Some(stripe % stripes),
            slow_extra_us: slow_extra_us.max(0.0),
            stripes,
            ..StorageChaos::quiet()
        }
    }

    /// True if this layer can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.error_rate <= 0.0 && self.timeout_rate <= 0.0 && self.slow_stripe.is_none()
    }
}

impl Default for StorageChaos {
    fn default() -> Self {
        StorageChaos::quiet()
    }
}

/// Net-layer fault pressure (rates per wire operation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetChaos {
    /// Probability in `[0, 1]` that a wire operation's connection is reset
    /// (half before the send, half after — the lost-ack interleaving).
    pub reset_rate: f64,
    /// Probability in `[0, 1]` that an acknowledgement is delayed by
    /// [`NetChaos::delay`].
    pub delay_rate: f64,
    /// How late a delayed acknowledgement arrives.
    pub delay: Duration,
}

impl NetChaos {
    /// No net faults.
    pub fn quiet() -> Self {
        NetChaos {
            reset_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
        }
    }

    /// Reset-only injection at `rate`.
    pub fn resets(rate: f64) -> Self {
        NetChaos {
            reset_rate: rate.clamp(0.0, 1.0),
            ..NetChaos::quiet()
        }
    }

    /// Resets plus delayed acks.
    pub fn resets_and_delays(reset_rate: f64, delay_rate: f64, delay: Duration) -> Self {
        NetChaos {
            reset_rate: reset_rate.clamp(0.0, 1.0),
            delay_rate: delay_rate.clamp(0.0, 1.0),
            delay,
        }
    }

    /// True if this layer can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.reset_rate <= 0.0 && self.delay_rate <= 0.0
    }
}

impl Default for NetChaos {
    fn default() -> Self {
        NetChaos::quiet()
    }
}

/// Platform-layer fault pressure (independent probabilities per invocation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaasChaos {
    /// Probability of failing before the body runs (no side effects).
    pub before_body: f64,
    /// Probability of failing after the body runs (side effects applied,
    /// acknowledgement lost — retries must be idempotent).
    pub after_body: f64,
    /// Probability of a mid-body crash request (between two writes;
    /// functions consume it at their crash points).
    pub mid_body: f64,
}

impl FaasChaos {
    /// No platform faults.
    pub fn quiet() -> Self {
        FaasChaos::default()
    }

    /// Fails each invocation with probability `p`, split evenly across the
    /// three failure points.
    pub fn uniform(p: f64) -> Self {
        FaasChaos {
            before_body: p / 3.0,
            after_body: p / 3.0,
            mid_body: p / 3.0,
        }
    }

    /// True if this layer can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.before_body <= 0.0 && self.after_body <= 0.0 && self.mid_body <= 0.0
    }
}

/// Dissemination-graph partition pressure: a seeded subset of broadcast
/// edges (tree links, gossip push targets, all-to-all deliveries) is cut for
/// a window of maintenance rounds, then heals.
///
/// Which edges fall is a pure function of `(seed, a, b)` — symmetric in the
/// endpoints, so a cut edge is cut in both directions — and the cut persists
/// for every round in `[from_round, to_round)`. The dissemination layer
/// holds cut deliveries in per-edge retry queues and drains them after the
/// heal, so a partition delays metadata but must never lose it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionChaos {
    /// Fraction in `[0, 1]` of dissemination edges that are cut during the
    /// window.
    pub cut_fraction: f64,
    /// First maintenance round (inclusive) of the partition window.
    pub from_round: u64,
    /// First maintenance round *after* the window — the partition heals here.
    pub to_round: u64,
}

impl PartitionChaos {
    /// No partition.
    pub fn quiet() -> Self {
        PartitionChaos {
            cut_fraction: 0.0,
            from_round: 0,
            to_round: 0,
        }
    }

    /// Cuts `cut_fraction` of edges during rounds `[from_round, to_round)`.
    pub fn cut(cut_fraction: f64, from_round: u64, to_round: u64) -> Self {
        PartitionChaos {
            cut_fraction: cut_fraction.clamp(0.0, 1.0),
            from_round,
            to_round,
        }
    }

    /// True if this layer can never cut anything.
    pub fn is_quiet(&self) -> bool {
        self.cut_fraction <= 0.0 || self.to_round <= self.from_round
    }
}

impl Default for PartitionChaos {
    fn default() -> Self {
        PartitionChaos::quiet()
    }
}

/// One planned node kill: crash `node_id` at `phase` once `after_commits`
/// commits have passed that phase on the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPlan {
    /// The node to crash.
    pub node_id: String,
    /// The commit-protocol point to crash at.
    pub phase: CommitPhase,
    /// How many commits pass the phase unharmed before the crash fires.
    pub after_commits: u64,
}

impl KillPlan {
    /// A kill of `node_id` at `phase` on its very next commit.
    pub fn immediate(node_id: impl Into<String>, phase: CommitPhase) -> Self {
        KillPlan {
            node_id: node_id.into(),
            phase,
            after_commits: 0,
        }
    }

    /// Delays the kill until `after_commits` commits have passed the phase.
    pub fn after_commits(mut self, after_commits: u64) -> Self {
        self.after_commits = after_commits;
        self
    }
}

/// The composable, seeded description of a whole trial's fault pressure —
/// the one chaos configuration surface.
///
/// ```
/// use aft_chaos::{ChaosSpec, StorageChaos, NetChaos, FaasChaos, KillPlan};
/// use aft_types::CommitPhase;
/// use std::time::Duration;
///
/// let spec = ChaosSpec::new(0xF00D)
///     .storage(StorageChaos::transient_errors(0.08))
///     .net(NetChaos::resets_and_delays(0.06, 0.03, Duration::from_millis(1)))
///     .faas(FaasChaos::uniform(0.1))
///     .kill(KillPlan::immediate("aft-node-1", CommitPhase::BeforeBroadcast).after_commits(4));
/// assert!(!spec.is_quiet());
/// assert_eq!(spec.schedule().seed(), 0xF00D);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed of every layer's fault schedule; identical seeds reproduce
    /// identical cross-layer schedules.
    pub seed: u64,
    /// Storage-layer pressure.
    pub storage: StorageChaos,
    /// Net-layer pressure.
    pub net: NetChaos,
    /// Platform-layer pressure.
    pub faas: FaasChaos,
    /// Dissemination-graph partition pressure.
    pub partition: PartitionChaos,
    /// Phase-exact node kills to arm for the trial.
    pub kills: Vec<KillPlan>,
}

impl ChaosSpec {
    /// A spec with every layer quiet; compose pressure with the builder
    /// methods.
    pub fn new(seed: u64) -> Self {
        ChaosSpec {
            seed,
            storage: StorageChaos::quiet(),
            net: NetChaos::quiet(),
            faas: FaasChaos::quiet(),
            partition: PartitionChaos::quiet(),
            kills: Vec::new(),
        }
    }

    /// Sets the storage-layer pressure.
    pub fn storage(mut self, storage: StorageChaos) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the net-layer pressure.
    pub fn net(mut self, net: NetChaos) -> Self {
        self.net = net;
        self
    }

    /// Sets the platform-layer pressure.
    pub fn faas(mut self, faas: FaasChaos) -> Self {
        self.faas = faas;
        self
    }

    /// Sets the dissemination-partition pressure.
    pub fn partition(mut self, partition: PartitionChaos) -> Self {
        self.partition = partition;
        self
    }

    /// Adds a planned node kill (may be called repeatedly).
    pub fn kill(mut self, kill: KillPlan) -> Self {
        self.kills.push(kill);
        self
    }

    /// True when no layer injects and no kill is armed.
    pub fn is_quiet(&self) -> bool {
        self.storage.is_quiet()
            && self.net.is_quiet()
            && self.faas.is_quiet()
            && self.partition.is_quiet()
            && self.kills.is_empty()
    }

    /// The pure fault schedule this spec describes (kills are armed
    /// separately, by the cluster layer's `ChaosController`).
    pub fn schedule(&self) -> FaultSchedule {
        FaultSchedule {
            seed: self.seed,
            storage: self.storage,
            net: self.net,
            faas: self.faas,
            partition: self.partition,
        }
    }

    /// A [`LayerSchedule`] over `layer` — the state a per-layer adapter
    /// holds.
    pub fn layer(&self, layer: Layer) -> LayerSchedule {
        LayerSchedule::new(self.schedule(), layer)
    }
}

/// The pure, seeded cross-layer fault schedule of a [`ChaosSpec`].
///
/// `decide` is a function of `(seed, layer, op_index, key)` only: querying
/// layers in any interleaving, repeatedly, or concurrently never changes any
/// answer, which is what makes one seed replay a whole cross-layer trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    storage: StorageChaos,
    net: NetChaos,
    faas: FaasChaos,
    partition: PartitionChaos,
}

impl FaultSchedule {
    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The storage-layer pressure.
    pub fn storage_chaos(&self) -> StorageChaos {
        self.storage
    }

    /// The net-layer pressure.
    pub fn net_chaos(&self) -> NetChaos {
        self.net
    }

    /// The platform-layer pressure.
    pub fn faas_chaos(&self) -> FaasChaos {
        self.faas
    }

    /// The dissemination-partition pressure.
    pub fn partition_chaos(&self) -> PartitionChaos {
        self.partition
    }

    /// Whether the dissemination edge between nodes `a` and `b` is cut in
    /// maintenance round `round`.
    ///
    /// Symmetric (`edge_cut(r, a, b) == edge_cut(r, b, a)`) and — like every
    /// other decision — a pure function of the seed: which edges fall is
    /// drawn once per unordered endpoint pair, and the same edges stay down
    /// for the whole `[from_round, to_round)` window, modelling a network
    /// partition rather than per-message loss.
    pub fn edge_cut(&self, round: u64, a: &str, b: &str) -> bool {
        let c = &self.partition;
        if c.is_quiet() || round < c.from_round || round >= c.to_round {
            return false;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut hasher = DefaultHasher::new();
        lo.hash(&mut hasher);
        hi.hash(&mut hasher);
        let stream = (self.seed ^ PARTITION_SALT)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(hasher.finish().wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = StdRng::seed_from_u64(stream);
        rng.gen_range(0.0..1.0) < c.cut_fraction
    }

    /// The fault injected into operation number `op_index` of `layer` on
    /// `key` (the layer's primary key, verb, or function name — whatever
    /// names the operation).
    ///
    /// Deterministic in `(seed, layer, op_index, key)` and independent of
    /// call order across layers: each decision draws from its own RNG stream
    /// keyed by the triple, so concurrent layers racing for their own
    /// indices still reproduce the same per-layer schedules.
    pub fn decide(&self, layer: Layer, op_index: u64, key: &str) -> FaultKind {
        match layer {
            Layer::Storage => self.decide_storage(op_index, key),
            Layer::Net => self.decide_net(op_index, key),
            Layer::Faas => self.decide_faas(op_index, key),
        }
    }

    /// The first `n` decisions of one layer for a fixed key — the
    /// materialised schedule, used by determinism tests and for replaying a
    /// failure report.
    pub fn materialize(&self, layer: Layer, n: u64, key: &str) -> Vec<FaultKind> {
        (0..n).map(|i| self.decide(layer, i, key)).collect()
    }

    /// SplitMix-style per-op stream: cheap, stateless, order-independent.
    /// The per-layer salt decorrelates layers sharing one seed.
    fn stream(&self, layer: Layer, op_index: u64) -> StdRng {
        let stream = (self.seed ^ layer.salt())
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(op_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        StdRng::seed_from_u64(stream)
    }

    fn decide_storage(&self, op_index: u64, key: &str) -> FaultKind {
        let c = &self.storage;
        // The gray failure is keyed by data placement, not by chance: a
        // degraded stripe is slow for *every* request that hashes to it.
        if let Some(slow) = c.slow_stripe {
            if stripe_of(key, c.stripes) == slow {
                return FaultKind::Slow;
            }
        }
        if c.error_rate <= 0.0 && c.timeout_rate <= 0.0 {
            return FaultKind::None;
        }
        let mut rng = self.stream(Layer::Storage, op_index);
        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < c.error_rate {
            FaultKind::TransientError {
                applied: rng.gen_bool(0.5),
            }
        } else if draw < c.error_rate + c.timeout_rate {
            FaultKind::Timeout
        } else {
            FaultKind::None
        }
    }

    fn decide_net(&self, op_index: u64, _key: &str) -> FaultKind {
        let c = &self.net;
        if c.is_quiet() {
            return FaultKind::None;
        }
        let mut rng = self.stream(Layer::Net, op_index);
        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < c.reset_rate {
            FaultKind::TransientError {
                applied: rng.gen_bool(0.5),
            }
        } else if draw < c.reset_rate + c.delay_rate {
            FaultKind::Timeout
        } else {
            FaultKind::None
        }
    }

    fn decide_faas(&self, op_index: u64, _key: &str) -> FaultKind {
        let c = &self.faas;
        if c.is_quiet() {
            return FaultKind::None;
        }
        let mut rng = self.stream(Layer::Faas, op_index);
        let draw: f64 = rng.gen_range(0.0..1.0);
        if draw < c.before_body {
            FaultKind::TransientError { applied: false }
        } else if draw < c.before_body + c.after_body {
            FaultKind::TransientError { applied: true }
        } else if draw < c.before_body + c.after_body + c.mid_body {
            FaultKind::MidCrash
        } else {
            FaultKind::None
        }
    }
}

/// One layer's stateful view of a schedule: the pure schedule plus the
/// layer's operation counter. This is the whole state a per-layer adapter
/// needs — the schedule stays pure, the adapter owns index consumption.
#[derive(Debug)]
pub struct LayerSchedule {
    schedule: FaultSchedule,
    layer: Layer,
    ops: AtomicU64,
}

impl LayerSchedule {
    /// A view of `schedule` for `layer`, starting at operation 0.
    pub fn new(schedule: FaultSchedule, layer: Layer) -> Self {
        LayerSchedule {
            schedule,
            layer,
            ops: AtomicU64::new(0),
        }
    }

    /// The layer this view consumes indices for.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// The underlying pure schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Consumes the next operation index and returns its fault.
    pub fn decide_next(&self, key: &str) -> FaultKind {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        self.schedule.decide(self.layer, index, key)
    }

    /// Consumes the next operation index and returns it with its fault
    /// (for adapters that put the index into error messages).
    pub fn decide_next_indexed(&self, key: &str) -> (u64, FaultKind) {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        (index, self.schedule.decide(self.layer, index, key))
    }

    /// Operation indices consumed so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

/// Implemented by each layer's injector (the storage backend wrapper, the
/// client SDK's connection injector, the platform's invocation injector) so
/// a trial can interrogate every layer uniformly.
pub trait ChaosInjector {
    /// The layer this injector drives.
    fn layer(&self) -> Layer;

    /// Operations that have consumed a schedule index so far.
    fn ops_seen(&self) -> u64;

    /// Faults injected so far, of any kind.
    fn faults_injected(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_spec(seed: u64) -> ChaosSpec {
        ChaosSpec::new(seed)
            .storage(StorageChaos {
                error_rate: 0.2,
                timeout_rate: 0.1,
                timeout_us: 5_000.0,
                ..StorageChaos::quiet()
            })
            .net(NetChaos::resets_and_delays(
                0.2,
                0.1,
                Duration::from_millis(1),
            ))
            .faas(FaasChaos::uniform(0.3))
    }

    #[test]
    fn identical_seeds_produce_identical_cross_layer_schedules() {
        let a = busy_spec(42).schedule();
        let b = busy_spec(42).schedule();
        for layer in Layer::ALL {
            assert_eq!(
                a.materialize(layer, 500, "k"),
                b.materialize(layer, 500, "k"),
                "layer {} must replay from the seed",
                layer.label()
            );
        }
    }

    #[test]
    fn different_seeds_and_different_layers_decorrelate() {
        let a = busy_spec(1).schedule();
        let b = busy_spec(2).schedule();
        assert_ne!(
            a.materialize(Layer::Storage, 200, "k"),
            b.materialize(Layer::Storage, 200, "k"),
            "seeds must steer the schedule"
        );
        // Layers sharing one seed draw different streams: the fault mix is
        // the same shape but the sequences must not be identical.
        let storage: Vec<bool> = a
            .materialize(Layer::Storage, 200, "k")
            .iter()
            .map(FaultKind::is_fault)
            .collect();
        let net: Vec<bool> = a
            .materialize(Layer::Net, 200, "k")
            .iter()
            .map(FaultKind::is_fault)
            .collect();
        assert_ne!(storage, net, "layer salts must decorrelate layers");
    }

    #[test]
    fn decisions_are_order_independent_across_layers() {
        let schedule = busy_spec(7).schedule();
        // Materialise forward, then query in a scrambled cross-layer
        // interleaving; every answer must match.
        let expected: Vec<(Layer, u64, FaultKind)> = Layer::ALL
            .iter()
            .flat_map(|&layer| (0..100).map(move |i| (layer, i, schedule.decide(layer, i, "k"))))
            .collect();
        for &(layer, i, expected_kind) in expected.iter().rev() {
            assert_eq!(schedule.decide(layer, i, "k"), expected_kind);
        }
        // Repeated queries never consume anything.
        assert_eq!(
            schedule.decide(Layer::Net, 63, "k"),
            schedule.decide(Layer::Net, 63, "k")
        );
    }

    #[test]
    fn storage_schedule_is_bit_compatible_with_the_legacy_planner() {
        // The storage layer's salt is zero, so a seed recorded by a PR 4
        // chaos report replays the same storage schedule through the unified
        // crate. This pins the legacy stream derivation.
        let schedule = ChaosSpec::new(42)
            .storage(StorageChaos {
                error_rate: 0.2,
                timeout_rate: 0.1,
                ..StorageChaos::quiet()
            })
            .schedule();
        let legacy = |op_index: u64| {
            let stream = 42u64
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(op_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            let mut rng = StdRng::seed_from_u64(stream);
            let draw: f64 = rng.gen_range(0.0..1.0);
            if draw < 0.2 {
                FaultKind::TransientError {
                    applied: rng.gen_bool(0.5),
                }
            } else if draw < 0.3 {
                FaultKind::Timeout
            } else {
                FaultKind::None
            }
        };
        for i in 0..500 {
            assert_eq!(schedule.decide(Layer::Storage, i, "k"), legacy(i));
        }
    }

    #[test]
    fn faas_rates_map_to_the_right_fault_kinds() {
        let schedule = ChaosSpec::new(3).faas(FaasChaos::uniform(0.9)).schedule();
        let kinds = schedule.materialize(Layer::Faas, 600, "invoke");
        assert!(kinds.contains(&FaultKind::TransientError { applied: false }));
        assert!(kinds.contains(&FaultKind::TransientError { applied: true }));
        assert!(kinds.contains(&FaultKind::MidCrash));
        assert!(kinds.contains(&FaultKind::None));
        assert!(!kinds.contains(&FaultKind::Timeout));
        assert!(!kinds.contains(&FaultKind::Slow));
    }

    #[test]
    fn injected_rates_track_the_configured_rates() {
        let schedule = busy_spec(11).schedule();
        let faults = schedule
            .materialize(Layer::Net, 2_000, "commit")
            .into_iter()
            .filter(|f| f.is_fault())
            .count();
        let rate = faults as f64 / 2_000.0;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "injected net rate {rate} should be near 0.3"
        );
    }

    #[test]
    fn slow_stripe_targets_placement_not_chance() {
        let stripes = 8;
        let victim_stripe = stripe_of("victim", stripes);
        let schedule = ChaosSpec::new(1)
            .storage(StorageChaos::slow_stripe(victim_stripe, stripes, 10_000.0))
            .schedule();
        assert_eq!(
            schedule.decide(Layer::Storage, 0, "victim"),
            FaultKind::Slow
        );
        let other = (0..64)
            .map(|i| format!("other{i}"))
            .find(|k| stripe_of(k, stripes) != victim_stripe)
            .expect("some key lands elsewhere");
        assert_eq!(schedule.decide(Layer::Storage, 0, &other), FaultKind::None);
        // And the slow stripe never bleeds into other layers.
        assert_eq!(schedule.decide(Layer::Net, 0, "victim"), FaultKind::None);
    }

    #[test]
    fn layer_schedule_consumes_indices() {
        let spec = busy_spec(5);
        let layer = spec.layer(Layer::Net);
        let direct = spec.schedule().materialize(Layer::Net, 50, "get");
        let consumed: Vec<FaultKind> = (0..50).map(|_| layer.decide_next("get")).collect();
        assert_eq!(direct, consumed);
        assert_eq!(layer.ops_seen(), 50);
        let (index, _) = layer.decide_next_indexed("get");
        assert_eq!(index, 50);
    }

    #[test]
    fn quiet_spec_is_quiet_everywhere() {
        let spec = ChaosSpec::new(9);
        assert!(spec.is_quiet());
        let schedule = spec.schedule();
        for layer in Layer::ALL {
            assert!(schedule
                .materialize(layer, 200, "k")
                .iter()
                .all(|f| *f == FaultKind::None));
        }
    }

    #[test]
    fn partition_cuts_are_symmetric_seeded_and_windowed() {
        let spec = ChaosSpec::new(77).partition(PartitionChaos::cut(0.5, 2, 6));
        assert!(!spec.is_quiet());
        let schedule = spec.schedule();
        let nodes: Vec<String> = (0..12).map(|i| format!("aft-node-{i}")).collect();
        let mut cut_edges = 0usize;
        let mut total = 0usize;
        for (i, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(i + 1) {
                total += 1;
                // Symmetric in the endpoints.
                assert_eq!(schedule.edge_cut(3, a, b), schedule.edge_cut(3, b, a));
                // Outside the window nothing is cut.
                assert!(!schedule.edge_cut(1, a, b));
                assert!(!schedule.edge_cut(6, a, b));
                if schedule.edge_cut(2, a, b) {
                    cut_edges += 1;
                    // A cut edge stays down for the whole window.
                    assert!(schedule.edge_cut(5, a, b));
                }
            }
        }
        assert!(
            cut_edges > 0 && cut_edges < total,
            "a 0.5 cut over {total} edges should fell some but not all, felled {cut_edges}"
        );
        // And the same seed replays the same cut set.
        let replay = spec.schedule();
        for (i, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(i + 1) {
                assert_eq!(schedule.edge_cut(4, a, b), replay.edge_cut(4, a, b));
            }
        }
    }

    #[test]
    fn quiet_partition_never_cuts() {
        let schedule = ChaosSpec::new(5).schedule();
        assert!(!schedule.edge_cut(0, "a", "b"));
        assert!(ChaosSpec::new(5)
            .partition(PartitionChaos::cut(1.0, 4, 4))
            .partition
            .is_quiet());
    }

    #[test]
    fn kill_plans_compose_on_the_spec() {
        let spec = ChaosSpec::new(1)
            .kill(KillPlan::immediate(
                "aft-node-0",
                CommitPhase::BeforeDataPut,
            ))
            .kill(KillPlan::immediate("aft-node-1", CommitPhase::BeforeBroadcast).after_commits(3));
        assert!(!spec.is_quiet());
        assert_eq!(spec.kills.len(), 2);
        assert_eq!(spec.kills[1].after_commits, 3);
        assert_eq!(spec.kills[1].phase, CommitPhase::BeforeBroadcast);
    }
}
