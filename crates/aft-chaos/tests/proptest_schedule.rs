//! Property tests for the cross-layer fault schedule.
//!
//! The invariant the whole crate exists for: one seed yields an identical
//! cross-layer fault schedule *regardless of the interleaving order* in
//! which layers query it. The storage planner always had this property per
//! layer; a unified trial (storage + net + faas racing on different
//! threads) needs it across layers, or a replayed seed would not reproduce
//! the failing run.

use std::time::Duration;

use aft_chaos::{ChaosSpec, FaasChaos, FaultKind, Layer, NetChaos, StorageChaos};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = ChaosSpec> {
    (
        any::<u64>(),
        (0.0f64..0.5, 0.0f64..0.5),
        (0.0f64..0.5, 0.0f64..0.5),
        (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3),
    )
        .prop_map(
            |(seed, (error_rate, timeout_rate), (reset_rate, delay_rate), (before, after, mid))| {
                ChaosSpec::new(seed)
                    .storage(StorageChaos {
                        error_rate,
                        timeout_rate,
                        timeout_us: 1_000.0,
                        ..StorageChaos::quiet()
                    })
                    .net(NetChaos::resets_and_delays(
                        reset_rate,
                        delay_rate,
                        Duration::from_millis(1),
                    ))
                    .faas(FaasChaos {
                        before_body: before,
                        after_body: after,
                        mid_body: mid,
                    })
            },
        )
}

/// A query identifies one decision: (layer, op_index, key choice).
fn arb_queries() -> impl Strategy<Value = Vec<(usize, u64, usize)>> {
    proptest::collection::vec((0usize..3, 0u64..200, 0usize..4), 1..200)
}

const KEYS: [&str; 4] = ["k", "commit", "data/cart/7", "fn:checkout"];

proptest! {
    /// Querying the schedule in an arbitrary cross-layer interleaving —
    /// including repeats — returns exactly what materialising each layer
    /// up front returns: decisions depend only on (seed, layer, index, key).
    #[test]
    fn schedule_is_independent_of_cross_layer_query_order(
        spec in arb_spec(),
        queries in arb_queries(),
    ) {
        let schedule = spec.schedule();
        // Materialise the reference answers first, layer by layer, key by
        // key, in one fixed order.
        let reference: Vec<Vec<Vec<FaultKind>>> = Layer::ALL
            .iter()
            .map(|&layer| {
                KEYS.iter()
                    .map(|key| schedule.materialize(layer, 200, key))
                    .collect()
            })
            .collect();
        // Replay the scrambled interleaving; every answer must match.
        for (layer_idx, op_index, key_idx) in queries {
            let layer = Layer::ALL[layer_idx];
            let got = schedule.decide(layer, op_index, KEYS[key_idx]);
            prop_assert_eq!(
                got,
                reference[layer_idx][key_idx][op_index as usize],
                "layer {} op {} key {}",
                layer.label(),
                op_index,
                KEYS[key_idx]
            );
        }
    }

    /// Two schedules built from the same spec are indistinguishable, and
    /// re-querying is idempotent (nothing is consumed by deciding).
    #[test]
    fn same_seed_same_schedule(spec in arb_spec()) {
        let a = spec.schedule();
        let b = spec.clone().schedule();
        for layer in Layer::ALL {
            prop_assert_eq!(a.materialize(layer, 100, "k"), b.materialize(layer, 100, "k"));
            prop_assert_eq!(a.materialize(layer, 100, "k"), a.materialize(layer, 100, "k"));
        }
    }
}
