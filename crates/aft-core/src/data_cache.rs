//! The node-local data cache.
//!
//! In addition to the metadata cache, each AFT node keeps a data cache that
//! stores payloads for a subset of the key versions it knows about (§3.1).
//! The cache avoids a storage round trip for frequently read versions; its
//! effect — modest over Redis, up to ~15-17% over DynamoDB, growing with
//! access skew — is evaluated in §6.2 (Figure 4).
//!
//! The cache is a byte-bounded LRU keyed by version storage key. Entries are
//! only ever inserted for *committed* versions (the commit path and the read
//! path both insert after the commit record is known), so a cache hit can
//! never leak dirty data.
//!
//! The cache is lock-striped: `hash(storage_key) → stripe`, each stripe an
//! independent LRU with `capacity / stripes` bytes. Concurrent readers of
//! different keys therefore never serialise on one cache mutex. Small caches
//! (below [`MIN_STRIPE_BYTES`] per stripe) collapse to a single stripe so
//! byte-exact eviction tests and tiny configurations behave like the classic
//! single-lock LRU.

use std::collections::HashMap;

use aft_storage::stripe_of;
use aft_types::Value;
use parking_lot::Mutex;

/// Maximum stripe count for a data cache.
pub const MAX_CACHE_STRIPES: usize = 16;

/// Minimum per-stripe capacity; caches smaller than `2 * MIN_STRIPE_BYTES`
/// use a single stripe.
pub const MIN_STRIPE_BYTES: usize = 1024 * 1024;

/// A byte-bounded LRU cache from version storage keys to payloads.
#[derive(Debug)]
pub struct DataCache {
    stripes: Box<[Mutex<Inner>]>,
    capacity_bytes: usize,
    stripe_capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    /// Monotonic counter used as the LRU clock.
    tick: u64,
    total_bytes: usize,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry {
    value: Value,
    last_used: u64,
}

impl DataCache {
    /// Creates a cache bounded to `capacity_bytes` of payload. A capacity of
    /// zero disables caching entirely (every lookup misses). The stripe
    /// count scales with capacity: one stripe per [`MIN_STRIPE_BYTES`], at
    /// most [`MAX_CACHE_STRIPES`].
    pub fn new(capacity_bytes: usize) -> Self {
        let stripes = (capacity_bytes / MIN_STRIPE_BYTES).clamp(1, MAX_CACHE_STRIPES);
        Self::with_stripes(capacity_bytes, stripes)
    }

    /// Creates a cache with an explicit stripe count (clamped to ≥ 1). Each
    /// stripe is an independent LRU over `capacity_bytes / stripes` bytes.
    pub fn with_stripes(capacity_bytes: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        DataCache {
            stripes: (0..stripes).map(|_| Mutex::new(Inner::default())).collect(),
            capacity_bytes,
            stripe_capacity: capacity_bytes / stripes,
        }
    }

    /// A disabled cache.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Returns true if the cache can never hold anything.
    pub fn is_disabled(&self) -> bool {
        self.capacity_bytes == 0
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, storage_key: &str) -> &Mutex<Inner> {
        &self.stripes[stripe_of(storage_key, self.stripes.len())]
    }

    /// Looks up the payload cached for `storage_key`.
    pub fn get(&self, storage_key: &str) -> Option<Value> {
        if self.is_disabled() {
            return None;
        }
        let mut inner = self.stripe(storage_key).lock();
        inner.tick += 1;
        let tick = inner.tick;
        let value = inner.entries.get_mut(storage_key).map(|entry| {
            entry.last_used = tick;
            entry.value.clone()
        });
        if value.is_some() {
            inner.hits += 1;
        } else {
            inner.misses += 1;
        }
        value
    }

    /// Inserts a payload for `storage_key`, evicting least-recently-used
    /// entries of its stripe if needed. Values larger than a stripe are
    /// ignored.
    pub fn insert(&self, storage_key: &str, value: Value) {
        if self.is_disabled() || value.len() > self.stripe_capacity {
            return;
        }
        let mut inner = self.stripe(storage_key).lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            storage_key.to_owned(),
            Entry {
                value: value.clone(),
                last_used: tick,
            },
        ) {
            inner.total_bytes -= old.value.len();
        }
        inner.total_bytes += value.len();
        // Evict until the stripe fits its share of the budget.
        while inner.total_bytes > self.stripe_capacity {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity implies at least one entry");
            if let Some(e) = inner.entries.remove(&victim) {
                inner.total_bytes -= e.value.len();
            }
        }
    }

    /// Removes the entry for `storage_key` (garbage collection evicts data
    /// for deleted transactions).
    pub fn evict(&self, storage_key: &str) {
        let mut inner = self.stripe(storage_key).lock();
        if let Some(e) = inner.entries.remove(storage_key) {
            inner.total_bytes -= e.value.len();
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Returns true if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().entries.is_empty())
    }

    /// Total payload bytes currently cached.
    pub fn bytes(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().total_bytes).sum()
    }

    /// `(hits, misses)` counters since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for stripe in &self.stripes {
            let inner = stripe.lock();
            hits += inner.hits;
            misses += inner.misses;
        }
        (hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn val(n: usize) -> Value {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn hit_and_miss() {
        let cache = DataCache::new(1024);
        assert!(cache.get("a").is_none());
        cache.insert("a", val(10));
        assert_eq!(cache.get("a").unwrap().len(), 10);
        assert_eq!(cache.hit_stats(), (1, 1));
        assert_eq!(cache.bytes(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let cache = DataCache::new(100);
        cache.insert("cold", val(40));
        cache.insert("hot", val(40));
        // Touch "cold" then "hot" so that "cold" is older.
        cache.get("cold");
        cache.get("hot");
        cache.get("hot");
        // Inserting 40 more bytes must evict exactly one entry: the LRU one
        // is "cold"? No: "cold" was touched before "hot", so "cold" is older.
        cache.insert("new", val(40));
        assert!(cache.get("hot").is_some(), "recently used entry survives");
        assert!(cache.get("cold").is_none(), "LRU entry is evicted");
        assert!(cache.bytes() <= 100);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let cache = DataCache::new(16);
        cache.insert("big", val(64));
        assert!(cache.is_empty());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = DataCache::disabled();
        assert!(cache.is_disabled());
        cache.insert("a", val(1));
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let cache = DataCache::new(100);
        cache.insert("a", val(30));
        cache.insert("a", val(50));
        assert_eq!(cache.bytes(), 50);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evict_removes_specific_entry() {
        let cache = DataCache::new(100);
        cache.insert("a", val(10));
        cache.insert("b", val(10));
        cache.evict("a");
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert_eq!(cache.bytes(), 10);
    }

    #[test]
    fn many_inserts_respect_capacity() {
        let cache = DataCache::new(1000);
        for i in 0..200 {
            cache.insert(&format!("k{i}"), val(17));
        }
        assert!(cache.bytes() <= 1000);
        assert!(cache.len() <= 1000 / 17 + 1);
    }

    #[test]
    fn stripe_count_scales_with_capacity() {
        // Tiny caches stay single-stripe so byte-exact LRU tests hold.
        assert_eq!(DataCache::new(1000).stripe_count(), 1);
        assert_eq!(DataCache::new(0).stripe_count(), 1);
        // Node-sized caches stripe up to the cap.
        assert_eq!(DataCache::new(4 * 1024 * 1024).stripe_count(), 4);
        assert_eq!(DataCache::new(256 * 1024 * 1024).stripe_count(), 16);
    }

    #[test]
    fn striped_cache_keeps_total_bytes_within_capacity() {
        let capacity = 8 * 1024 * 1024;
        let cache = DataCache::with_stripes(capacity, 8);
        assert_eq!(cache.stripe_count(), 8);
        for i in 0..1000 {
            cache.insert(&format!("data/k/{i}"), val(64 * 1024));
        }
        assert!(cache.bytes() <= capacity);
        assert!(!cache.is_empty());
        let (hits, misses) = cache.hit_stats();
        assert_eq!(hits + misses, 0, "inserts alone record no lookups");
        // Values larger than one stripe's share are ignored, keeping the
        // per-stripe eviction loop well-defined.
        let before = cache.len();
        cache.insert("big", val(capacity / 8 + 1));
        assert_eq!(cache.len(), before);
    }
}
