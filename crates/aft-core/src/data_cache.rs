//! The node-local data cache.
//!
//! In addition to the metadata cache, each AFT node keeps a data cache that
//! stores payloads for a subset of the key versions it knows about (§3.1).
//! The cache avoids a storage round trip for frequently read versions; its
//! effect — modest over Redis, up to ~15-17% over DynamoDB, growing with
//! access skew — is evaluated in §6.2 (Figure 4).
//!
//! The cache is a byte-bounded LRU keyed by version storage key. Entries are
//! only ever inserted for *committed* versions (the commit path and the read
//! path both insert after the commit record is known), so a cache hit can
//! never leak dirty data.

use std::collections::HashMap;

use aft_types::Value;
use parking_lot::Mutex;

/// A byte-bounded LRU cache from version storage keys to payloads.
#[derive(Debug)]
pub struct DataCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    /// Monotonic counter used as the LRU clock.
    tick: u64,
    total_bytes: usize,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry {
    value: Value,
    last_used: u64,
}

impl DataCache {
    /// Creates a cache bounded to `capacity_bytes` of payload. A capacity of
    /// zero disables caching entirely (every lookup misses).
    pub fn new(capacity_bytes: usize) -> Self {
        DataCache {
            inner: Mutex::new(Inner::default()),
            capacity_bytes,
        }
    }

    /// A disabled cache.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Returns true if the cache can never hold anything.
    pub fn is_disabled(&self) -> bool {
        self.capacity_bytes == 0
    }

    /// Looks up the payload cached for `storage_key`.
    pub fn get(&self, storage_key: &str) -> Option<Value> {
        if self.is_disabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let value = inner.entries.get_mut(storage_key).map(|entry| {
            entry.last_used = tick;
            entry.value.clone()
        });
        if value.is_some() {
            inner.hits += 1;
        } else {
            inner.misses += 1;
        }
        value
    }

    /// Inserts a payload for `storage_key`, evicting least-recently-used
    /// entries if needed. Values larger than the whole cache are ignored.
    pub fn insert(&self, storage_key: &str, value: Value) {
        if self.is_disabled() || value.len() > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.entries.insert(
            storage_key.to_owned(),
            Entry {
                value: value.clone(),
                last_used: tick,
            },
        ) {
            inner.total_bytes -= old.value.len();
        }
        inner.total_bytes += value.len();
        // Evict until we fit.
        while inner.total_bytes > self.capacity_bytes {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity implies at least one entry");
            if let Some(e) = inner.entries.remove(&victim) {
                inner.total_bytes -= e.value.len();
            }
        }
    }

    /// Removes the entry for `storage_key` (garbage collection evicts data
    /// for deleted transactions).
    pub fn evict(&self, storage_key: &str) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(storage_key) {
            inner.total_bytes -= e.value.len();
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Returns true if the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// Total payload bytes currently cached.
    pub fn bytes(&self) -> usize {
        self.inner.lock().total_bytes
    }

    /// `(hits, misses)` counters since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn val(n: usize) -> Value {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn hit_and_miss() {
        let cache = DataCache::new(1024);
        assert!(cache.get("a").is_none());
        cache.insert("a", val(10));
        assert_eq!(cache.get("a").unwrap().len(), 10);
        assert_eq!(cache.hit_stats(), (1, 1));
        assert_eq!(cache.bytes(), 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let cache = DataCache::new(100);
        cache.insert("cold", val(40));
        cache.insert("hot", val(40));
        // Touch "cold" then "hot" so that "cold" is older.
        cache.get("cold");
        cache.get("hot");
        cache.get("hot");
        // Inserting 40 more bytes must evict exactly one entry: the LRU one
        // is "cold"? No: "cold" was touched before "hot", so "cold" is older.
        cache.insert("new", val(40));
        assert!(cache.get("hot").is_some(), "recently used entry survives");
        assert!(cache.get("cold").is_none(), "LRU entry is evicted");
        assert!(cache.bytes() <= 100);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let cache = DataCache::new(16);
        cache.insert("big", val(64));
        assert!(cache.is_empty());
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = DataCache::disabled();
        assert!(cache.is_disabled());
        cache.insert("a", val(1));
        assert!(cache.get("a").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn reinsert_replaces_and_accounts_bytes() {
        let cache = DataCache::new(100);
        cache.insert("a", val(30));
        cache.insert("a", val(50));
        assert_eq!(cache.bytes(), 50);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evict_removes_specific_entry() {
        let cache = DataCache::new(100);
        cache.insert("a", val(10));
        cache.insert("b", val(10));
        cache.evict("a");
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert_eq!(cache.bytes(), 10);
    }

    #[test]
    fn many_inserts_respect_capacity() {
        let cache = DataCache::new(1000);
        for i in 0..200 {
            cache.insert(&format!("k{i}"), val(17));
        }
        assert!(cache.bytes() <= 1000);
        assert!(cache.len() <= 1000 / 17 + 1);
    }
}
