//! The client-facing transaction API surface, abstracted over transport.
//!
//! Table 1's API (`StartTransaction` / `Get` / `Put` / `Commit` / `Abort`)
//! was, until the aft-net subsystem, only reachable in-process through
//! [`AftNode`]'s inherent methods. [`AftApi`] lifts exactly the surface the
//! workload drivers use into a trait, so a driver is indifferent to whether
//! its calls land on a local node, a cluster's router, or a socket to a
//! served deployment — the evaluation harness runs unchanged against all
//! three.
//!
//! Two deliberate differences from the inherent [`AftNode`] methods:
//!
//! * [`AftApi::commit`] takes the read set the caller observed and returns a
//!   [`CommitOutcome`] that reports whether that read set was an Atomic
//!   Readset. The check needs the committing node's metadata cache, which a
//!   remote client does not have — so the check travels *to* the metadata
//!   instead of the metadata traveling to the client.
//! * [`AftApi::begin`] is fallible: a networked implementation may need to
//!   reach a server (or may choose, like the aft-net SDK, to mint the
//!   transaction id locally and never fail).

use std::sync::Arc;

use aft_types::{AftResult, Key, TransactionId, Value};

use crate::node::AftNode;
use crate::read::is_atomic_readset;

/// What a commit acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The transaction's final id (commit timestamp assigned by the node).
    pub final_id: TransactionId,
    /// Whether the read set reported at commit time was an Atomic Readset
    /// against the committing node's metadata (Theorem 1 — the evaluation's
    /// fractured-read detector).
    pub atomic: bool,
    /// True when this acknowledgement deduplicated a retried commit instead
    /// of applying a second time (§4.2's lost-ack window; always false for
    /// in-process commits, which cannot be retried by a transport).
    pub duplicate: bool,
}

/// The transactional API the workload drivers run against.
///
/// Implemented by [`AftNode`] (in-process) and by the aft-net client SDK
/// (over a socket). All methods are callable from many threads at once.
pub trait AftApi: Send + Sync {
    /// A short label naming the implementation, for reports.
    fn api_label(&self) -> &str;

    /// `StartTransaction()`: begins a transaction and returns its id.
    fn begin(&self) -> AftResult<TransactionId>;

    /// `Get(txid, key)` returning the committed writer of the value, or
    /// `None` as the version when the value came from the transaction's own
    /// write buffer (read-your-writes, §3.5).
    fn get_versioned(
        &self,
        txid: &TransactionId,
        key: &Key,
    ) -> AftResult<Option<(Value, Option<TransactionId>)>>;

    /// Reads several keys in one request, in key order.
    fn get_all(&self, txid: &TransactionId, keys: &[Key]) -> AftResult<Vec<Option<Value>>>;

    /// `Put(txid, key, value)`: buffers a write.
    fn put(&self, txid: &TransactionId, key: Key, value: Value) -> AftResult<()>;

    /// `CommitTransaction(txid)`: durably commits, reporting the outcome.
    /// `reads` is the (key, version) set the caller observed from committed
    /// data, used for the read-atomicity verdict in the outcome.
    fn commit(
        &self,
        txid: &TransactionId,
        reads: &[(Key, TransactionId)],
    ) -> AftResult<CommitOutcome>;

    /// `AbortTransaction(txid)`: discards the transaction.
    fn abort(&self, txid: &TransactionId) -> AftResult<()>;
}

impl AftApi for AftNode {
    fn api_label(&self) -> &str {
        "in-process"
    }

    fn begin(&self) -> AftResult<TransactionId> {
        Ok(self.start_transaction())
    }

    fn get_versioned(
        &self,
        txid: &TransactionId,
        key: &Key,
    ) -> AftResult<Option<(Value, Option<TransactionId>)>> {
        AftNode::get_versioned(self, txid, key)
    }

    fn get_all(&self, txid: &TransactionId, keys: &[Key]) -> AftResult<Vec<Option<Value>>> {
        AftNode::get_all(self, txid, keys)
    }

    fn put(&self, txid: &TransactionId, key: Key, value: Value) -> AftResult<()> {
        AftNode::put(self, txid, key, value)
    }

    fn commit(
        &self,
        txid: &TransactionId,
        reads: &[(Key, TransactionId)],
    ) -> AftResult<CommitOutcome> {
        let final_id = AftNode::commit(self, txid)?;
        Ok(CommitOutcome {
            final_id,
            atomic: is_atomic_readset(reads, self.metadata()),
            duplicate: false,
        })
    }

    fn abort(&self, txid: &TransactionId) -> AftResult<()> {
        AftNode::abort(self, txid)
    }
}

/// Preloads an initial version of every key through any [`AftApi`], in
/// chunked transactions, so experiments never measure cold reads. Shared by
/// the drivers and the service benchmarks.
pub fn preload_keys(
    api: &Arc<dyn AftApi>,
    keys: &[Key],
    make_value: impl Fn(&Key) -> Value,
) -> AftResult<()> {
    for chunk in keys.chunks(500) {
        let txid = api.begin()?;
        for key in chunk {
            api.put(&txid, key.clone(), make_value(key))?;
        }
        api.commit(&txid, &[])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use aft_storage::InMemoryStore;
    use aft_types::clock::TickingClock;
    use bytes::Bytes;

    fn node() -> Arc<AftNode> {
        AftNode::with_clock(
            NodeConfig::test(),
            InMemoryStore::shared(),
            TickingClock::shared(1, 1),
        )
        .unwrap()
    }

    #[test]
    fn node_implements_the_api_surface() {
        let api: Arc<dyn AftApi> = node();
        let txid = api.begin().unwrap();
        api.put(&txid, Key::new("k"), Bytes::from_static(b"v"))
            .unwrap();
        // Read-your-writes: buffered values come back with no version.
        let (value, version) = api.get_versioned(&txid, &Key::new("k")).unwrap().unwrap();
        assert_eq!(value, Bytes::from_static(b"v"));
        assert!(version.is_none());
        let outcome = api.commit(&txid, &[]).unwrap();
        assert!(outcome.atomic);
        assert!(!outcome.duplicate);
        assert_eq!(outcome.final_id.uuid, txid.uuid);

        // A later transaction observes the commit with its true version.
        let reader = api.begin().unwrap();
        let (value, version) = api.get_versioned(&reader, &Key::new("k")).unwrap().unwrap();
        assert_eq!(value, Bytes::from_static(b"v"));
        assert_eq!(version, Some(outcome.final_id));
        assert_eq!(
            api.get_all(&reader, &[Key::new("k"), Key::new("missing")])
                .unwrap(),
            vec![Some(Bytes::from_static(b"v")), None]
        );
        api.abort(&reader).unwrap();
    }

    #[test]
    fn commit_reports_the_read_atomicity_verdict() {
        let api: Arc<dyn AftApi> = node();
        // Commit {a, b} together, then a newer version of b alone.
        let t1 = api.begin().unwrap();
        api.put(&t1, Key::new("a"), Bytes::from_static(b"1"))
            .unwrap();
        api.put(&t1, Key::new("b"), Bytes::from_static(b"1"))
            .unwrap();
        let c1 = api.commit(&t1, &[]).unwrap();
        let t2 = api.begin().unwrap();
        api.put(&t2, Key::new("b"), Bytes::from_static(b"2"))
            .unwrap();
        let c2 = api.commit(&t2, &[]).unwrap();

        // A read set pairing t2's `b` with t1's `a` is atomic; pairing
        // t1's `b` with t2-cowritten... construct the fractured case: `a`
        // from c1 and `b` from c1 is atomic, but claiming `b` read an
        // *older* version than a cowritten key's observed record is not.
        let t3 = api.begin().unwrap();
        let atomic_reads = vec![(Key::new("a"), c1.final_id), (Key::new("b"), c2.final_id)];
        let fractured_reads = vec![
            (Key::new("b"), c1.final_id),
            (Key::new("a"), TransactionId::NULL),
        ];
        // The verdicts come from the same metadata the node itself uses.
        assert!(
            api.commit(&t3, &atomic_reads).unwrap().atomic,
            "reading the newest versions of a and b is atomic"
        );
        // c1 cowrote {a, b}: reading b@c1 while a shows NULL fractures.
        let t4 = api.begin().unwrap();
        assert!(!api.commit(&t4, &fractured_reads).unwrap().atomic);
    }

    #[test]
    fn preload_writes_every_key() {
        let api: Arc<dyn AftApi> = node();
        let keys: Vec<Key> = (0..12).map(|i| Key::new(format!("k{i}"))).collect();
        preload_keys(&api, &keys, |_| Bytes::from_static(b"seed")).unwrap();
        let txid = api.begin().unwrap();
        for key in &keys {
            assert!(api.get_versioned(&txid, key).unwrap().is_some());
        }
    }
}
