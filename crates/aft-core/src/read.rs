//! The atomic read protocol — Algorithm 1.
//!
//! Given a requested key `k` and the transaction's read set so far, the
//! protocol picks a committed version of `k` such that the read set plus the
//! chosen version still forms an Atomic Readset (Definition 1 of the paper):
//!
//! * **Lower bound** (case 1): if any earlier read `l_i` was cowritten with a
//!   version of `k`, the chosen version must be at least as new as `i`.
//! * **Validity** (case 2): the chosen version `k_t` must not have been
//!   cowritten with a key `l` that the transaction already read at an *older*
//!   version (`l_j`, `j < t`) — otherwise the earlier read already fractured.
//!
//! Unlike the original RAMP protocol, read sets are built incrementally — no
//! pre-declared read sets — which is what makes AFT usable for interactive
//! serverless applications (§2.2), at the cost of potentially staler reads or
//! (rarely) an abort when no valid version exists (§3.6).

use std::collections::HashMap;

use aft_types::{Key, TransactionId};

use crate::metadata::MetadataCache;

/// The versions a transaction has read so far: key → transaction that wrote
/// the version it read.
///
/// The read set only tracks reads that went through Algorithm 1; reads served
/// from the transaction's own write buffer (read-your-writes, §3.5) do not
/// participate.
#[derive(Debug, Clone, Default)]
pub struct ReadSet {
    versions: HashMap<Key, TransactionId>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> Self {
        ReadSet::default()
    }

    /// The version of `key` this transaction has read, if any.
    pub fn version_of(&self, key: &Key) -> Option<TransactionId> {
        self.versions.get(key).copied()
    }

    /// Records that the transaction read version `tid` of `key`.
    pub fn record(&mut self, key: Key, tid: TransactionId) {
        self.versions.insert(key, tid);
    }

    /// Number of distinct keys read.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Returns true if nothing has been read yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Iterates over `(key, version)` pairs in the read set.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &TransactionId)> {
        self.versions.iter()
    }

    /// Returns true if this read set contains a read from transaction `tid`
    /// — used by the local GC to avoid deleting metadata a running
    /// transaction has already depended on (§5.1).
    pub fn reads_from(&self, tid: &TransactionId) -> bool {
        self.versions.values().any(|v| v == tid)
    }
}

/// The outcome of Algorithm 1 for one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionChoice {
    /// The key has never been written (and no constraint forces a version):
    /// the read observes the NULL version.
    NotFound,
    /// The chosen committed version to read.
    Version(TransactionId),
    /// Versions exist, but none is compatible with the read set; the
    /// transaction must abort and retry (§3.6).
    NoValidVersion,
}

/// Algorithm 1: choose which committed version of `key` the transaction may
/// read, given its read set so far and the node's committed-transaction
/// metadata.
///
/// This function is pure with respect to the metadata cache — it never
/// touches storage — which is what keeps reads cheap: the only storage I/O a
/// read performs is fetching the chosen version's payload (unless the data
/// cache already holds it).
pub fn select_version(key: &Key, read_set: &ReadSet, metadata: &MetadataCache) -> VersionChoice {
    // Lines 3-5: compute the lower bound from prior reads whose cowritten
    // sets include `key` (case 1 of the proof of Theorem 1).
    let mut lower = TransactionId::NULL;
    for (read_key, read_tid) in read_set.iter() {
        if read_key == key {
            // A prior read of the same key also bounds the result from below
            // (repeatable read is the corollary of Theorem 1).
            if *read_tid > lower {
                lower = *read_tid;
            }
            continue;
        }
        if let Some(record) = metadata.record(read_tid) {
            if record.wrote(key) && *read_tid > lower {
                lower = *read_tid;
            }
        }
    }

    // Lines 7-9: if the node knows no version of the key and nothing forces
    // one to exist, the read observes NULL.
    let versions = metadata.versions_of(key);
    if versions.is_empty() {
        return if lower.is_null() {
            VersionChoice::NotFound
        } else {
            // A prior read was cowritten with a version of `key` at least as
            // new as `lower`, but the node no longer has (or never had) any
            // version ≥ lower — e.g. it was garbage collected (§5.2.1).
            VersionChoice::NoValidVersion
        };
    }

    // Lines 11-23: walk candidate versions newest-first, skipping versions
    // older than the lower bound, and return the first one whose cowritten
    // set does not conflict with a prior read (case 2 of the proof).
    for candidate in versions.iter().rev() {
        if *candidate < lower {
            break;
        }
        let valid = match metadata.record(candidate) {
            Some(record) => record.write_set.iter().all(|cowritten_key| {
                match read_set.version_of(cowritten_key) {
                    // We already read cowritten_key at version j; the
                    // candidate t is only valid if j >= t.
                    Some(j) => j >= *candidate,
                    None => true,
                }
            }),
            // The record vanished between the index lookup and here (racing
            // GC); treat the version as unreadable.
            None => false,
        };
        if valid {
            return VersionChoice::Version(*candidate);
        }
    }

    VersionChoice::NoValidVersion
}

/// Checks that a set of `(key, version)` observations forms an Atomic Readset
/// (Definition 1) with respect to the cowritten sets recorded in `metadata`.
///
/// Used by tests, the property-based suite, and the anomaly detectors to
/// verify Theorem 1 end-to-end: for every read version `k_i`, if the reading
/// transaction also read a key `l` that `T_i` cowrote, the version of `l` it
/// read must be at least as new as `i`.
pub fn is_atomic_readset(reads: &[(Key, TransactionId)], metadata: &MetadataCache) -> bool {
    let by_key: HashMap<&Key, TransactionId> = reads.iter().map(|(k, t)| (k, *t)).collect();
    for (_, tid) in reads {
        if tid.is_null() {
            continue;
        }
        let Some(record) = metadata.record(tid) else {
            continue;
        };
        for cowritten_key in &record.write_set {
            if let Some(read_version) = by_key.get(cowritten_key) {
                if read_version < tid {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_types::{TransactionRecord, Uuid};
    use std::sync::Arc;

    fn tid(ts: u64) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(ts as u128))
    }

    fn commit(cache: &MetadataCache, ts: u64, keys: &[&str]) -> TransactionId {
        let id = tid(ts);
        cache.insert(Arc::new(TransactionRecord::new(
            id,
            keys.iter().map(Key::new),
        )));
        id
    }

    #[test]
    fn unknown_key_reads_null() {
        let cache = MetadataCache::new();
        let reads = ReadSet::new();
        assert_eq!(
            select_version(&Key::new("nope"), &reads, &cache),
            VersionChoice::NotFound
        );
    }

    #[test]
    fn latest_version_is_preferred() {
        let cache = MetadataCache::new();
        commit(&cache, 1, &["k"]);
        let newest = commit(&cache, 2, &["k"]);
        let reads = ReadSet::new();
        assert_eq!(
            select_version(&Key::new("k"), &reads, &cache),
            VersionChoice::Version(newest)
        );
    }

    #[test]
    fn cowritten_read_forces_newer_version() {
        // T1: {l}, T2: {k, l}. After reading k2, a read of l must not return l1.
        let cache = MetadataCache::new();
        let _t1 = commit(&cache, 1, &["l"]);
        let t2 = commit(&cache, 2, &["k", "l"]);

        let mut reads = ReadSet::new();
        reads.record(Key::new("k"), t2);
        assert_eq!(
            select_version(&Key::new("l"), &reads, &cache),
            VersionChoice::Version(t2),
            "the cowritten l2 is the only valid choice"
        );
    }

    #[test]
    fn older_read_invalidates_newer_cowritten_candidate() {
        // The staleness example of §3.6: Tr reads l1; later T2: {k, l} commits.
        // A read of k cannot return k2 (cowritten with l2 > l1). If k2 is the
        // only version of k, the read has no valid version.
        let cache = MetadataCache::new();
        let t1 = commit(&cache, 1, &["l"]);
        let t2 = commit(&cache, 2, &["k", "l"]);

        let mut reads = ReadSet::new();
        reads.record(Key::new("l"), t1);
        assert_eq!(
            select_version(&Key::new("k"), &reads, &cache),
            VersionChoice::NoValidVersion
        );

        // With an older, non-conflicting version of k available, that version
        // is chosen instead — the read is just staler than it would have been.
        let cache2 = MetadataCache::new();
        let t0 = commit(&cache2, 0, &["k"]);
        commit(&cache2, 1, &["l"]);
        commit(&cache2, 2, &["k", "l"]);
        let mut reads2 = ReadSet::new();
        reads2.record(Key::new("l"), t1);
        assert_eq!(
            select_version(&Key::new("k"), &reads2, &cache2),
            VersionChoice::Version(t0)
        );
        let _ = t2;
    }

    #[test]
    fn repeatable_read_returns_the_same_version() {
        let cache = MetadataCache::new();
        let first = commit(&cache, 1, &["k"]);
        let mut reads = ReadSet::new();
        reads.record(Key::new("k"), first);
        // A newer version arrives after our first read.
        commit(&cache, 5, &["k"]);
        // Corollary 1.1: the same version must be returned again... unless the
        // newer version does not conflict. Definition 1 alone allows a newer
        // version; strict repeatable read comes from the lower-bound rule plus
        // case (2): reading k again is bounded below by our own prior read,
        // and any *newer* version of k is only valid if it doesn't conflict.
        // The paper's Corollary 1.1 derives equality, because the newer
        // version k5 cowrites k, and our read of k at version 1 < 5 makes k5
        // invalid by case (2).
        assert_eq!(
            select_version(&Key::new("k"), &reads, &cache),
            VersionChoice::Version(first)
        );
    }

    #[test]
    fn missing_required_version_reports_no_valid_version() {
        // Read set says we read l from T2 which cowrote k, but every version
        // of k has been garbage collected.
        let cache = MetadataCache::new();
        let t2 = commit(&cache, 2, &["k", "l"]);
        cache.remove(&t2);
        // Re-insert only l's newer writer so l remains readable but k has no
        // versions at all.
        commit(&cache, 3, &["l"]);

        let mut reads = ReadSet::new();
        reads.record(Key::new("l"), t2);
        // The record for t2 is gone, so the lower bound cannot be derived from
        // it; with no versions of k and no constraint, the read sees NULL.
        assert_eq!(
            select_version(&Key::new("k"), &reads, &cache),
            VersionChoice::NotFound
        );
    }

    #[test]
    fn lower_bound_with_no_surviving_versions_aborts() {
        // The §5.2.1 hazard: Ta{k}, Tb{l}, Tc{k,l}; Tr reads ka, then lb is
        // garbage collected and only lc remains... here we model the *worse*
        // case where no version of l survives at all.
        let cache = MetadataCache::new();
        let ta = commit(&cache, 1, &["k", "l"]);
        let mut reads = ReadSet::new();
        reads.record(Key::new("k"), ta);
        // Remove ta and every version of l; ta's record is still needed to
        // derive the lower bound, so keep it but drop l from the index by
        // removing ta and re-adding a k-only record with the same id.
        cache.remove(&ta);
        cache.insert(Arc::new(TransactionRecord::new(
            ta,
            vec![Key::new("k"), Key::new("l")],
        )));
        // Simulate GC of the data/metadata for l by removing ta's index entry
        // for l via a fresh cache.
        let gc_cache = MetadataCache::new();
        gc_cache.insert(Arc::new(TransactionRecord::new(
            ta,
            vec![Key::new("k"), Key::new("l")],
        )));
        // Note: in the real system the record and index are removed together;
        // this test documents that a constrained read with zero surviving
        // versions reports NoValidVersion rather than silently returning NULL.
        let empty_l_cache = MetadataCache::new();
        empty_l_cache.insert(Arc::new(TransactionRecord::new(ta, vec![Key::new("k")])));
        // Force the lower bound via a same-key prior read: reads of l bounded
        // by a prior read of l itself.
        let mut reads_l = ReadSet::new();
        reads_l.record(Key::new("l"), ta);
        assert_eq!(
            select_version(&Key::new("l"), &reads_l, &empty_l_cache),
            VersionChoice::NoValidVersion
        );
        let _ = reads;
    }

    #[test]
    fn atomic_readset_checker_agrees_with_definition() {
        let cache = MetadataCache::new();
        let t1 = commit(&cache, 1, &["l"]);
        let t2 = commit(&cache, 2, &["k", "l"]);

        // {k2, l2} is atomic; {k2, l1} is fractured.
        assert!(is_atomic_readset(
            &[(Key::new("k"), t2), (Key::new("l"), t2)],
            &cache
        ));
        assert!(!is_atomic_readset(
            &[(Key::new("k"), t2), (Key::new("l"), t1)],
            &cache
        ));
        // A single read is always atomic.
        assert!(is_atomic_readset(&[(Key::new("k"), t2)], &cache));
        // NULL reads never fracture anything.
        assert!(is_atomic_readset(
            &[(Key::new("k"), TransactionId::NULL), (Key::new("l"), t1)],
            &cache
        ));
    }

    #[test]
    fn reads_from_detects_dependencies() {
        let mut reads = ReadSet::new();
        assert!(reads.is_empty());
        reads.record(Key::new("k"), tid(4));
        assert!(reads.reads_from(&tid(4)));
        assert!(!reads.reads_from(&tid(5)));
        assert_eq!(reads.len(), 1);
    }
}
