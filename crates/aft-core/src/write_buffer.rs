//! The Atomic Write Buffer and per-transaction state.
//!
//! The write buffer sequesters every update made by an in-flight transaction
//! (§3.3). Nothing reaches storage until `CommitTransaction` — with one
//! exception: if a transaction's buffered updates exceed the configured spill
//! threshold, the buffer proactively writes the intermediary data to the
//! transaction's (still-invisible) storage keys. Because visibility is
//! controlled entirely by the commit record, spilled data stays invisible
//! until commit and simply becomes garbage if the transaction aborts or the
//! node fails (§3.3, cleaned up in §5).

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use aft_types::{AftError, AftResult, Key, KeyVersion, TransactionId, Uuid, Value};
use parking_lot::Mutex;

use crate::read::ReadSet;

/// Per-transaction in-flight state: buffered writes and the read set.
#[derive(Debug)]
pub struct ActiveTransaction {
    /// The transaction's ID as of `StartTransaction` (start timestamp + UUID);
    /// the final commit timestamp is assigned at commit time.
    pub id: TransactionId,
    /// Buffered writes: the most recent value written for each key.
    pub writes: BTreeMap<Key, Value>,
    /// Keys whose intermediary data has already been spilled to storage.
    pub spilled: HashSet<Key>,
    /// The versions read so far (Algorithm 1's `R`).
    pub reads: ReadSet,
    /// When the transaction started, for timeout-based abort.
    pub started: Instant,
    /// Total bytes currently buffered (not yet spilled).
    buffered_bytes: usize,
}

impl ActiveTransaction {
    /// Creates the in-flight state for a new transaction.
    pub fn new(id: TransactionId) -> Self {
        ActiveTransaction {
            id,
            writes: BTreeMap::new(),
            spilled: HashSet::new(),
            reads: ReadSet::new(),
            started: Instant::now(),
            buffered_bytes: 0,
        }
    }

    /// Buffers a write, replacing any previous buffered value for the key
    /// (read-your-writes always sees the latest buffered value).
    pub fn buffer_write(&mut self, key: Key, value: Value) {
        if let Some(old) = self.writes.insert(key, value.clone()) {
            self.buffered_bytes = self.buffered_bytes.saturating_sub(old.len());
        }
        self.buffered_bytes += value.len();
    }

    /// The buffered value for `key`, if the transaction has written it.
    pub fn buffered_value(&self, key: &Key) -> Option<Value> {
        self.writes.get(key).cloned()
    }

    /// Bytes of payload currently buffered (spilled data excluded).
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_bytes
    }

    /// The transaction's write set so far (buffered and spilled keys).
    pub fn write_set(&self) -> impl Iterator<Item = &Key> {
        self.writes.keys()
    }

    /// The storage items for all currently buffered writes, keyed by the
    /// transaction's version storage keys.
    pub fn storage_items(&self) -> Vec<(String, Value)> {
        self.writes
            .iter()
            .map(|(k, v)| (KeyVersion::new(k.clone(), self.id).storage_key(), v.clone()))
            .collect()
    }

    /// Marks every currently buffered key as spilled and returns the items to
    /// write; the buffered values are retained so read-your-writes and the
    /// final commit still see them.
    pub fn mark_spilled(&mut self) -> Vec<(String, Value)> {
        let items = self.storage_items();
        for key in self.writes.keys() {
            self.spilled.insert(key.clone());
        }
        self.buffered_bytes = 0;
        items
    }

    /// The storage keys of every version this transaction has (or may have)
    /// written to storage — used to clean up after an abort.
    pub fn spilled_storage_keys(&self) -> Vec<String> {
        self.spilled
            .iter()
            .map(|k| KeyVersion::new(k.clone(), self.id).storage_key())
            .collect()
    }
}

/// Default shard count for the in-flight transaction table.
pub const DEFAULT_TXN_SHARDS: usize = 16;

/// The Atomic Write Buffer: all in-flight transactions on one AFT node,
/// keyed by their UUID so that a retried function can continue a transaction
/// it started earlier (§3.3.1).
///
/// The table is sharded by transaction UUID: every per-transaction operation
/// (`begin` / `with_txn` / `take`) locks only the owning shard, so concurrent
/// client threads driving different transactions never serialise on one
/// global mutex. Whole-buffer queries (`len`, `any_reader_of`, `expired`)
/// visit every shard; they run off the hot path (GC sweeps, timeout sweeps,
/// test assertions).
#[derive(Debug)]
pub struct WriteBuffer {
    shards: Box<[Mutex<HashMap<Uuid, ActiveTransaction>>]>,
}

impl Default for WriteBuffer {
    fn default() -> Self {
        WriteBuffer::with_shards(DEFAULT_TXN_SHARDS)
    }
}

impl WriteBuffer {
    /// Creates an empty write buffer with the default shard count.
    pub fn new() -> Self {
        WriteBuffer::default()
    }

    /// Creates an empty write buffer with an explicit shard count (≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        WriteBuffer {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Number of shards in the transaction table.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, uuid: &Uuid) -> &Mutex<HashMap<Uuid, ActiveTransaction>> {
        // The UUID is already uniformly random; fold it instead of re-hashing.
        let folded = uuid.as_u128() as u64 ^ (uuid.as_u128() >> 64) as u64;
        &self.shards[folded as usize % self.shards.len()]
    }

    /// Registers a new in-flight transaction.
    pub fn begin(&self, id: TransactionId) {
        self.shard(&id.uuid)
            .lock()
            .insert(id.uuid, ActiveTransaction::new(id));
    }

    /// Runs `f` with mutable access to the transaction's in-flight state.
    pub fn with_txn<T>(
        &self,
        id: &TransactionId,
        f: impl FnOnce(&mut ActiveTransaction) -> T,
    ) -> AftResult<T> {
        let mut active = self.shard(&id.uuid).lock();
        let txn = active
            .get_mut(&id.uuid)
            .ok_or(AftError::UnknownTransaction(*id))?;
        Ok(f(txn))
    }

    /// Removes and returns the transaction's in-flight state (commit or
    /// abort takes ownership of it).
    pub fn take(&self, id: &TransactionId) -> AftResult<ActiveTransaction> {
        self.shard(&id.uuid)
            .lock()
            .remove(&id.uuid)
            .ok_or(AftError::UnknownTransaction(*id))
    }

    /// Returns true if the transaction is currently in flight.
    pub fn contains(&self, id: &TransactionId) -> bool {
        self.shard(&id.uuid).lock().contains_key(&id.uuid)
    }

    /// Number of in-flight transactions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns true if no transactions are in flight.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Returns true if any in-flight transaction has read a version written
    /// by `tid` — the local GC must not delete such metadata (§5.1).
    ///
    /// Shards are visited one at a time, so a transaction beginning on an
    /// already-visited shard mid-scan may be missed; that race existed with
    /// the single-lock table too (a transaction could begin right after the
    /// scan) and is benign — the GC only needs a point-in-time answer.
    pub fn any_reader_of(&self, tid: &TransactionId) -> bool {
        self.shards
            .iter()
            .any(|s| s.lock().values().any(|txn| txn.reads.reads_from(tid)))
    }

    /// The IDs of in-flight transactions older than `max_age`, which the node
    /// aborts on a timeout sweep (a failed function never calls abort; §3.3.1
    /// "its transaction will be aborted after a timeout").
    pub fn expired(&self, max_age: std::time::Duration) -> Vec<TransactionId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let active = shard.lock();
            out.extend(
                active
                    .values()
                    .filter(|txn| txn.started.elapsed() >= max_age)
                    .map(|txn| txn.id),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn tid(ts: u64, id: u128) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(id))
    }

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn buffered_writes_overwrite_and_track_bytes() {
        let mut txn = ActiveTransaction::new(tid(1, 1));
        txn.buffer_write(Key::new("k"), val("hello"));
        assert_eq!(txn.buffered_bytes(), 5);
        txn.buffer_write(Key::new("k"), val("hi"));
        assert_eq!(txn.buffered_bytes(), 2, "overwrites reclaim the old bytes");
        assert_eq!(txn.buffered_value(&Key::new("k")).unwrap(), val("hi"));
        assert!(txn.buffered_value(&Key::new("other")).is_none());
        assert_eq!(txn.write_set().count(), 1);
    }

    #[test]
    fn storage_items_use_version_storage_keys() {
        let mut txn = ActiveTransaction::new(tid(1, 0xabc));
        txn.buffer_write(Key::new("k"), val("v"));
        let items = txn.storage_items();
        assert_eq!(items.len(), 1);
        assert!(items[0].0.starts_with("data/k/"));
        assert!(items[0].0.ends_with(&format!("{}", Uuid::from_u128(0xabc))));
    }

    #[test]
    fn spill_retains_values_for_read_your_writes() {
        let mut txn = ActiveTransaction::new(tid(1, 1));
        txn.buffer_write(Key::new("a"), val("1"));
        txn.buffer_write(Key::new("b"), val("2"));
        let spilled = txn.mark_spilled();
        assert_eq!(spilled.len(), 2);
        assert_eq!(txn.buffered_bytes(), 0);
        assert_eq!(txn.spilled.len(), 2);
        // Values are still visible to the transaction itself.
        assert_eq!(txn.buffered_value(&Key::new("a")).unwrap(), val("1"));
        assert_eq!(txn.spilled_storage_keys().len(), 2);
    }

    #[test]
    fn write_buffer_lifecycle() {
        let buffer = WriteBuffer::new();
        let id = tid(10, 99);
        assert!(buffer.is_empty());
        buffer.begin(id);
        assert!(buffer.contains(&id));
        assert_eq!(buffer.len(), 1);

        buffer
            .with_txn(&id, |txn| txn.buffer_write(Key::new("k"), val("v")))
            .unwrap();
        let taken = buffer.take(&id).unwrap();
        assert_eq!(taken.writes.len(), 1);
        assert!(!buffer.contains(&id));
        assert!(matches!(
            buffer.take(&id),
            Err(AftError::UnknownTransaction(_))
        ));
    }

    #[test]
    fn unknown_transactions_are_rejected() {
        let buffer = WriteBuffer::new();
        let id = tid(1, 1);
        assert!(matches!(
            buffer.with_txn(&id, |_| ()),
            Err(AftError::UnknownTransaction(_))
        ));
    }

    #[test]
    fn any_reader_of_tracks_read_dependencies() {
        let buffer = WriteBuffer::new();
        let reader = tid(5, 5);
        let writer = tid(3, 3);
        buffer.begin(reader);
        assert!(!buffer.any_reader_of(&writer));
        buffer
            .with_txn(&reader, |txn| txn.reads.record(Key::new("k"), writer))
            .unwrap();
        assert!(buffer.any_reader_of(&writer));
        assert!(!buffer.any_reader_of(&tid(4, 4)));
    }

    #[test]
    fn expired_finds_old_transactions() {
        let buffer = WriteBuffer::new();
        let id = tid(1, 1);
        buffer.begin(id);
        assert!(buffer
            .expired(std::time::Duration::from_secs(60))
            .is_empty());
        let expired = buffer.expired(std::time::Duration::ZERO);
        assert_eq!(expired, vec![id]);
    }

    #[test]
    fn sharded_table_spreads_and_finds_transactions() {
        let buffer = WriteBuffer::with_shards(4);
        assert_eq!(buffer.shard_count(), 4);
        let ids: Vec<TransactionId> = (0..64).map(|i| tid(i, 0x1000 + i as u128)).collect();
        for id in &ids {
            buffer.begin(*id);
        }
        assert_eq!(buffer.len(), 64);
        for id in &ids {
            assert!(buffer.contains(id));
        }
        // Every shard should hold some of the 64 sequential UUIDs.
        let per_shard: Vec<usize> = (0..4)
            .map(|s| {
                ids.iter()
                    .filter(|id| {
                        let folded = id.uuid.as_u128() as u64 ^ (id.uuid.as_u128() >> 64) as u64;
                        folded as usize % 4 == s
                    })
                    .count()
            })
            .collect();
        assert!(per_shard.iter().all(|&n| n > 0), "shards: {per_shard:?}");
        for id in &ids {
            buffer.take(id).unwrap();
        }
        assert!(buffer.is_empty());
        // Zero shards clamps to one.
        assert_eq!(WriteBuffer::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn retried_function_can_continue_by_uuid() {
        // A retry carries the same transaction ID; the buffer keys state by
        // UUID so the retried function sees the buffered writes.
        let buffer = WriteBuffer::new();
        let id = tid(7, 42);
        buffer.begin(id);
        buffer
            .with_txn(&id, |txn| txn.buffer_write(Key::new("k"), val("v")))
            .unwrap();
        // The retry presents the same UUID (possibly with the same start
        // timestamp, as IDs are immutable until commit).
        let retry_id = TransactionId::new(7, Uuid::from_u128(42));
        let seen = buffer
            .with_txn(&retry_id, |txn| txn.buffered_value(&Key::new("k")))
            .unwrap();
        assert_eq!(seen.unwrap(), val("v"));
    }
}
