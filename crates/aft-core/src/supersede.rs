//! Transaction supersedence — Algorithm 2.
//!
//! A transaction `T_i` is *locally superseded* when, for every key `k` in its
//! write set, the node knows of a committed version of `k` newer than `i`
//! (§4.1). Superseded transactions:
//!
//! * are omitted from the commit-set multicast (they can never be the newest
//!   valid version anywhere the receiving node would need them for), and
//! * are candidates for local metadata garbage collection (§5.1) and, once
//!   every node agrees, for global data deletion (§5.2).
//!
//! Supersedence can be decided without coordination because key version sets
//! only grow monotonically: once every key has a newer committed version on
//! this node, that remains true forever.

use aft_types::TransactionRecord;

use crate::metadata::MetadataCache;

/// Algorithm 2: returns true if every key written by `record` has a committed
/// version newer than `record.id` in `metadata`.
///
/// A transaction with an empty write set (a read-only transaction) is
/// trivially superseded — it wrote nothing anyone could still need to read.
pub fn is_superseded(record: &TransactionRecord, metadata: &MetadataCache) -> bool {
    record
        .write_set
        .iter()
        .all(|key| metadata.has_newer_version(key, &record.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_types::{Key, TransactionId, Uuid};
    use std::sync::Arc;

    fn tid(ts: u64) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(ts as u128))
    }

    fn record(ts: u64, keys: &[&str]) -> Arc<TransactionRecord> {
        Arc::new(TransactionRecord::new(tid(ts), keys.iter().map(Key::new)))
    }

    #[test]
    fn not_superseded_when_it_is_the_latest_writer_of_any_key() {
        let cache = MetadataCache::new();
        let t1 = record(1, &["a", "b"]);
        let t2 = record(2, &["a"]);
        cache.insert(t1.clone());
        cache.insert(t2.clone());

        // "b" has no newer version, so T1 is not superseded.
        assert!(!is_superseded(&t1, &cache));
        // T2 is the latest writer of "a".
        assert!(!is_superseded(&t2, &cache));
    }

    #[test]
    fn superseded_when_every_key_has_a_newer_version() {
        let cache = MetadataCache::new();
        let t1 = record(1, &["a", "b"]);
        cache.insert(t1.clone());
        cache.insert(record(2, &["a"]));
        assert!(!is_superseded(&t1, &cache), "b still current");
        cache.insert(record(3, &["b"]));
        assert!(is_superseded(&t1, &cache));
    }

    #[test]
    fn read_only_transactions_are_trivially_superseded() {
        let cache = MetadataCache::new();
        let read_only = record(5, &[]);
        cache.insert(read_only.clone());
        assert!(is_superseded(&read_only, &cache));
    }

    #[test]
    fn supersedence_ignores_unknown_records_write_sets() {
        // A record received via multicast may be checked before it is merged
        // into the local cache; the check must work without the record being
        // present.
        let cache = MetadataCache::new();
        cache.insert(record(10, &["x"]));
        let older_remote = record(4, &["x"]);
        assert!(is_superseded(&older_remote, &cache));
        let newer_remote = record(20, &["x"]);
        assert!(!is_superseded(&newer_remote, &cache));
    }

    #[test]
    fn supersedence_is_monotonic() {
        // Once superseded, inserting more commits can never un-supersede.
        let cache = MetadataCache::new();
        let t1 = record(1, &["a"]);
        cache.insert(t1.clone());
        cache.insert(record(2, &["a"]));
        assert!(is_superseded(&t1, &cache));
        cache.insert(record(3, &["a", "b"]));
        cache.insert(record(4, &["c"]));
        assert!(is_superseded(&t1, &cache));
    }
}
