//! The AFT node: Table 1's transactional key-value API, the write-ordering
//! commit protocol (§3.3), and the glue between the read protocol, the write
//! buffer, and the caches.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aft_storage::checkpoint::{
    compact_log, publish_checkpoint, Checkpoint, CheckpointWriteOutcome, CompactionOutcome,
    CHECKPOINT_KEEP,
};
use aft_storage::io::{IoConfig, IoEngine, StorageRequest};
use aft_storage::latency::{LatencyMode, LatencyModel, LatencyProfile};
use aft_storage::SharedStorage;
use aft_types::codec::encode_commit_record;
use aft_types::{
    AftError, AftResult, Key, KeyVersion, SharedClock, SystemClock, TransactionId,
    TransactionRecord, Uuid, Value,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::commit_batcher::{BatchConfig, CommitBatcher};
use crate::data_cache::DataCache;
use crate::gc::{GcOutcome, LocalGcConfig};
use crate::metadata::MetadataCache;
use crate::read::{select_version, VersionChoice};
use crate::stats::NodeStats;
use crate::supersede::is_superseded;
use crate::write_buffer::WriteBuffer;

// The commit-phase vocabulary moved to `aft-types` so the unified chaos
// layer can plan node kills against the same phases the node's commit path
// announces; re-exported here because this is where callers found it.
pub use aft_types::CommitPhase;

/// A hook called at every [`CommitPhase`] of every commit on a node.
///
/// Returning an error simulates the node crashing at that instant: the
/// commit call fails with the probe's error, the transaction's in-memory
/// state is already gone (a real crash loses the write buffer), and
/// whatever reached storage before the phase stays there — which is the
/// whole point. Chaos controllers install these via
/// [`AftNode::install_commit_probe`] to kill nodes mid-commit at precise,
/// reproducible points.
pub trait CommitProbe: Send + Sync {
    /// Called immediately before `phase` executes for transaction `txid` on
    /// `node_id`. `Ok(())` lets the commit proceed; `Err` crashes it.
    fn before_phase(
        &self,
        node_id: &str,
        txid: &TransactionId,
        phase: CommitPhase,
    ) -> AftResult<()>;
}

/// When a node takes background checkpoints of its committed-version index.
///
/// A checkpoint round snapshots the metadata cache to storage (chunked,
/// CRC-sealed, published checkpoint-then-pointer — see
/// [`aft_storage::checkpoint`]) so a replacement node can bootstrap from
/// checkpoint + tail instead of replaying the whole Transaction Commit Set.
/// Both triggers may be combined; whichever fires first wins. The default is
/// disabled — checkpointing is a cluster-level duty, opted into per
/// deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many commits on the node since the last round;
    /// `0` disables the commit-count trigger.
    pub every_commits: u64,
    /// Checkpoint after this much clock time since the last round;
    /// `Duration::ZERO` disables the time trigger.
    pub every_duration: Duration,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

impl CheckpointPolicy {
    /// No checkpointing at all.
    pub const fn disabled() -> Self {
        CheckpointPolicy {
            every_commits: 0,
            every_duration: Duration::ZERO,
        }
    }

    /// Checkpoint every `n` commits (`n` clamped to ≥ 1).
    pub fn every_commits(n: u64) -> Self {
        CheckpointPolicy {
            every_commits: n.max(1),
            every_duration: Duration::ZERO,
        }
    }

    /// Checkpoint every `period` of clock time.
    pub fn every_duration(period: Duration) -> Self {
        CheckpointPolicy {
            every_commits: 0,
            every_duration: period,
        }
    }

    /// True if either trigger is armed.
    pub fn is_enabled(&self) -> bool {
        self.every_commits > 0 || !self.every_duration.is_zero()
    }
}

/// An optional [`CommitProbe`] consulted *during bootstrap* (at
/// [`CommitPhase::DuringCheckpointBootstrap`]), carried inside [`NodeConfig`]
/// because bootstrap runs at construction — before
/// [`AftNode::install_commit_probe`] could ever be called. Opaque to `Debug`
/// so `NodeConfig` stays derivable.
#[derive(Clone, Default)]
pub struct BootstrapProbe(Option<Arc<dyn CommitProbe>>);

impl BootstrapProbe {
    /// No probe: bootstrap runs uninstrumented.
    pub fn none() -> Self {
        BootstrapProbe(None)
    }

    /// Installs `probe` for the bootstrap phase.
    pub fn new(probe: Arc<dyn CommitProbe>) -> Self {
        BootstrapProbe(Some(probe))
    }

    /// The installed probe, if any.
    pub fn get(&self) -> Option<&Arc<dyn CommitProbe>> {
        self.0.as_ref()
    }
}

impl std::fmt::Debug for BootstrapProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "BootstrapProbe(installed)"
        } else {
            "BootstrapProbe(none)"
        })
    }
}

/// What one node-level checkpoint round did.
#[derive(Debug, Clone, Copy)]
pub struct NodeCheckpointOutcome {
    /// The checkpoint publication itself.
    pub write: CheckpointWriteOutcome,
    /// The compaction behind it, when the caller enabled it.
    pub compaction: Option<CompactionOutcome>,
}

/// Configuration of a single AFT node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Human-readable node identifier (used in cluster membership and logs).
    pub node_id: String,
    /// Capacity of the data cache in bytes; 0 disables data caching (§6.2
    /// evaluates both settings).
    pub data_cache_bytes: usize,
    /// Spill threshold of the Atomic Write Buffer: once a single
    /// transaction's buffered bytes exceed this, intermediary data is written
    /// to storage ahead of commit (§3.3).
    pub write_buffer_spill_bytes: usize,
    /// In-flight transactions older than this are aborted by
    /// [`AftNode::abort_expired`] (§3.3.1: "aborted after a timeout").
    pub transaction_timeout: Duration,
    /// Whether to warm the metadata cache from the Transaction Commit Set at
    /// startup (§3.1); replacement nodes in a cluster always do.
    pub bootstrap: bool,
    /// How many of the most recent commit records to load when
    /// bootstrapping.
    pub bootstrap_limit: usize,
    /// Latency of one client→shim API call (the network hop that is part of
    /// AFT's overhead in Figure 2); zero for unit tests.
    pub rpc_profile: LatencyProfile,
    /// Whether simulated latencies sleep or are merely recorded.
    pub latency_mode: LatencyMode,
    /// Global latency scale factor shared with the storage simulators.
    pub latency_scale: f64,
    /// Seed for the node's RNG (transaction UUIDs, latency sampling).
    pub rng_seed: u64,
    /// Group-commit tuning: how many concurrently arriving commits may be
    /// coalesced into one storage flush, and how long a flush may wait for
    /// company. The default adds no latency for uncontended clients.
    pub commit_batch: BatchConfig,
    /// Tuning of the node's pipelined storage I/O engine (worker count,
    /// in-flight window, timer-wheel resolution). `IoConfig::sequential()`
    /// reproduces the historical one-round-trip-at-a-time behaviour.
    pub io: IoConfig,
    /// Background checkpoint policy; disabled by default. When enabled, the
    /// maintenance driver (cluster layer or the application) calls
    /// [`AftNode::maybe_checkpoint`] periodically and the policy decides
    /// whether a round is due.
    pub checkpoint: CheckpointPolicy,
    /// Optional probe consulted at the checkpoint-bootstrap phase; chaos
    /// controllers use it to kill a replacement node mid-bootstrap.
    pub bootstrap_probe: BootstrapProbe,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            node_id: "aft-node-0".to_owned(),
            data_cache_bytes: 64 * 1024 * 1024,
            write_buffer_spill_bytes: 16 * 1024 * 1024,
            transaction_timeout: Duration::from_secs(30),
            bootstrap: true,
            bootstrap_limit: 100_000,
            rpc_profile: LatencyProfile::ZERO,
            latency_mode: LatencyMode::Virtual,
            latency_scale: 0.0,
            rng_seed: 0xAF71,
            commit_batch: BatchConfig::default(),
            io: IoConfig::pipelined(),
            checkpoint: CheckpointPolicy::disabled(),
            bootstrap_probe: BootstrapProbe::none(),
        }
    }
}

impl NodeConfig {
    /// A zero-latency configuration for unit tests, with caching enabled.
    pub fn test() -> Self {
        NodeConfig::default()
    }

    /// A zero-latency test configuration without a data cache.
    pub fn test_without_cache() -> Self {
        NodeConfig {
            data_cache_bytes: 0,
            ..NodeConfig::default()
        }
    }

    /// Sets the node identifier.
    pub fn with_node_id(mut self, id: impl Into<String>) -> Self {
        self.node_id = id.into();
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the group-commit tuning.
    pub fn with_commit_batch(mut self, commit_batch: BatchConfig) -> Self {
        self.commit_batch = commit_batch;
        self
    }

    /// Sets the I/O engine tuning.
    pub fn with_io(mut self, io: IoConfig) -> Self {
        self.io = io;
        self
    }

    /// Sets the background checkpoint policy.
    pub fn with_checkpoint(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.checkpoint = checkpoint;
        self
    }

    /// Installs a bootstrap-phase probe.
    pub fn with_bootstrap_probe(mut self, probe: Arc<dyn CommitProbe>) -> Self {
        self.bootstrap_probe = BootstrapProbe::new(probe);
        self
    }

    /// Configures the simulated client→shim RPC hop used by the benchmark
    /// harness (median/p99 in microseconds at full scale).
    pub fn with_rpc_latency(
        mut self,
        profile: LatencyProfile,
        mode: LatencyMode,
        scale: f64,
    ) -> Self {
        self.rpc_profile = profile;
        self.latency_mode = mode;
        self.latency_scale = scale;
        self
    }
}

/// A single AFT shim node.
///
/// All methods take `&self`; a node is shared across many client threads
/// (each FaaS function invocation issues its operations against one node).
pub struct AftNode {
    config: NodeConfig,
    storage: SharedStorage,
    /// The pipelined submission/completion engine every storage access on
    /// this node goes through (commit flushes, read fetches, spills).
    io: IoEngine,
    clock: SharedClock,
    buffer: WriteBuffer,
    batcher: CommitBatcher,
    metadata: MetadataCache,
    data_cache: DataCache,
    stats: Arc<NodeStats>,
    rpc_latency: Arc<LatencyModel>,
    rng: Mutex<StdRng>,
    /// Commits made on this node since the last multicast drain (§4).
    recent_commits: Mutex<Vec<Arc<TransactionRecord>>>,
    /// Transactions whose metadata this node has locally garbage collected;
    /// reported to the global GC (§5.2).
    locally_deleted: Mutex<HashSet<TransactionId>>,
    /// Chaos hook: when installed, every commit runs the unbatched protocol
    /// with a probe call before each [`CommitPhase`].
    commit_probe: Mutex<Option<Arc<dyn CommitProbe>>>,
    /// Commits on this node since the last checkpoint round.
    checkpoint_commits: AtomicU64,
    /// The last checkpoint round's id and clock time.
    checkpoint_last: Mutex<CheckpointTracker>,
}

#[derive(Debug, Default, Clone, Copy)]
struct CheckpointTracker {
    id: u64,
    at_ms: u64,
}

impl AftNode {
    /// Creates a node over `storage` using the real system clock.
    pub fn new(config: NodeConfig, storage: SharedStorage) -> AftResult<Arc<Self>> {
        Self::with_clock(config, storage, SystemClock::shared())
    }

    /// Creates a node with an explicit clock (tests use [`aft_types::MockClock`]).
    pub fn with_clock(
        config: NodeConfig,
        storage: SharedStorage,
        clock: SharedClock,
    ) -> AftResult<Arc<Self>> {
        let io = IoEngine::new(storage.clone(), config.io);
        let metadata = MetadataCache::new();
        if config.bootstrap {
            // Checkpoint-aware warm-up: latest valid checkpoint plus the
            // commit-set tail behind it; degenerates to full replay when no
            // checkpoint exists.
            crate::bootstrap::warm_metadata_cache_checkpointed(
                &io,
                &metadata,
                config.bootstrap_limit,
                &config.node_id,
                config.bootstrap_probe.get(),
            )?;
        }
        let rpc_latency = LatencyModel::new(config.latency_mode, config.latency_scale);
        let checkpoint_last = CheckpointTracker {
            id: 0,
            at_ms: clock.now(),
        };
        Ok(Arc::new(AftNode {
            data_cache: DataCache::new(config.data_cache_bytes),
            buffer: WriteBuffer::new(),
            batcher: CommitBatcher::new(config.commit_batch),
            stats: NodeStats::new_shared(),
            rng: Mutex::new(StdRng::seed_from_u64(config.rng_seed)),
            recent_commits: Mutex::new(Vec::new()),
            locally_deleted: Mutex::new(HashSet::new()),
            commit_probe: Mutex::new(None),
            checkpoint_commits: AtomicU64::new(0),
            checkpoint_last: Mutex::new(checkpoint_last),
            rpc_latency,
            metadata,
            io,
            storage,
            clock,
            config,
        }))
    }

    /// The node's identifier.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// The node's operational counters.
    pub fn stats(&self) -> &Arc<NodeStats> {
        &self.stats
    }

    /// The storage engine this node commits to.
    pub fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    /// The node's pipelined storage I/O engine.
    pub fn io(&self) -> &IoEngine {
        &self.io
    }

    /// The node's committed-transaction metadata cache.
    pub fn metadata(&self) -> &MetadataCache {
        &self.metadata
    }

    /// The node's data cache.
    pub fn data_cache(&self) -> &DataCache {
        &self.data_cache
    }

    /// Number of transactions currently in flight on this node.
    pub fn in_flight(&self) -> usize {
        self.buffer.len()
    }

    /// Group-commit counters: commits submitted, storage flushes performed,
    /// and the largest coalesced batch.
    pub fn commit_batch_stats(&self) -> crate::commit_batcher::BatchStats {
        self.batcher.stats()
    }

    /// Installs a commit-phase probe (replacing any present). While a probe
    /// is installed, commits bypass the group-commit batcher and run the
    /// unbatched protocol so every phase boundary is a precise, per-
    /// transaction injection point.
    pub fn install_commit_probe(&self, probe: Arc<dyn CommitProbe>) {
        *self.commit_probe.lock() = Some(probe);
    }

    /// Removes the commit-phase probe, restoring the batched commit path.
    pub fn clear_commit_probe(&self) {
        *self.commit_probe.lock() = None;
    }

    fn rpc(&self) {
        if self.config.rpc_profile.median_us > 0.0 {
            // Sample under the RNG lock, sleep outside it — concurrent client
            // requests to the same node must not serialise on the sampler.
            self.rpc_latency
                .apply_with(&self.config.rpc_profile, &self.rng, 0);
        }
    }

    // ------------------------------------------------------------------
    // Table 1 API
    // ------------------------------------------------------------------

    /// `StartTransaction()`: begins a new transaction and returns its ID.
    ///
    /// The ID carries the start timestamp and a fresh UUID; the *commit*
    /// timestamp is assigned later, in [`commit`](AftNode::commit) (§3.1).
    pub fn start_transaction(&self) -> TransactionId {
        self.rpc();
        let uuid = {
            let mut rng = self.rng.lock();
            Uuid::from_rng(&mut *rng)
        };
        let id = TransactionId::new(self.clock.now(), uuid);
        self.buffer.begin(id);
        self.stats.record_started();
        id
    }

    /// Re-registers a transaction ID on this node, used when a retried
    /// function continues a transaction whose state was lost (§3.3.1). If the
    /// transaction is still in flight this is a no-op.
    pub fn ensure_transaction(&self, id: TransactionId) {
        if !self.buffer.contains(&id) {
            self.buffer.begin(id);
            self.stats.record_started();
        }
    }

    /// `Get(txid, key)`: reads `key` in the context of transaction `txid`.
    ///
    /// Returns `Ok(None)` when the key has no visible version (the NULL
    /// version of §3.2) and `Err(AftError::NoValidVersion)` when versions
    /// exist but none is compatible with the transaction's read set (§3.6) —
    /// the caller should abort and retry the logical request.
    pub fn get(&self, txid: &TransactionId, key: &Key) -> AftResult<Option<Value>> {
        Ok(self.get_versioned(txid, key)?.map(|(value, _)| value))
    }

    /// Like [`get`](AftNode::get), but also reports which committed
    /// transaction wrote the returned version (`None` when the value came
    /// from the transaction's own write buffer).
    ///
    /// Key versions are normally hidden from clients (§3.2); this variant
    /// exists for the evaluation harness, which uses the true version IDs to
    /// verify that observed read sets really are Atomic Readsets.
    pub fn get_versioned(
        &self,
        txid: &TransactionId,
        key: &Key,
    ) -> AftResult<Option<(Value, Option<TransactionId>)>> {
        self.rpc();
        self.stats.record_read();

        // Read-your-writes (§3.5): buffered writes win and bypass Algorithm 1.
        let buffered = self.buffer.with_txn(txid, |txn| txn.buffered_value(key))?;
        if let Some(value) = buffered {
            self.stats.record_read_from_write_buffer();
            return Ok(Some((value, None)));
        }

        // Algorithm 1 over the local committed-transaction metadata.
        let choice = self
            .buffer
            .with_txn(txid, |txn| select_version(key, &txn.reads, &self.metadata))?;
        let target = match choice {
            VersionChoice::NotFound => {
                self.stats.record_null_read();
                return Ok(None);
            }
            VersionChoice::NoValidVersion => {
                self.stats.record_no_valid_version();
                return Err(AftError::NoValidVersion {
                    key: key.clone(),
                    txn: *txid,
                });
            }
            VersionChoice::Version(tid) => tid,
        };

        // Fetch the payload: data cache first, then storage (through the I/O
        // engine, so the charged latency is observable in virtual mode).
        let storage_key = KeyVersion::new(key.clone(), target).storage_key();
        let value = match self.data_cache.get(&storage_key) {
            Some(value) => {
                self.stats.record_read_from_data_cache();
                value
            }
            None => {
                let outcome = self.io.execute(StorageRequest::Get(storage_key.clone()));
                self.stats.read_storage_latency().record(outcome.cost);
                match outcome.result?.into_value() {
                    Some(value) => {
                        self.stats.record_read_from_storage();
                        self.data_cache.insert(&storage_key, value.clone());
                        value
                    }
                    None => {
                        // The version's data was deleted underneath us (global
                        // GC racing a long transaction, §5.2.1). Treat it like
                        // a missing valid version so the client retries.
                        self.stats.record_no_valid_version();
                        return Err(AftError::NoValidVersion {
                            key: key.clone(),
                            txn: *txid,
                        });
                    }
                }
            }
        };

        // Extend the read set only after the read has definitely succeeded.
        self.buffer
            .with_txn(txid, |txn| txn.reads.record(key.clone(), target))?;
        Ok(Some((value, Some(target))))
    }

    /// Reads several keys in one request, overlapping the storage fetches.
    ///
    /// Algorithm 1 itself stays sequential — each key's version selection
    /// must see the versions already chosen for the keys before it, so the
    /// combined read set remains an Atomic Readset — but it is pure
    /// in-memory work. The expensive part, fetching the chosen versions'
    /// payloads on data-cache misses, is submitted as one batch to the I/O
    /// engine and barriered: the fallback round trips overlap instead of
    /// summing.
    ///
    /// Chosen versions are recorded into the read set at selection time
    /// (before the payload fetch). If a fetch then fails (global GC racing a
    /// long transaction, §5.2.1) the whole call returns
    /// [`AftError::NoValidVersion`] and the client aborts; until then the
    /// extra read-set entries only make later selections *more*
    /// conservative, never unsound.
    pub fn get_all(&self, txid: &TransactionId, keys: &[Key]) -> AftResult<Vec<Option<Value>>> {
        self.rpc();
        let mut out: Vec<Option<Value>> = vec![None; keys.len()];
        // (output index, storage key) pairs that need a storage fetch.
        let mut fetches: Vec<(usize, String)> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            self.stats.record_read();

            // Read-your-writes (§3.5): buffered writes bypass Algorithm 1.
            let buffered = self.buffer.with_txn(txid, |txn| txn.buffered_value(key))?;
            if let Some(value) = buffered {
                self.stats.record_read_from_write_buffer();
                out[i] = Some(value);
                continue;
            }

            let choice = self
                .buffer
                .with_txn(txid, |txn| select_version(key, &txn.reads, &self.metadata))?;
            let target = match choice {
                VersionChoice::NotFound => {
                    self.stats.record_null_read();
                    continue;
                }
                VersionChoice::NoValidVersion => {
                    self.stats.record_no_valid_version();
                    return Err(AftError::NoValidVersion {
                        key: key.clone(),
                        txn: *txid,
                    });
                }
                VersionChoice::Version(tid) => tid,
            };
            // Record the choice now so the next key's selection sees it.
            self.buffer
                .with_txn(txid, |txn| txn.reads.record(key.clone(), target))?;

            let storage_key = KeyVersion::new(key.clone(), target).storage_key();
            if let Some(value) = self.data_cache.get(&storage_key) {
                self.stats.record_read_from_data_cache();
                out[i] = Some(value);
            } else {
                fetches.push((i, storage_key));
            }
        }

        if fetches.is_empty() {
            return Ok(out);
        }

        // One overlapped fetch barrier for every cache miss.
        let set = self
            .io
            .get_all(fetches.iter().map(|(_, skey)| skey.clone()));
        let outcome = set.wait_all();
        self.stats.read_storage_latency().record(outcome.cost);
        for ((i, storage_key), result) in fetches.into_iter().zip(outcome.results) {
            match result?.into_value() {
                Some(value) => {
                    self.stats.record_read_from_storage();
                    self.data_cache.insert(&storage_key, value.clone());
                    out[i] = Some(value);
                }
                None => {
                    // Deleted underneath us (§5.2.1): retry like a single get.
                    self.stats.record_no_valid_version();
                    return Err(AftError::NoValidVersion {
                        key: keys[i].clone(),
                        txn: *txid,
                    });
                }
            }
        }
        Ok(out)
    }

    /// `Put(txid, key, value)`: buffers an update for transaction `txid`.
    pub fn put(&self, txid: &TransactionId, key: Key, value: Value) -> AftResult<()> {
        self.rpc();
        self.stats.record_write();
        let spill = self.buffer.with_txn(txid, |txn| {
            txn.buffer_write(key, value);
            if txn.buffered_bytes() >= self.config.write_buffer_spill_bytes {
                Some(txn.mark_spilled())
            } else {
                None
            }
        })?;
        // A saturated write buffer proactively writes intermediary data; the
        // data stays invisible because no commit record references it yet
        // (§3.3). Performed outside the buffer lock, with the round trips
        // overlapped by the I/O engine.
        if let Some(items) = spill {
            self.io.put_all(items)?;
        }
        Ok(())
    }

    /// Buffers several updates with a single client→shim request (the
    /// "AFT Batch" configuration of Figure 2).
    pub fn put_all(
        &self,
        txid: &TransactionId,
        items: impl IntoIterator<Item = (Key, Value)>,
    ) -> AftResult<()> {
        self.rpc();
        let spill = self.buffer.with_txn(txid, |txn| {
            for (key, value) in items {
                self.stats.record_write();
                txn.buffer_write(key, value);
            }
            if txn.buffered_bytes() >= self.config.write_buffer_spill_bytes {
                Some(txn.mark_spilled())
            } else {
                None
            }
        })?;
        if let Some(items) = spill {
            self.io.put_all(items)?;
        }
        Ok(())
    }

    /// `CommitTransaction(txid)`: persists the transaction's updates and its
    /// commit record, makes them visible, and returns the final transaction
    /// ID (with the commit timestamp).
    ///
    /// The ordering is the write-ordering protocol of §3.3: data first, then
    /// the commit record, then (and only then) local visibility. The call
    /// returns only after both are durable in storage.
    pub fn commit(&self, txid: &TransactionId) -> AftResult<TransactionId> {
        self.rpc();
        let txn = self.buffer.take(txid)?;

        // Assign the commit timestamp from the local clock (§3.1).
        let final_id = TransactionId::new(self.clock.now(), txid.uuid);

        // 1. Persist the transaction's key versions (one storage key per
        //    version, so concurrent committers never interfere).
        let items = {
            let mut txn = txn;
            txn.id = final_id;
            txn.storage_items()
        };
        let write_set: Vec<Key> = items
            .iter()
            .map(|(storage_key, _)| {
                KeyVersion::parse_storage_key(storage_key)
                    .map(|(key, _)| key)
                    .expect("storage keys we just built are well-formed")
            })
            .collect();
        let cached_values: Vec<(String, Value)> = items.clone();

        // 2. Persist the data and then the commit record, possibly coalesced
        //    with concurrently arriving commits (group commit), through the
        //    pipelined I/O engine: every member's data puts are submitted
        //    concurrently, the flush barriers on their completions (§3.3's
        //    data-before-record ordering), then the records are appended.
        //    The batcher returns only once *this* transaction's record is
        //    durable, reporting the flush's charged storage latency.
        //    An installed commit probe instead takes the unbatched path so a
        //    chaos controller can crash this node at exact phase boundaries.
        let record = TransactionRecord::new(final_id, write_set);
        let probe = self.commit_probe.lock().clone();
        let flush_cost = match probe {
            Some(probe) => self.commit_probed(&probe, &final_id, items, &record)?,
            None => self.batcher.submit(
                &self.io,
                items,
                record.storage_key(),
                encode_commit_record(&record),
            )?,
        };
        self.stats.commit_storage_latency().record(flush_cost);

        // 3. Only now make the transaction visible to other requests.
        let record = Arc::new(record);
        self.metadata.insert(Arc::clone(&record));
        for (storage_key, value) in cached_values {
            self.data_cache.insert(&storage_key, value);
        }
        self.recent_commits.lock().push(record);
        self.stats.record_committed();
        self.checkpoint_commits.fetch_add(1, Ordering::Relaxed);
        Ok(final_id)
    }

    /// The unbatched commit flush with a probe call before every phase: the
    /// data barrier, the record append, and visibility (§3.3's ordering is
    /// identical to the batched path; only coalescing is given up). A probe
    /// error at any phase propagates as the node's "crash", leaving exactly
    /// the storage state the protocol had reached by that point.
    fn commit_probed(
        &self,
        probe: &Arc<dyn CommitProbe>,
        final_id: &TransactionId,
        items: Vec<(String, Value)>,
        record: &TransactionRecord,
    ) -> AftResult<Duration> {
        probe.before_phase(self.node_id(), final_id, CommitPhase::BeforeDataPut)?;
        let mut cost = Duration::ZERO;
        if !items.is_empty() {
            cost += self.io.put_all(items)?;
        }
        probe.before_phase(self.node_id(), final_id, CommitPhase::BeforeRecordAppend)?;
        let outcome = self.io.execute(StorageRequest::Put(
            record.storage_key(),
            encode_commit_record(record),
        ));
        cost += outcome.result.map(|_| outcome.cost)?;
        probe.before_phase(self.node_id(), final_id, CommitPhase::BeforeBroadcast)?;
        Ok(cost)
    }

    /// `AbortTransaction(txid)`: discards the transaction's buffered updates.
    ///
    /// Spilled intermediary data (never visible) is deleted eagerly.
    pub fn abort(&self, txid: &TransactionId) -> AftResult<()> {
        self.rpc();
        let txn = self.buffer.take(txid)?;
        let spilled = txn.spilled_storage_keys();
        if !spilled.is_empty() {
            self.io
                .execute(StorageRequest::DeleteBatch(spilled))
                .result?;
        }
        self.stats.record_aborted();
        Ok(())
    }

    /// Aborts every in-flight transaction older than the configured timeout;
    /// returns the aborted IDs. Driven periodically by cluster deployments.
    pub fn abort_expired(&self) -> Vec<TransactionId> {
        let expired = self.buffer.expired(self.config.transaction_timeout);
        let mut aborted = Vec::new();
        for id in expired {
            if self.abort(&id).is_ok() {
                aborted.push(id);
            }
        }
        aborted
    }

    // ------------------------------------------------------------------
    // Cluster hooks: multicast, fault manager, garbage collection
    // ------------------------------------------------------------------

    /// Drains the commits made on this node since the last drain. The
    /// cluster's multicast thread calls this every broadcast period (§4);
    /// supersedence pruning (§4.1) is applied by the caller so that the fault
    /// manager can still receive the unpruned stream (§4.2).
    pub fn drain_recent_commits(&self) -> Vec<Arc<TransactionRecord>> {
        std::mem::take(&mut *self.recent_commits.lock())
    }

    /// Merges one commit record learned from a peer (dissemination relay,
    /// gossip push, or the fault manager) into the local metadata cache.
    ///
    /// Returns `true` only when the record was *new* to this node — already
    /// superseded or already-known records are deduplicated (counted in
    /// `duplicate_peer_commits`) instead of re-applied, which is what makes
    /// redundant delivery paths (gossip fanout, the fault-manager firehose)
    /// idempotent. Fresh records charge the commit-timestamp → now gap to the
    /// `propagation_lag` recorder (§4.2 RYW-staleness window).
    pub fn receive_peer_commit(&self, record: &Arc<TransactionRecord>) -> bool {
        if is_superseded(record, &self.metadata) {
            self.stats.record_duplicate_peer_commit();
            return false;
        }
        let lag_ms = self.clock.now().saturating_sub(record.id.timestamp);
        if self.metadata.insert(Arc::clone(record)) {
            self.stats.record_peer_commit();
            self.stats
                .propagation_lag()
                .record(Duration::from_millis(lag_ms));
            true
        } else {
            self.stats.record_duplicate_peer_commit();
            false
        }
    }

    /// Merges commit records learned from peers (multicast) or from the fault
    /// manager into the local metadata cache; returns how many were new.
    /// Records that are already superseded locally are skipped entirely
    /// (§4.1), and re-deliveries dedup instead of re-applying.
    pub fn receive_peer_commits(
        &self,
        records: impl IntoIterator<Item = Arc<TransactionRecord>>,
    ) -> usize {
        records
            .into_iter()
            .filter(|record| self.receive_peer_commit(record))
            .count()
    }

    /// Runs one local metadata GC sweep (§5.1): removes superseded
    /// transactions that no running transaction has read from, evicts their
    /// cached data, and remembers them for the global GC protocol.
    pub fn run_local_gc(&self, config: &LocalGcConfig) -> GcOutcome {
        let mut outcome = GcOutcome::default();
        let now_ms = self.clock.now();
        let min_age_ms = config.min_age.as_millis() as u64;
        for record in self.metadata.records_oldest_first() {
            if outcome.deleted >= config.max_deletions_per_sweep {
                break;
            }
            outcome.examined += 1;
            if now_ms.saturating_sub(record.id.timestamp) < min_age_ms {
                // Too young; and since records are visited oldest-first, every
                // later record is younger still.
                break;
            }
            if !is_superseded(&record, &self.metadata) {
                continue;
            }
            if self.buffer.any_reader_of(&record.id) {
                outcome.retained_for_readers += 1;
                continue;
            }
            if self.metadata.remove(&record.id).is_some() {
                for kv in record.key_versions() {
                    self.data_cache.evict(&kv.storage_key());
                }
                self.locally_deleted.lock().insert(record.id);
                self.stats.record_gc_deleted();
                outcome.deleted += 1;
            }
        }
        outcome
    }

    /// The node's checkpoint policy.
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        self.config.checkpoint
    }

    /// Runs a checkpoint round if the configured [`CheckpointPolicy`] says
    /// one is due (called periodically by the maintenance driver). Returns
    /// `Ok(None)` when no round was due or the policy is disabled.
    ///
    /// `compact` additionally compacts the commit log behind the new
    /// checkpoint; the cluster layer only enables it when no recovery is in
    /// flight, so compaction never removes records a bootstrapping
    /// replacement still needs.
    pub fn maybe_checkpoint(&self, compact: bool) -> AftResult<Option<NodeCheckpointOutcome>> {
        let policy = self.config.checkpoint;
        if !policy.is_enabled() || self.metadata.is_empty() {
            return Ok(None);
        }
        let now = self.clock.now();
        let due = {
            let last = self.checkpoint_last.lock();
            let commits = self.checkpoint_commits.load(Ordering::Relaxed);
            (policy.every_commits > 0 && commits >= policy.every_commits)
                || (!policy.every_duration.is_zero()
                    && now.saturating_sub(last.at_ms) >= policy.every_duration.as_millis() as u64)
        };
        if !due {
            return Ok(None);
        }
        self.checkpoint_now(compact).map(Some)
    }

    /// Takes a checkpoint of the committed-version index right now,
    /// regardless of policy: snapshots the metadata cache and publishes it
    /// through the I/O engine (pipelined chunk writes, then the manifest).
    ///
    /// An installed commit probe is consulted at
    /// [`CommitPhase::DuringCheckpointWrite`] — after the chunks are durable,
    /// before the manifest — so a chaos kill there leaves a torn (and
    /// therefore invisible) checkpoint.
    pub fn checkpoint_now(&self, compact: bool) -> AftResult<NodeCheckpointOutcome> {
        let records: Vec<TransactionRecord> = self
            .metadata
            .all_records()
            .iter()
            .map(|r| (**r).clone())
            .collect();
        // Monotonic id: clock milliseconds disambiguated by a node hash in
        // the low bits, never reusing or going below a previous id.
        let id = {
            let last = self.checkpoint_last.lock();
            let candidate = (self.clock.now() << 10) | (fnv1a(self.node_id().as_bytes()) & 0x3FF);
            candidate.max(last.id + 1)
        };
        let checkpoint = Checkpoint::new(id, records);
        let probe = self.commit_probe.lock().clone();
        let sentinel = TransactionId::new(id, Uuid::NIL);
        let write = publish_checkpoint(&self.io, &checkpoint, || {
            if let Some(probe) = &probe {
                probe.before_phase(
                    self.node_id(),
                    &sentinel,
                    CommitPhase::DuringCheckpointWrite,
                )?;
            }
            Ok(())
        })?;
        {
            let mut last = self.checkpoint_last.lock();
            last.id = id;
            last.at_ms = self.clock.now();
        }
        self.checkpoint_commits.store(0, Ordering::Relaxed);
        let compaction = if compact {
            Some(compact_log(&self.io, &checkpoint, CHECKPOINT_KEEP)?)
        } else {
            None
        };
        Ok(NodeCheckpointOutcome { write, compaction })
    }

    /// The set of transactions this node has locally garbage collected; the
    /// global GC deletes a transaction's data only once *every* node reports
    /// it here (§5.2).
    pub fn locally_deleted(&self) -> HashSet<TransactionId> {
        self.locally_deleted.lock().clone()
    }

    /// Returns true if this node has locally garbage collected `id`.
    pub fn has_locally_deleted(&self, id: &TransactionId) -> bool {
        self.locally_deleted.lock().contains(id)
    }

    /// Forgets globally deleted transactions from the local tombstone set
    /// (called by the global GC after it has deleted their data).
    pub fn forget_deleted(&self, ids: &[TransactionId]) {
        let mut deleted = self.locally_deleted.lock();
        for id in ids {
            deleted.remove(id);
        }
    }

    /// Convenience wrapper binding a transaction to this node.
    pub fn transaction(self: &Arc<Self>) -> TransactionHandle {
        TransactionHandle::begin(Arc::clone(self))
    }
}

/// FNV-1a over `bytes`; disambiguates concurrent checkpointers' ids.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A convenience handle pairing an [`AftNode`] with one transaction ID.
///
/// Examples and application code read more naturally with a handle; the
/// underlying node API is unchanged (and is what the FaaS layer uses, since a
/// transaction handle cannot cross function boundaries — only the ID can).
pub struct TransactionHandle {
    node: Arc<AftNode>,
    id: TransactionId,
    finished: bool,
}

impl TransactionHandle {
    /// Starts a new transaction on `node`.
    pub fn begin(node: Arc<AftNode>) -> Self {
        let id = node.start_transaction();
        TransactionHandle {
            node,
            id,
            finished: false,
        }
    }

    /// The transaction's ID (pass it to the next function in a composition).
    pub fn id(&self) -> TransactionId {
        self.id
    }

    /// Reads `key` within this transaction.
    pub fn get(&self, key: impl Into<Key>) -> AftResult<Option<Value>> {
        self.node.get(&self.id, &key.into())
    }

    /// Reads several keys within this transaction, overlapping the storage
    /// fetches (see [`AftNode::get_all`]).
    pub fn get_all(&self, keys: &[Key]) -> AftResult<Vec<Option<Value>>> {
        self.node.get_all(&self.id, keys)
    }

    /// Writes `key` within this transaction.
    pub fn put(&self, key: impl Into<Key>, value: impl Into<Value>) -> AftResult<()> {
        self.node.put(&self.id, key.into(), value.into())
    }

    /// Commits the transaction and returns its final ID.
    pub fn commit(mut self) -> AftResult<TransactionId> {
        self.finished = true;
        self.node.commit(&self.id)
    }

    /// Aborts the transaction.
    pub fn abort(mut self) -> AftResult<()> {
        self.finished = true;
        self.node.abort(&self.id)
    }
}

impl Drop for TransactionHandle {
    fn drop(&mut self) {
        if !self.finished {
            // Dropping an unfinished handle aborts the transaction, mirroring
            // the timeout-abort a crashed function would eventually get.
            let _ = self.node.abort(&self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_storage::{BackendConfig, BackendKind, InMemoryStore, StorageEngine};
    use aft_types::MockClock;
    use bytes::Bytes;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn test_node() -> Arc<AftNode> {
        let storage: SharedStorage = InMemoryStore::shared();
        // A strictly increasing clock keeps commit order equal to timestamp
        // order, which makes version-selection assertions deterministic.
        AftNode::with_clock(
            NodeConfig::test(),
            storage,
            aft_types::clock::TickingClock::shared(1_000, 1),
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_within_transaction() {
        let node = test_node();
        let t = node.start_transaction();
        assert!(node.get(&t, &Key::new("k")).unwrap().is_none());
        node.put(&t, Key::new("k"), val("v")).unwrap();
        // Read-your-writes before commit.
        assert_eq!(node.get(&t, &Key::new("k")).unwrap().unwrap(), val("v"));
        let committed = node.commit(&t).unwrap();
        assert_eq!(committed.uuid, t.uuid);

        // A later transaction sees the committed value.
        let t2 = node.start_transaction();
        assert_eq!(node.get(&t2, &Key::new("k")).unwrap().unwrap(), val("v"));
        node.commit(&t2).unwrap();
    }

    #[test]
    fn uncommitted_data_is_invisible_to_others() {
        let node = test_node();
        let writer = node.start_transaction();
        node.put(&writer, Key::new("k"), val("dirty")).unwrap();

        let reader = node.start_transaction();
        assert!(
            node.get(&reader, &Key::new("k")).unwrap().is_none(),
            "no dirty reads"
        );
        node.abort(&writer).unwrap();
        assert!(node.get(&reader, &Key::new("k")).unwrap().is_none());
    }

    #[test]
    fn abort_discards_updates() {
        let node = test_node();
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        node.abort(&t).unwrap();
        let t2 = node.start_transaction();
        assert!(node.get(&t2, &Key::new("k")).unwrap().is_none());
        // The aborted transaction is gone.
        assert!(matches!(
            node.get(&t, &Key::new("k")),
            Err(AftError::UnknownTransaction(_))
        ));
    }

    #[test]
    fn commit_writes_data_and_commit_record_to_storage() {
        let storage = InMemoryStore::shared();
        let shared: SharedStorage = storage.clone();
        let node = AftNode::with_clock(
            NodeConfig::test(),
            shared,
            MockClock::starting_at(5).shared(),
        )
        .unwrap();
        let t = node.start_transaction();
        node.put(&t, Key::new("a"), val("1")).unwrap();
        node.put(&t, Key::new("b"), val("2")).unwrap();
        let id = node.commit(&t).unwrap();

        let commits = node.storage().list_prefix("commit/").unwrap();
        assert_eq!(commits.len(), 1);
        assert!(commits[0].contains(&id.storage_suffix()));
        let data = node.storage().list_prefix("data/").unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn fractured_reads_are_prevented() {
        // T1 writes {l}; T2 writes {k, l}. A reader that saw k from T2 must
        // not see l from T1.
        let node = test_node();
        let t1 = node.start_transaction();
        node.put(&t1, Key::new("l"), val("l1")).unwrap();
        node.commit(&t1).unwrap();

        let t2 = node.start_transaction();
        node.put(&t2, Key::new("k"), val("k2")).unwrap();
        node.put(&t2, Key::new("l"), val("l2")).unwrap();
        node.commit(&t2).unwrap();

        let reader = node.start_transaction();
        assert_eq!(
            node.get(&reader, &Key::new("k")).unwrap().unwrap(),
            val("k2")
        );
        assert_eq!(
            node.get(&reader, &Key::new("l")).unwrap().unwrap(),
            val("l2"),
            "reading l1 would be a fractured read"
        );
    }

    #[test]
    fn repeatable_reads_across_concurrent_commits() {
        let node = test_node();
        let t1 = node.start_transaction();
        node.put(&t1, Key::new("k"), val("old")).unwrap();
        node.commit(&t1).unwrap();

        let reader = node.start_transaction();
        assert_eq!(
            node.get(&reader, &Key::new("k")).unwrap().unwrap(),
            val("old")
        );

        // Another transaction commits a newer version mid-flight.
        let t2 = node.start_transaction();
        node.put(&t2, Key::new("k"), val("new")).unwrap();
        node.commit(&t2).unwrap();

        assert_eq!(
            node.get(&reader, &Key::new("k")).unwrap().unwrap(),
            val("old"),
            "repeatable read"
        );
    }

    #[test]
    fn staleness_can_force_no_valid_version() {
        // §3.6: Tr reads l1, then T2:{k,l} commits, and k only has the version
        // cowritten with l2 — the read of k must fail rather than fracture.
        let node = test_node();
        let t1 = node.start_transaction();
        node.put(&t1, Key::new("l"), val("l1")).unwrap();
        node.commit(&t1).unwrap();

        let reader = node.start_transaction();
        assert_eq!(
            node.get(&reader, &Key::new("l")).unwrap().unwrap(),
            val("l1")
        );

        let t2 = node.start_transaction();
        node.put(&t2, Key::new("k"), val("k2")).unwrap();
        node.put(&t2, Key::new("l"), val("l2")).unwrap();
        node.commit(&t2).unwrap();

        match node.get(&reader, &Key::new("k")) {
            Err(AftError::NoValidVersion { key, .. }) => assert_eq!(key.as_str(), "k"),
            other => panic!("expected NoValidVersion, got {other:?}"),
        }
        assert_eq!(node.stats().no_valid_version_aborts(), 1);
    }

    #[test]
    fn write_buffer_spill_keeps_data_invisible_until_commit() {
        let storage = InMemoryStore::shared();
        let shared: SharedStorage = storage.clone();
        let config = NodeConfig {
            write_buffer_spill_bytes: 8, // spill after ~8 buffered bytes
            ..NodeConfig::test()
        };
        let node = AftNode::with_clock(config, shared, MockClock::starting_at(1).shared()).unwrap();

        let t = node.start_transaction();
        node.put(&t, Key::new("big"), val("0123456789abcdef"))
            .unwrap();
        // The intermediary data has been spilled to storage...
        assert_eq!(storage.list_prefix("data/").unwrap().len(), 1);
        // ...but no commit record exists and other transactions cannot see it.
        let reader = node.start_transaction();
        assert!(node.get(&reader, &Key::new("big")).unwrap().is_none());
        // The writer still reads its own write.
        assert_eq!(
            node.get(&t, &Key::new("big")).unwrap().unwrap(),
            val("0123456789abcdef")
        );
        node.commit(&t).unwrap();
        let reader2 = node.start_transaction();
        assert!(node.get(&reader2, &Key::new("big")).unwrap().is_some());
    }

    #[test]
    fn abort_cleans_up_spilled_data() {
        let storage = InMemoryStore::shared();
        let shared: SharedStorage = storage.clone();
        let config = NodeConfig {
            write_buffer_spill_bytes: 4,
            ..NodeConfig::test()
        };
        let node = AftNode::with_clock(config, shared, MockClock::starting_at(1).shared()).unwrap();
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("spilled-data")).unwrap();
        assert_eq!(storage.list_prefix("data/").unwrap().len(), 1);
        node.abort(&t).unwrap();
        assert!(storage.list_prefix("data/").unwrap().is_empty());
    }

    #[test]
    fn bootstrap_recovers_committed_state() {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = MockClock::starting_at(100);
        {
            let node =
                AftNode::with_clock(NodeConfig::test(), storage.clone(), clock.shared()).unwrap();
            let t = node.start_transaction();
            node.put(&t, Key::new("k"), val("durable")).unwrap();
            node.commit(&t).unwrap();
            // Node "fails" here (dropped).
        }
        // A replacement node bootstraps from the Transaction Commit Set.
        let node2 = AftNode::with_clock(NodeConfig::test(), storage, clock.shared()).unwrap();
        let t = node2.start_transaction();
        assert_eq!(
            node2.get(&t, &Key::new("k")).unwrap().unwrap(),
            val("durable")
        );
    }

    #[test]
    fn commit_timestamps_come_from_the_clock() {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = MockClock::starting_at(1_000);
        let node = AftNode::with_clock(NodeConfig::test(), storage, clock.shared()).unwrap();
        let t = node.start_transaction();
        clock.advance(500);
        node.put(&t, Key::new("k"), val("v")).unwrap();
        let committed = node.commit(&t).unwrap();
        assert_eq!(committed.timestamp, 1_500);
        assert_eq!(committed.uuid, t.uuid);
    }

    #[test]
    fn read_only_transactions_commit_with_empty_write_set() {
        let node = test_node();
        let t = node.start_transaction();
        assert!(node.get(&t, &Key::new("missing")).unwrap().is_none());
        let id = node.commit(&t).unwrap();
        let record = node.metadata().record(&id).unwrap();
        assert!(record.write_set.is_empty());
    }

    #[test]
    fn peer_commits_become_visible_unless_superseded() {
        let node = test_node();
        // A peer committed k at t=9999.
        let peer_new = Arc::new(TransactionRecord::new(
            TransactionId::new(9_999, Uuid::from_u128(1)),
            vec![Key::new("peer-key")],
        ));
        node.receive_peer_commits([Arc::clone(&peer_new)]);
        assert!(node.metadata().is_committed(&peer_new.id));

        // An older peer commit of the same key is superseded and ignored.
        let peer_old = Arc::new(TransactionRecord::new(
            TransactionId::new(10, Uuid::from_u128(2)),
            vec![Key::new("peer-key")],
        ));
        node.receive_peer_commits([Arc::clone(&peer_old)]);
        assert!(!node.metadata().is_committed(&peer_old.id));
        assert_eq!(node.stats().peer_commits(), 1);
    }

    #[test]
    fn drain_recent_commits_hands_records_to_the_multicaster() {
        let node = test_node();
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        let id = node.commit(&t).unwrap();
        let drained = node.drain_recent_commits();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, id);
        assert!(
            node.drain_recent_commits().is_empty(),
            "drain is destructive"
        );
    }

    #[test]
    fn local_gc_removes_superseded_transactions_only() {
        let node = test_node();
        for i in 0..3 {
            let t = node.start_transaction();
            node.put(&t, Key::new("hot"), val(&format!("v{i}")))
                .unwrap();
            node.commit(&t).unwrap();
        }
        assert_eq!(node.metadata().len(), 3);
        let outcome = node.run_local_gc(&LocalGcConfig::default());
        // The two older versions are superseded; the newest survives.
        assert_eq!(outcome.deleted, 2);
        assert_eq!(node.metadata().len(), 1);
        assert_eq!(node.locally_deleted().len(), 2);
        assert_eq!(node.stats().gc_deleted(), 2);
    }

    #[test]
    fn local_gc_spares_transactions_with_active_readers() {
        let node = test_node();
        let t1 = node.start_transaction();
        node.put(&t1, Key::new("k"), val("old")).unwrap();
        let committed_old = node.commit(&t1).unwrap();

        // A long-running reader depends on the old version.
        let reader = node.start_transaction();
        assert_eq!(
            node.get(&reader, &Key::new("k")).unwrap().unwrap(),
            val("old")
        );

        let t2 = node.start_transaction();
        node.put(&t2, Key::new("k"), val("new")).unwrap();
        node.commit(&t2).unwrap();

        let outcome = node.run_local_gc(&LocalGcConfig::default());
        assert_eq!(outcome.deleted, 0);
        assert_eq!(outcome.retained_for_readers, 1);
        assert!(node.metadata().is_committed(&committed_old));

        // Once the reader commits, the old version can go.
        node.commit(&reader).unwrap();
        let outcome = node.run_local_gc(&LocalGcConfig::default());
        assert_eq!(
            outcome.deleted, 2,
            "old k version and the reader's empty txn"
        );
    }

    #[test]
    fn expired_transactions_are_aborted() {
        let storage: SharedStorage = InMemoryStore::shared();
        let config = NodeConfig {
            transaction_timeout: Duration::ZERO,
            ..NodeConfig::test()
        };
        let node =
            AftNode::with_clock(config, storage, MockClock::starting_at(1).shared()).unwrap();
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        let aborted = node.abort_expired();
        assert_eq!(aborted, vec![t]);
        assert_eq!(node.in_flight(), 0);
        assert_eq!(node.stats().aborted(), 1);
    }

    #[test]
    fn transaction_handle_commits_and_aborts() {
        let node = test_node();
        let txn = node.transaction();
        txn.put("k", val("v")).unwrap();
        assert_eq!(txn.get("k").unwrap().unwrap(), val("v"));
        txn.commit().unwrap();

        let txn2 = node.transaction();
        txn2.put("k", val("doomed")).unwrap();
        txn2.abort().unwrap();

        let txn3 = node.transaction();
        assert_eq!(txn3.get("k").unwrap().unwrap(), val("v"));
        drop(txn3); // implicit abort of the read-only handle
        assert_eq!(node.in_flight(), 0);
    }

    #[test]
    fn works_over_every_simulated_backend() {
        for kind in [BackendKind::S3, BackendKind::DynamoDb, BackendKind::Redis] {
            let storage = aft_storage::make_backend(BackendConfig::test(kind));
            let node = AftNode::with_clock(
                NodeConfig::test(),
                storage,
                MockClock::starting_at(1).shared(),
            )
            .unwrap();
            let t = node.start_transaction();
            node.put(&t, Key::new("k"), val("v")).unwrap();
            node.commit(&t).unwrap();
            let t2 = node.start_transaction();
            assert_eq!(
                node.get(&t2, &Key::new("k")).unwrap().unwrap(),
                val("v"),
                "backend {kind}"
            );
        }
    }

    #[test]
    fn ensure_transaction_is_idempotent() {
        let node = test_node();
        let t = node.start_transaction();
        node.ensure_transaction(t);
        assert_eq!(node.in_flight(), 1);
        node.abort(&t).unwrap();
        // A retry can re-register the same ID after the state was lost.
        node.ensure_transaction(t);
        assert_eq!(node.in_flight(), 1);
        node.put(&t, Key::new("k"), val("v")).unwrap();
        node.commit(&t).unwrap();
    }

    #[test]
    fn get_all_overlaps_fetches_and_respects_buffered_writes() {
        let storage: SharedStorage = InMemoryStore::shared();
        // No data cache: every committed read must hit storage.
        let node = AftNode::with_clock(
            NodeConfig::test_without_cache(),
            storage,
            aft_types::clock::TickingClock::shared(1_000, 1),
        )
        .unwrap();
        let writer = node.start_transaction();
        for i in 0..6 {
            node.put(&writer, Key::new(format!("k{i}")), val(&format!("v{i}")))
                .unwrap();
        }
        node.commit(&writer).unwrap();

        let reader = node.start_transaction();
        node.put(&reader, Key::new("own"), val("mine")).unwrap();
        let keys: Vec<Key> = (0..6)
            .map(|i| Key::new(format!("k{i}")))
            .chain([Key::new("own"), Key::new("missing")])
            .collect();
        let values = node.get_all(&reader, &keys).unwrap();
        for i in 0..6 {
            assert_eq!(values[i].as_ref().unwrap(), &val(&format!("v{i}")));
        }
        assert_eq!(
            values[6].as_ref().unwrap(),
            &val("mine"),
            "read-your-writes"
        );
        assert!(values[7].is_none(), "missing key reads NULL");
        // The six committed keys were fetched from storage in one overlapped
        // barrier and recorded as one latency sample.
        assert_eq!(node.stats().reads_from_storage(), 6);
        assert_eq!(node.stats().read_storage_latency().len(), 1);
        // Every fetched version entered the read set.
        let repeat = node.get_all(&reader, &keys[..6]).unwrap();
        assert_eq!(repeat.len(), 6);
        node.commit(&reader).unwrap();
    }

    #[test]
    fn get_all_never_fractures_across_cowritten_keys() {
        // T1 writes {l}; T2 writes {k, l}. A get_all of [k, l] must return
        // the cowritten pair — the sequential version selection inside
        // get_all records k's choice before selecting l.
        let node = test_node();
        let t1 = node.start_transaction();
        node.put(&t1, Key::new("l"), val("l1")).unwrap();
        node.commit(&t1).unwrap();
        let t2 = node.start_transaction();
        node.put(&t2, Key::new("k"), val("k2")).unwrap();
        node.put(&t2, Key::new("l"), val("l2")).unwrap();
        node.commit(&t2).unwrap();

        let reader = node.start_transaction();
        let values = node
            .get_all(&reader, &[Key::new("k"), Key::new("l")])
            .unwrap();
        assert_eq!(values[0].as_ref().unwrap(), &val("k2"));
        assert_eq!(
            values[1].as_ref().unwrap(),
            &val("l2"),
            "returning l1 next to k2 would be a fractured read"
        );
    }

    /// A probe that crashes the node at one phase, recording every phase it
    /// observed first.
    struct CrashAt {
        phase: CommitPhase,
        seen: Mutex<Vec<CommitPhase>>,
    }

    impl CrashAt {
        fn new(phase: CommitPhase) -> Arc<Self> {
            Arc::new(CrashAt {
                phase,
                seen: Mutex::new(Vec::new()),
            })
        }
    }

    impl CommitProbe for CrashAt {
        fn before_phase(
            &self,
            node_id: &str,
            _txid: &TransactionId,
            phase: CommitPhase,
        ) -> AftResult<()> {
            self.seen.lock().push(phase);
            if phase == self.phase {
                Err(AftError::Unavailable(format!(
                    "chaos: {node_id} crashed {}",
                    phase.label()
                )))
            } else {
                Ok(())
            }
        }
    }

    /// A probe that never crashes (observes phases only).
    struct Observe(Mutex<Vec<CommitPhase>>);

    impl CommitProbe for Observe {
        fn before_phase(
            &self,
            _node_id: &str,
            _txid: &TransactionId,
            phase: CommitPhase,
        ) -> AftResult<()> {
            self.0.lock().push(phase);
            Ok(())
        }
    }

    #[test]
    fn commit_probe_observes_every_phase_in_protocol_order() {
        let node = test_node();
        let probe = Arc::new(Observe(Mutex::new(Vec::new())));
        node.install_commit_probe(Arc::clone(&probe) as Arc<dyn CommitProbe>);
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        node.commit(&t).unwrap();
        assert_eq!(probe.0.lock().as_slice(), &CommitPhase::ALL);
        // The probed path still commits durably and visibly.
        let t2 = node.start_transaction();
        assert_eq!(node.get(&t2, &Key::new("k")).unwrap().unwrap(), val("v"));
        // Clearing the probe restores the batched path.
        node.clear_commit_probe();
        let t3 = node.start_transaction();
        node.put(&t3, Key::new("k2"), val("v2")).unwrap();
        node.commit(&t3).unwrap();
        assert_eq!(probe.0.lock().len(), 3, "no phases after clearing");
    }

    #[test]
    fn crash_before_data_put_leaves_storage_untouched() {
        let storage = InMemoryStore::shared();
        let node = AftNode::with_clock(
            NodeConfig::test(),
            storage.clone() as SharedStorage,
            MockClock::starting_at(1).shared(),
        )
        .unwrap();
        node.install_commit_probe(CrashAt::new(CommitPhase::BeforeDataPut));
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        let err = node.commit(&t).unwrap_err();
        assert!(matches!(err, AftError::Unavailable(_)));
        assert!(storage.list_prefix("data/").unwrap().is_empty());
        assert!(storage.list_prefix("commit/").unwrap().is_empty());
        // The crash lost the in-memory transaction (write buffer gone).
        assert_eq!(node.in_flight(), 0);
    }

    #[test]
    fn crash_before_record_append_orphans_invisible_data() {
        let storage = InMemoryStore::shared();
        let node = AftNode::with_clock(
            NodeConfig::test(),
            storage.clone() as SharedStorage,
            MockClock::starting_at(1).shared(),
        )
        .unwrap();
        node.install_commit_probe(CrashAt::new(CommitPhase::BeforeRecordAppend));
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        assert!(node.commit(&t).is_err());
        // Data is durable but unreferenced: no commit record, so no reader
        // can ever observe it (no dirty reads even across the crash).
        assert_eq!(storage.list_prefix("data/").unwrap().len(), 1);
        assert!(storage.list_prefix("commit/").unwrap().is_empty());
        let reader = node.start_transaction();
        assert!(node.get(&reader, &Key::new("k")).unwrap().is_none());
    }

    #[test]
    fn crash_before_broadcast_commits_durably_but_silently() {
        let storage = InMemoryStore::shared();
        let clock = MockClock::starting_at(1);
        let node = AftNode::with_clock(
            NodeConfig::test(),
            storage.clone() as SharedStorage,
            clock.shared(),
        )
        .unwrap();
        node.install_commit_probe(CrashAt::new(CommitPhase::BeforeBroadcast));
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        assert!(node.commit(&t).is_err(), "the ack was lost with the node");
        // The §4.2 scenario: record durable, but the crashed node never made
        // it visible or multicast it.
        assert_eq!(storage.list_prefix("commit/").unwrap().len(), 1);
        assert!(node.drain_recent_commits().is_empty());
        let reader = node.start_transaction();
        assert!(node.get(&reader, &Key::new("k")).unwrap().is_none());
        // A bootstrapping replacement recovers the commit from storage.
        let replacement =
            AftNode::with_clock(NodeConfig::test(), storage as SharedStorage, clock.shared())
                .unwrap();
        let t2 = replacement.start_transaction();
        assert_eq!(
            replacement.get(&t2, &Key::new("k")).unwrap().unwrap(),
            val("v")
        );
    }

    #[test]
    fn data_cache_serves_repeat_reads() {
        let node = test_node();
        let t = node.start_transaction();
        node.put(&t, Key::new("k"), val("v")).unwrap();
        node.commit(&t).unwrap();

        let r1 = node.start_transaction();
        node.get(&r1, &Key::new("k")).unwrap();
        let r2 = node.start_transaction();
        node.get(&r2, &Key::new("k")).unwrap();
        // The commit inserted the value into the cache, so no storage reads
        // were needed at all.
        assert_eq!(node.stats().reads_from_storage(), 0);
        assert!(node.stats().reads_from_data_cache() >= 2);
    }

    fn commit_n(node: &Arc<AftNode>, n: usize, key: &str) {
        for i in 0..n {
            let t = node.start_transaction();
            node.put(&t, Key::new(key), val(&format!("v{i}"))).unwrap();
            node.commit(&t).unwrap();
        }
    }

    #[test]
    fn checkpoint_policy_knobs() {
        assert!(!CheckpointPolicy::disabled().is_enabled());
        assert!(!CheckpointPolicy::default().is_enabled());
        assert!(CheckpointPolicy::every_commits(10).is_enabled());
        assert!(CheckpointPolicy::every_duration(Duration::from_secs(1)).is_enabled());
        // every_commits(0) clamps to 1: an enabled policy always fires.
        assert_eq!(CheckpointPolicy::every_commits(0).every_commits, 1);
    }

    #[test]
    fn maybe_checkpoint_fires_on_commit_count_and_rearms() {
        let storage: SharedStorage = InMemoryStore::shared();
        let node = AftNode::with_clock(
            NodeConfig::test().with_checkpoint(CheckpointPolicy::every_commits(3)),
            storage,
            aft_types::clock::TickingClock::shared(1_000, 1),
        )
        .unwrap();
        commit_n(&node, 2, "k");
        assert!(node.maybe_checkpoint(false).unwrap().is_none(), "not due");
        commit_n(&node, 1, "k");
        let outcome = node.maybe_checkpoint(false).unwrap().expect("due");
        assert_eq!(outcome.write.records, 3);
        assert!(outcome.compaction.is_none());
        // The counter was reset: not due again until 3 more commits.
        assert!(node.maybe_checkpoint(false).unwrap().is_none());
    }

    #[test]
    fn checkpoint_and_compaction_preserve_bootstrap_state() {
        let storage: SharedStorage = InMemoryStore::shared();
        let clock = aft_types::clock::TickingClock::shared(1_000, 1);
        let node = AftNode::with_clock(NodeConfig::test(), storage.clone(), clock.clone()).unwrap();
        for i in 0..8 {
            let t = node.start_transaction();
            node.put(&t, Key::new(format!("k{}", i % 4)), val("x"))
                .unwrap();
            node.commit(&t).unwrap();
        }
        let before = node.storage().list_prefix("commit/").unwrap().len();
        assert_eq!(before, 8);

        let outcome = node.checkpoint_now(true).unwrap();
        let compaction = outcome.compaction.expect("compaction requested");
        assert!(compaction.deleted_covered > 0 || compaction.deleted_superseded > 0);
        let after = node.storage().list_prefix("commit/").unwrap().len();
        assert!(after < before, "compaction must shrink the commit log");

        // A cold replacement on the same storage reaches the same state.
        let replacement = AftNode::with_clock(NodeConfig::test(), storage, clock).unwrap();
        for i in 0..4 {
            let key = Key::new(format!("k{i}"));
            assert_eq!(
                replacement.metadata().latest_version_of(&key),
                node.metadata().latest_version_of(&key),
                "checkpoint+tail bootstrap must match the live node for {key:?}"
            );
        }
    }

    #[test]
    fn crash_during_checkpoint_write_leaves_previous_checkpoint_live() {
        let storage: SharedStorage = InMemoryStore::shared();
        let node = AftNode::with_clock(
            NodeConfig::test(),
            storage,
            aft_types::clock::TickingClock::shared(1_000, 1),
        )
        .unwrap();
        commit_n(&node, 3, "k");
        let first = node.checkpoint_now(false).unwrap();

        commit_n(&node, 3, "k");
        node.install_commit_probe(CrashAt::new(CommitPhase::DuringCheckpointWrite));
        let err = node.checkpoint_now(false).unwrap_err();
        assert!(matches!(err, AftError::Unavailable(_)));
        node.clear_commit_probe();

        // Chunks of the torn checkpoint may exist, but the manifest pointer
        // was never published: a loader still sees the first checkpoint.
        let load = aft_storage::load_latest_checkpoint(node.io()).unwrap();
        let live = load.checkpoint.expect("previous checkpoint live");
        assert_eq!(live.id, first.write.id);

        // After the crash clears, checkpointing succeeds and supersedes it.
        let second = node.checkpoint_now(false).unwrap();
        assert!(second.write.id > first.write.id);
        let load = aft_storage::load_latest_checkpoint(node.io()).unwrap();
        assert_eq!(load.checkpoint.unwrap().id, second.write.id);
    }

    #[test]
    fn checkpoint_ids_are_monotonic_per_node() {
        let node = test_node();
        commit_n(&node, 1, "k");
        let a = node.checkpoint_now(false).unwrap();
        let b = node.checkpoint_now(false).unwrap();
        let c = node.checkpoint_now(false).unwrap();
        assert!(a.write.id < b.write.id && b.write.id < c.write.id);
    }
}
