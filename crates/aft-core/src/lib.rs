//! The AFT shim node — the paper's primary contribution.
//!
//! An [`AftNode`] interposes between a FaaS platform and a durable key-value
//! store and offers the transactional key-value API of Table 1:
//! `StartTransaction`, `Get`, `Put`, `CommitTransaction`, `AbortTransaction`.
//! It guarantees (§3.2):
//!
//! * **no dirty reads** — transactions only read data from transactions whose
//!   commit record is durable, enforced by the write-ordering commit protocol
//!   in [`node`] (§3.3);
//! * **no fractured reads** — every read extends the transaction's read set
//!   into an Atomic Readset, enforced by the read protocol ([`read`],
//!   Algorithm 1, §3.4);
//! * **read your writes** and **repeatable read** (§3.5);
//! * **idempotence of retries** — each transaction's updates are persisted
//!   under storage keys derived from its unique ID, so re-executing a commit
//!   can never double-apply (§3.1).
//!
//! The node keeps two caches (§3.1): a *metadata cache* ([`metadata`]) holding
//! recently committed transaction records and a per-key version index, and an
//! optional *data cache* ([`data_cache`]) holding hot key-version payloads
//! (evaluated in §6.2). Commit metadata exchange between nodes, supersedence
//! ([`supersede`], Algorithm 2) and local garbage collection ([`gc`], §5.1)
//! keep those caches bounded.
//!
//! Everything distributed — multicast, the fault manager, global garbage
//! collection — lives in the `aft-cluster` crate; this crate is strictly the
//! single-node protocol stack plus the hooks the cluster layer drives.

pub mod api;
pub mod bootstrap;
pub mod commit_batcher;
pub mod data_cache;
pub mod gc;
pub mod metadata;
pub mod node;
pub mod read;
pub mod stats;
pub mod supersede;
pub mod write_buffer;

pub use api::{AftApi, CommitOutcome};
pub use bootstrap::BootstrapOutcome;
pub use commit_batcher::{BatchConfig, BatchStats, CommitBatcher};
pub use data_cache::DataCache;
pub use gc::{GcOutcome, LocalGcConfig};
pub use metadata::MetadataCache;
pub use node::{
    AftNode, BootstrapProbe, CheckpointPolicy, CommitPhase, CommitProbe, NodeCheckpointOutcome,
    NodeConfig, TransactionHandle,
};
pub use read::{select_version, ReadSet};
pub use stats::{LatencyRecorder, NodeStats, NodeStatsSnapshot};
pub use supersede::is_superseded;
pub use write_buffer::{ActiveTransaction, WriteBuffer};
