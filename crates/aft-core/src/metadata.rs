//! The node-local metadata cache: the Commit Set Cache and the key version
//! index.
//!
//! Every AFT node caches the IDs (and write sets) of recently committed
//! transactions and maintains an index from each key to the committed
//! versions of that key (§3.1). Algorithm 1 consults only this cache, so a
//! version becomes readable on a node exactly when that node learns of the
//! commit — either by committing locally, by receiving a multicast from a
//! peer (§4), or by being told by the fault manager (§4.2).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use aft_types::{Key, TransactionId, TransactionRecord};
use parking_lot::RwLock;

/// The committed-transaction metadata cache of one AFT node.
#[derive(Debug, Default)]
pub struct MetadataCache {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Commit Set Cache: every committed transaction this node knows about.
    committed: HashMap<TransactionId, Arc<TransactionRecord>>,
    /// Key version index: for each key, the committed transactions that wrote
    /// it, in transaction-ID order.
    key_index: HashMap<Key, BTreeSet<TransactionId>>,
}

impl MetadataCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        MetadataCache::default()
    }

    /// Inserts a committed transaction record, updating the key version
    /// index. Returns `false` if the record was already known.
    pub fn insert(&self, record: Arc<TransactionRecord>) -> bool {
        let mut inner = self.inner.write();
        if inner.committed.contains_key(&record.id) {
            return false;
        }
        for key in &record.write_set {
            inner
                .key_index
                .entry(key.clone())
                .or_default()
                .insert(record.id);
        }
        inner.committed.insert(record.id, record);
        true
    }

    /// Returns true if `id` is a committed transaction this node knows about.
    pub fn is_committed(&self, id: &TransactionId) -> bool {
        self.inner.read().committed.contains_key(id)
    }

    /// Returns the commit record for `id`, if known.
    pub fn record(&self, id: &TransactionId) -> Option<Arc<TransactionRecord>> {
        self.inner.read().committed.get(id).cloned()
    }

    /// Returns the committed versions of `key` known to this node, oldest
    /// first.
    pub fn versions_of(&self, key: &Key) -> Vec<TransactionId> {
        self.inner
            .read()
            .key_index
            .get(key)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Returns the newest committed version of `key` known to this node.
    pub fn latest_version_of(&self, key: &Key) -> Option<TransactionId> {
        self.inner
            .read()
            .key_index
            .get(key)
            .and_then(|set| set.iter().next_back().copied())
    }

    /// Returns true if a committed version of `key` newer than `than` exists.
    pub fn has_newer_version(&self, key: &Key, than: &TransactionId) -> bool {
        self.latest_version_of(key)
            .is_some_and(|latest| latest > *than)
    }

    /// Removes a transaction's metadata (local garbage collection, §5.1).
    ///
    /// The caller is responsible for having checked supersedence and for
    /// evicting any cached data; this method only touches metadata. Returns
    /// the removed record, if it was present.
    pub fn remove(&self, id: &TransactionId) -> Option<Arc<TransactionRecord>> {
        let mut inner = self.inner.write();
        let record = inner.committed.remove(id)?;
        for key in &record.write_set {
            if let Some(set) = inner.key_index.get_mut(key) {
                set.remove(id);
                if set.is_empty() {
                    inner.key_index.remove(key);
                }
            }
        }
        Some(record)
    }

    /// Number of committed transactions currently cached.
    pub fn len(&self) -> usize {
        self.inner.read().committed.len()
    }

    /// Returns true if no committed transactions are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.read().committed.is_empty()
    }

    /// Number of keys present in the key version index.
    pub fn indexed_keys(&self) -> usize {
        self.inner.read().key_index.len()
    }

    /// A snapshot of every cached commit record (used by garbage collection
    /// sweeps and by tests).
    pub fn all_records(&self) -> Vec<Arc<TransactionRecord>> {
        self.inner.read().committed.values().cloned().collect()
    }

    /// A snapshot of every cached commit record whose ID is at most `up_to`,
    /// oldest first — the local GC sweeps oldest transactions first (§5.2.1).
    pub fn records_oldest_first(&self) -> Vec<Arc<TransactionRecord>> {
        let mut records = self.all_records();
        records.sort_by_key(|r| r.id);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_types::Uuid;

    fn tid(ts: u64, id: u128) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(id))
    }

    fn record(ts: u64, keys: &[&str]) -> Arc<TransactionRecord> {
        Arc::new(TransactionRecord::new(
            tid(ts, ts as u128),
            keys.iter().map(Key::new),
        ))
    }

    #[test]
    fn insert_updates_commit_set_and_index() {
        let cache = MetadataCache::new();
        assert!(cache.insert(record(1, &["a", "b"])));
        assert!(cache.insert(record(2, &["b"])));
        assert!(
            !cache.insert(record(2, &["b"])),
            "duplicate insert is a no-op"
        );

        assert_eq!(cache.len(), 2);
        assert!(cache.is_committed(&tid(1, 1)));
        assert!(!cache.is_committed(&tid(3, 3)));
        assert_eq!(
            cache.versions_of(&Key::new("b")),
            vec![tid(1, 1), tid(2, 2)]
        );
        assert_eq!(cache.latest_version_of(&Key::new("b")), Some(tid(2, 2)));
        assert_eq!(cache.latest_version_of(&Key::new("a")), Some(tid(1, 1)));
        assert_eq!(cache.latest_version_of(&Key::new("zzz")), None);
        assert_eq!(cache.indexed_keys(), 2);
    }

    #[test]
    fn has_newer_version_compares_full_ids() {
        let cache = MetadataCache::new();
        cache.insert(record(5, &["k"]));
        assert!(cache.has_newer_version(&Key::new("k"), &tid(4, 0)));
        assert!(!cache.has_newer_version(&Key::new("k"), &tid(5, 5)));
        assert!(!cache.has_newer_version(&Key::new("k"), &tid(9, 0)));
        assert!(!cache.has_newer_version(&Key::new("unknown"), &tid(0, 0)));
    }

    #[test]
    fn remove_cleans_the_index() {
        let cache = MetadataCache::new();
        cache.insert(record(1, &["a", "b"]));
        cache.insert(record(2, &["b"]));

        let removed = cache.remove(&tid(1, 1)).expect("record was present");
        assert_eq!(removed.id, tid(1, 1));
        assert!(
            cache.remove(&tid(1, 1)).is_none(),
            "second remove is a no-op"
        );

        // "a" had only the removed version; its index entry disappears.
        assert!(cache.versions_of(&Key::new("a")).is_empty());
        // "b" still has the newer version.
        assert_eq!(cache.versions_of(&Key::new("b")), vec![tid(2, 2)]);
        assert_eq!(cache.indexed_keys(), 1);
    }

    #[test]
    fn records_oldest_first_is_sorted() {
        let cache = MetadataCache::new();
        cache.insert(record(30, &["x"]));
        cache.insert(record(10, &["x"]));
        cache.insert(record(20, &["x"]));
        let ids: Vec<_> = cache.records_oldest_first().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![tid(10, 10), tid(20, 20), tid(30, 30)]);
    }

    #[test]
    fn record_lookup_returns_write_set() {
        let cache = MetadataCache::new();
        cache.insert(record(7, &["k", "l"]));
        let r = cache.record(&tid(7, 7)).unwrap();
        assert!(r.wrote(&Key::new("k")));
        assert!(cache.record(&tid(8, 8)).is_none());
    }
}
