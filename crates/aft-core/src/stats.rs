//! Per-node operational counters.
//!
//! These counters are cheap (relaxed atomics) and are read by the benchmark
//! harness to report throughput, abort rates, cache effectiveness, and
//! garbage-collection progress — the quantities plotted in Figures 7–10.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

/// Upper bound on retained latency samples per recorder stripe; beyond it,
/// new samples are dropped (the percentiles of the first samples are
/// representative, and experiments reset nodes between points anyway).
const MAX_LATENCY_SAMPLES_PER_STRIPE: usize = 1 << 16;

/// Lock stripes per recorder: recording threads spread across stripes so the
/// hot path never funnels through one mutex (matching the striping of every
/// other per-node structure).
const LATENCY_RECORDER_STRIPES: usize = 16;

/// A bounded, lock-striped reservoir of simulated-latency samples with
/// percentile queries.
///
/// Records the storage latency charged per commit flush / per read fetch so
/// experiments can report p50/p99 even in `LatencyMode::Virtual`, where no
/// wall-clock time passes and the charge is the only observable cost.
/// Writers pick a stripe from their thread identity, so concurrent clients
/// record without contending; queries merge all stripes.
#[derive(Debug)]
pub struct LatencyRecorder {
    stripes: Box<[Mutex<Vec<u64>>]>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder {
            stripes: (0..LATENCY_RECORDER_STRIPES)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }
}

impl LatencyRecorder {
    fn stripe(&self) -> &Mutex<Vec<u64>> {
        use std::sync::atomic::AtomicUsize;
        // Each thread gets a stable stripe index once; round-robin assignment
        // spreads any set of recording threads evenly.
        static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static MY_STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        }
        let index = MY_STRIPE.with(|s| *s);
        &self.stripes[index % self.stripes.len()]
    }

    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let mut samples = self.stripe().lock();
        if samples.len() < MAX_LATENCY_SAMPLES_PER_STRIPE {
            samples.push(latency.as_nanos() as u64);
        }
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns true if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }

    fn merged(&self) -> Vec<u64> {
        let mut all = Vec::with_capacity(self.len());
        for stripe in &self.stripes {
            all.extend_from_slice(&stripe.lock());
        }
        all
    }

    /// The `p`-th percentile (`0.0..=1.0`) in milliseconds, or `None` with no
    /// samples.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        let mut samples = self.merged();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = ((samples.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        Some(samples[rank] as f64 / 1_000_000.0)
    }

    /// The mean sample in milliseconds, or `None` with no samples.
    pub fn mean_ms(&self) -> Option<f64> {
        let samples = self.merged();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1_000_000.0)
    }
}

/// Counters describing one AFT node's activity.
#[derive(Debug, Default)]
pub struct NodeStats {
    transactions_started: AtomicU64,
    transactions_committed: AtomicU64,
    transactions_aborted: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    reads_from_write_buffer: AtomicU64,
    reads_from_data_cache: AtomicU64,
    reads_from_storage: AtomicU64,
    null_reads: AtomicU64,
    no_valid_version_aborts: AtomicU64,
    gc_transactions_deleted: AtomicU64,
    commits_received_from_peers: AtomicU64,
    duplicate_peer_commits: AtomicU64,
    /// Simulated storage latency charged per commit flush (data barrier +
    /// record append), as observed by this node's commits.
    commit_storage_latency: LatencyRecorder,
    /// Simulated storage latency charged per read that fetched payloads from
    /// storage (single fetch or an overlapped multi-fetch barrier).
    read_storage_latency: LatencyRecorder,
    /// Commit-metadata propagation lag: for every commit record learned from
    /// a peer, commit-timestamp → local-ingest-time on this node's clock.
    /// This is the metadata half of the RYW staleness window (§4.2): a client
    /// re-routed to this node may read stale data for at most
    /// `propagation lag + one dissemination interval`.
    propagation_lag: LatencyRecorder,
}

macro_rules! counter_methods {
    ($($record:ident, $get:ident => $field:ident;)*) => {
        $(
            #[doc = concat!("Increments the `", stringify!($field), "` counter.")]
            pub fn $record(&self) {
                self.$field.fetch_add(1, Ordering::Relaxed);
            }

            #[doc = concat!("Current value of the `", stringify!($field), "` counter.")]
            pub fn $get(&self) -> u64 {
                self.$field.load(Ordering::Relaxed)
            }
        )*
    };
}

impl NodeStats {
    /// Creates a zeroed counter set behind an [`Arc`].
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    counter_methods! {
        record_started, started => transactions_started;
        record_committed, committed => transactions_committed;
        record_aborted, aborted => transactions_aborted;
        record_read, reads => reads;
        record_write, writes => writes;
        record_read_from_write_buffer, reads_from_write_buffer => reads_from_write_buffer;
        record_read_from_data_cache, reads_from_data_cache => reads_from_data_cache;
        record_read_from_storage, reads_from_storage => reads_from_storage;
        record_null_read, null_reads => null_reads;
        record_no_valid_version, no_valid_version_aborts => no_valid_version_aborts;
        record_gc_deleted, gc_deleted => gc_transactions_deleted;
        record_peer_commit, peer_commits => commits_received_from_peers;
        record_duplicate_peer_commit, duplicate_peer_commits => duplicate_peer_commits;
    }

    /// The per-commit storage latency recorder.
    pub fn commit_storage_latency(&self) -> &LatencyRecorder {
        &self.commit_storage_latency
    }

    /// The per-read storage latency recorder.
    pub fn read_storage_latency(&self) -> &LatencyRecorder {
        &self.read_storage_latency
    }

    /// The commit-metadata propagation-lag recorder (peer-learned records
    /// only; locally committed records have zero lag by definition).
    pub fn propagation_lag(&self) -> &LatencyRecorder {
        &self.propagation_lag
    }

    /// Takes a point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            transactions_started: self.started(),
            transactions_committed: self.committed(),
            transactions_aborted: self.aborted(),
            reads: self.reads(),
            writes: self.writes(),
            reads_from_write_buffer: self.reads_from_write_buffer(),
            reads_from_data_cache: self.reads_from_data_cache(),
            reads_from_storage: self.reads_from_storage(),
            null_reads: self.null_reads(),
            no_valid_version_aborts: self.no_valid_version_aborts(),
            gc_transactions_deleted: self.gc_deleted(),
            commits_received_from_peers: self.peer_commits(),
            duplicate_peer_commits: self.duplicate_peer_commits(),
        }
    }
}

/// An immutable snapshot of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// Transactions begun on this node.
    pub transactions_started: u64,
    /// Transactions committed on this node.
    pub transactions_committed: u64,
    /// Transactions aborted on this node (explicitly or by timeout).
    pub transactions_aborted: u64,
    /// Get operations served.
    pub reads: u64,
    /// Put operations accepted.
    pub writes: u64,
    /// Reads answered from the transaction's own write buffer.
    pub reads_from_write_buffer: u64,
    /// Reads answered from the data cache.
    pub reads_from_data_cache: u64,
    /// Reads that fetched the payload from storage.
    pub reads_from_storage: u64,
    /// Reads that observed the NULL version (key never written).
    pub null_reads: u64,
    /// Reads that found no valid version (client must retry, §3.6).
    pub no_valid_version_aborts: u64,
    /// Transactions whose metadata this node has garbage collected.
    pub gc_transactions_deleted: u64,
    /// Commit records learned from peers (multicast or fault manager).
    pub commits_received_from_peers: u64,
    /// Peer deliveries that were already known locally and deduplicated
    /// (gossip duplicates, fault-manager re-pushes) instead of re-applied.
    pub duplicate_peer_commits: u64,
}

impl NodeStatsSnapshot {
    /// The data cache hit rate among reads that had to consult storage or the
    /// cache (write-buffer hits excluded), in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let denom = self.reads_from_data_cache + self.reads_from_storage;
        if denom == 0 {
            0.0
        } else {
            self.reads_from_data_cache as f64 / denom as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot_agree() {
        let stats = NodeStats::default();
        stats.record_started();
        stats.record_started();
        stats.record_committed();
        stats.record_read();
        stats.record_read_from_data_cache();
        stats.record_read_from_storage();

        assert_eq!(stats.started(), 2);
        let snap = stats.snapshot();
        assert_eq!(snap.transactions_started, 2);
        assert_eq!(snap.transactions_committed, 1);
        assert_eq!(snap.reads, 1);
        assert!((snap.cache_hit_rate() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn hit_rate_with_no_reads_is_zero() {
        assert_eq!(NodeStatsSnapshot::default().cache_hit_rate(), 0.0);
    }

    #[test]
    fn latency_recorder_percentiles() {
        let recorder = LatencyRecorder::default();
        assert!(recorder.is_empty());
        assert_eq!(recorder.percentile_ms(0.5), None);
        assert_eq!(recorder.mean_ms(), None);
        for ms in 1..=100u64 {
            recorder.record(Duration::from_millis(ms));
        }
        assert_eq!(recorder.len(), 100);
        let p50 = recorder.percentile_ms(0.5).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "p50 = {p50}");
        let p99 = recorder.percentile_ms(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 = {p99}");
        let mean = recorder.mean_ms().unwrap();
        assert!((mean - 50.5).abs() < 0.01, "mean = {mean}");
    }
}
