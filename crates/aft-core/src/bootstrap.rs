//! Node bootstrap and recovery.
//!
//! When an AFT node starts — including when a replacement node comes up after
//! a failure (§6.7) — it warms its metadata cache by reading the latest
//! records in the Transaction Commit Set from storage (§3.1). Nothing else
//! needs to be recovered: the write-ordering protocol guarantees that any
//! transaction with a durable commit record also has durable data (§3.3.1),
//! and any transaction without one is simply not committed (clients retry).

use std::sync::Arc;

use aft_storage::io::{IoEngine, StorageRequest};
use aft_storage::SharedStorage;
use aft_types::codec::decode_commit_record;
use aft_types::{AftResult, TransactionRecord};

use crate::metadata::MetadataCache;

/// Reads commit records from storage and inserts them into `metadata`.
///
/// `limit` bounds how many of the *most recent* records are loaded (commit
/// keys sort in commit-time order, so the tail of the listing is the most
/// recent). `usize::MAX` loads everything.
///
/// Returns the number of records loaded. Undecodable records are skipped —
/// a half-written commit record means the transaction never committed.
pub fn warm_metadata_cache(
    storage: &SharedStorage,
    metadata: &MetadataCache,
    limit: usize,
) -> AftResult<usize> {
    let keys = storage.list_prefix(&TransactionRecord::storage_prefix())?;
    let start = keys.len().saturating_sub(limit);
    let mut loaded = 0;
    for key in &keys[start..] {
        let Some(blob) = storage.get(key)? else {
            // Deleted by the global GC between the listing and the read.
            continue;
        };
        match decode_commit_record(&blob) {
            Ok(record) => {
                if metadata.insert(Arc::new(record)) {
                    loaded += 1;
                }
            }
            Err(_) => continue,
        }
    }
    Ok(loaded)
}

/// Wave size for overlapped commit-record fetches: one engine in-flight
/// window per wave bounds memory for huge commit sets while keeping every
/// fetch in a wave concurrent.
pub const COMMIT_FETCH_WAVE: usize = 256;

/// Fetches and decodes the commit records stored under `keys` through the
/// pipelined I/O engine, in overlapped waves of [`COMMIT_FETCH_WAVE`], and
/// calls `on_record` for each record found. Keys deleted between listing
/// and read are skipped (a racing global GC); undecodable blobs are skipped
/// (a half-written record means the transaction never committed).
///
/// Shared by node bootstrap (below) and the cluster fault manager's
/// commit-set scan — the two places that bulk-read the Transaction Commit
/// Set.
pub fn fetch_commit_records(
    io: &IoEngine,
    keys: &[String],
    mut on_record: impl FnMut(TransactionRecord),
) -> AftResult<()> {
    for wave in keys.chunks(COMMIT_FETCH_WAVE) {
        let outcome = io.get_all(wave.iter().cloned()).wait_all();
        for result in outcome.results {
            let Some(blob) = result?.into_value() else {
                continue;
            };
            if let Ok(record) = decode_commit_record(&blob) {
                on_record(record);
            }
        }
    }
    Ok(())
}

/// Like [`warm_metadata_cache`], but fetches the commit records through the
/// pipelined I/O engine: the listing is one round trip, then the record
/// reads overlap via [`fetch_commit_records`], so a replacement node's
/// cache warm-up does not pay one round trip per record (§6.7's
/// recovery-time concern).
///
/// Returns the number of records loaded.
pub fn warm_metadata_cache_pipelined(
    io: &IoEngine,
    metadata: &MetadataCache,
    limit: usize,
) -> AftResult<usize> {
    let keys = io
        .execute(StorageRequest::List(TransactionRecord::storage_prefix()))
        .result?
        .into_keys();
    let start = keys.len().saturating_sub(limit);
    let mut loaded = 0;
    fetch_commit_records(io, &keys[start..], |record| {
        if metadata.insert(Arc::new(record)) {
            loaded += 1;
        }
    })?;
    Ok(loaded)
}

/// Checks whether a transaction committed, by looking for its commit record
/// in storage.
///
/// This is the recovery rule of §3.3.1: after an AFT node failure, a client
/// that had called `CommitTransaction` but never got an acknowledgement can
/// ask any node to consult storage; if the commit record exists the
/// transaction is durable and successful, otherwise the client must retry.
pub fn commit_record_exists(
    storage: &SharedStorage,
    id: &aft_types::TransactionId,
) -> AftResult<bool> {
    Ok(storage
        .get(&TransactionRecord::storage_key_for(id))?
        .is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_storage::InMemoryStore;
    use aft_types::codec::encode_commit_record;
    use aft_types::{Key, TransactionId, Uuid};

    fn tid(ts: u64) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(ts as u128))
    }

    fn put_record(storage: &SharedStorage, ts: u64, keys: &[&str]) -> TransactionRecord {
        let record = TransactionRecord::new(tid(ts), keys.iter().map(Key::new));
        storage
            .put(&record.storage_key(), encode_commit_record(&record))
            .unwrap();
        record
    }

    #[test]
    fn warm_cache_loads_all_records() {
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=5 {
            put_record(&storage, ts, &["k"]);
        }
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap();
        assert_eq!(loaded, 5);
        assert_eq!(metadata.len(), 5);
        assert_eq!(metadata.latest_version_of(&Key::new("k")), Some(tid(5)));
    }

    #[test]
    fn warm_cache_respects_limit_and_prefers_recent() {
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=10 {
            put_record(&storage, ts, &["k"]);
        }
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, 3).unwrap();
        assert_eq!(loaded, 3);
        assert!(metadata.is_committed(&tid(10)));
        assert!(metadata.is_committed(&tid(8)));
        assert!(!metadata.is_committed(&tid(1)));
    }

    #[test]
    fn corrupt_records_are_skipped() {
        let storage: SharedStorage = InMemoryStore::shared();
        put_record(&storage, 1, &["k"]);
        storage
            .put("commit/garbage", bytes::Bytes::from_static(b"not a record"))
            .unwrap();
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap();
        assert_eq!(loaded, 1);
    }

    #[test]
    fn commit_record_existence_check() {
        let storage: SharedStorage = InMemoryStore::shared();
        let record = put_record(&storage, 7, &["k"]);
        assert!(commit_record_exists(&storage, &record.id).unwrap());
        assert!(!commit_record_exists(&storage, &tid(8)).unwrap());
    }

    #[test]
    fn empty_storage_warms_nothing() {
        let storage: SharedStorage = InMemoryStore::shared();
        let metadata = MetadataCache::new();
        assert_eq!(
            warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap(),
            0
        );
        assert!(metadata.is_empty());
    }

    #[test]
    fn pipelined_warm_matches_sequential_warm() {
        use aft_storage::io::{IoConfig, IoEngine};
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=300 {
            put_record(&storage, ts, &["k"]);
        }
        storage
            .put("commit/garbage", bytes::Bytes::from_static(b"junk"))
            .unwrap();

        let sequential = MetadataCache::new();
        let loaded_seq = warm_metadata_cache(&storage, &sequential, usize::MAX).unwrap();

        let io = IoEngine::new(storage.clone(), IoConfig::pipelined());
        let pipelined = MetadataCache::new();
        let loaded_pipe = warm_metadata_cache_pipelined(&io, &pipelined, usize::MAX).unwrap();

        assert_eq!(loaded_seq, loaded_pipe);
        assert_eq!(sequential.len(), pipelined.len());
        assert_eq!(
            pipelined.latest_version_of(&Key::new("k")),
            Some(tid(300)),
            "multi-wave overlapped warm must load every record"
        );

        // The limit applies to the pipelined variant too. The garbage key
        // sorts last, so the 5-key tail holds 4 decodable records.
        let limited = MetadataCache::new();
        assert_eq!(warm_metadata_cache_pipelined(&io, &limited, 5).unwrap(), 4);
        assert!(limited.is_committed(&tid(300)));
        assert!(!limited.is_committed(&tid(1)));
    }
}
