//! Node bootstrap and recovery.
//!
//! When an AFT node starts — including when a replacement node comes up after
//! a failure (§6.7) — it warms its metadata cache by reading the latest
//! records in the Transaction Commit Set from storage (§3.1). Nothing else
//! needs to be recovered: the write-ordering protocol guarantees that any
//! transaction with a durable commit record also has durable data (§3.3.1),
//! and any transaction without one is simply not committed (clients retry).

use std::sync::Arc;
use std::time::Duration;

use aft_storage::checkpoint::load_latest_checkpoint;
use aft_storage::io::{IoEngine, StorageRequest};
use aft_storage::SharedStorage;
use aft_types::codec::decode_commit_record;
use aft_types::{AftResult, CommitPhase, TransactionId, TransactionRecord, Uuid};

use crate::metadata::MetadataCache;
use crate::node::CommitProbe;

/// Reads commit records from storage and inserts them into `metadata`.
///
/// `limit` bounds how many of the *most recent* records are loaded (commit
/// keys sort in commit-time order, so the tail of the listing is the most
/// recent). `usize::MAX` loads everything.
///
/// Returns the number of records loaded. Undecodable records are skipped —
/// a half-written commit record means the transaction never committed.
pub fn warm_metadata_cache(
    storage: &SharedStorage,
    metadata: &MetadataCache,
    limit: usize,
) -> AftResult<usize> {
    let keys = storage.list_prefix(&TransactionRecord::storage_prefix())?;
    let start = keys.len().saturating_sub(limit);
    let mut loaded = 0;
    for key in &keys[start..] {
        let Some(blob) = storage.get(key)? else {
            // Deleted by the global GC between the listing and the read.
            continue;
        };
        match decode_commit_record(&blob) {
            Ok(record) => {
                if metadata.insert(Arc::new(record)) {
                    loaded += 1;
                }
            }
            Err(_) => continue,
        }
    }
    Ok(loaded)
}

/// Wave size for overlapped commit-record fetches: one engine in-flight
/// window per wave bounds memory for huge commit sets while keeping every
/// fetch in a wave concurrent.
pub const COMMIT_FETCH_WAVE: usize = 256;

/// Fetches and decodes the commit records stored under `keys` through the
/// pipelined I/O engine, in overlapped waves of [`COMMIT_FETCH_WAVE`], and
/// calls `on_record` for each record found. Keys deleted between listing
/// and read are skipped (a racing global GC); undecodable blobs are skipped
/// (a half-written record means the transaction never committed).
///
/// Shared by node bootstrap (below) and the cluster fault manager's
/// commit-set scan — the two places that bulk-read the Transaction Commit
/// Set.
pub fn fetch_commit_records(
    io: &IoEngine,
    keys: &[String],
    mut on_record: impl FnMut(TransactionRecord),
) -> AftResult<()> {
    for wave in keys.chunks(COMMIT_FETCH_WAVE) {
        let outcome = io.get_all(wave.iter().cloned()).wait_all();
        for result in outcome.results {
            let Some(blob) = result?.into_value() else {
                continue;
            };
            if let Ok(record) = decode_commit_record(&blob) {
                on_record(record);
            }
        }
    }
    Ok(())
}

/// Like [`warm_metadata_cache`], but fetches the commit records through the
/// pipelined I/O engine: the listing is one round trip, then the record
/// reads overlap via [`fetch_commit_records`], so a replacement node's
/// cache warm-up does not pay one round trip per record (§6.7's
/// recovery-time concern).
///
/// Returns the number of records loaded.
pub fn warm_metadata_cache_pipelined(
    io: &IoEngine,
    metadata: &MetadataCache,
    limit: usize,
) -> AftResult<usize> {
    let keys = io
        .execute(StorageRequest::List(TransactionRecord::storage_prefix()))
        .result?
        .into_keys();
    let start = keys.len().saturating_sub(limit);
    let mut loaded = 0;
    fetch_commit_records(io, &keys[start..], |record| {
        if metadata.insert(Arc::new(record)) {
            loaded += 1;
        }
    })?;
    Ok(loaded)
}

/// How a checkpoint-aware bootstrap warmed the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BootstrapOutcome {
    /// Records loaded from the checkpoint.
    pub from_checkpoint: usize,
    /// Records loaded from the commit-set tail (or the whole set on full
    /// replay).
    pub from_tail: usize,
    /// Whether a valid checkpoint was found and used.
    pub used_checkpoint: bool,
    /// Checkpoints that were present but rejected (torn/corrupt) before a
    /// valid one was found.
    pub rejected_checkpoints: usize,
    /// Bytes fetched from storage (checkpoint blobs + commit records).
    pub bytes_read: u64,
    /// Simulated latency charged for the whole warm-up.
    pub cost: Duration,
}

impl BootstrapOutcome {
    /// Total records loaded.
    pub fn loaded(&self) -> usize {
        self.from_checkpoint + self.from_tail
    }
}

/// Like [`warm_metadata_cache_pipelined`], but bootstraps from **checkpoint +
/// tail**: the newest valid checkpoint (see
/// [`aft_storage::checkpoint::load_latest_checkpoint`] — torn checkpoints are
/// CRC-rejected with clean fallback) seeds the cache, then only commit
/// records *above* its high-water mark are replayed. With no usable
/// checkpoint this degenerates to full replay, so recovery cost tracks the
/// tail, not the history.
///
/// `probe`, when present, is consulted at
/// [`CommitPhase::DuringCheckpointBootstrap`] — after the checkpoint is
/// applied, before the tail fetch — so chaos plans can kill a replacement
/// node mid-bootstrap and prove the *next* attempt still converges.
pub fn warm_metadata_cache_checkpointed(
    io: &IoEngine,
    metadata: &MetadataCache,
    limit: usize,
    node_id: &str,
    probe: Option<&Arc<dyn CommitProbe>>,
) -> AftResult<BootstrapOutcome> {
    let mut outcome = BootstrapOutcome::default();

    let load = load_latest_checkpoint(io)?;
    outcome.rejected_checkpoints = load.rejected;
    outcome.bytes_read += load.bytes_read;
    outcome.cost += load.cost;

    let mut sentinel = TransactionId::new(0, Uuid::NIL);
    let mut covered = std::collections::HashSet::new();
    if let Some(checkpoint) = load.checkpoint {
        outcome.used_checkpoint = true;
        sentinel = TransactionId::new(checkpoint.id, Uuid::NIL);
        for record in checkpoint.records {
            covered.insert(record.storage_key());
            if metadata.insert(Arc::new(record)) {
                outcome.from_checkpoint += 1;
            }
        }
    }
    // The kill point sits between applying the checkpoint and fetching the
    // tail — fired even on full replay, so chaos plans can tear a bootstrap
    // whether or not a checkpoint exists yet.
    if let Some(probe) = probe {
        probe.before_phase(node_id, &sentinel, CommitPhase::DuringCheckpointBootstrap)?;
    }

    // The tail is every commit record the checkpoint does not cover — not
    // merely keys above its high-water mark. A record below the mark that
    // the checkpointing node had not yet learned (a §4.2 lost broadcast, an
    // in-flight dissemination) must still be fetched, or the bootstrap
    // would silently shrink the commit set.
    let listed = io.execute(StorageRequest::List(TransactionRecord::storage_prefix()));
    outcome.cost += listed.cost;
    let mut keys = listed.result?.into_keys();
    if !covered.is_empty() {
        keys.retain(|key| !covered.contains(key));
    }
    let start = keys.len().saturating_sub(limit);
    for wave in keys[start..].chunks(COMMIT_FETCH_WAVE) {
        let batch = io.get_all(wave.iter().cloned()).wait_all();
        outcome.cost += batch.cost;
        for result in batch.results {
            let Some(blob) = result?.into_value() else {
                continue;
            };
            outcome.bytes_read += blob.len() as u64;
            if let Ok(record) = decode_commit_record(&blob) {
                if metadata.insert(Arc::new(record)) {
                    outcome.from_tail += 1;
                }
            }
        }
    }
    Ok(outcome)
}

/// Checks whether a transaction committed, by looking for its commit record
/// in storage.
///
/// This is the recovery rule of §3.3.1: after an AFT node failure, a client
/// that had called `CommitTransaction` but never got an acknowledgement can
/// ask any node to consult storage; if the commit record exists the
/// transaction is durable and successful, otherwise the client must retry.
pub fn commit_record_exists(
    storage: &SharedStorage,
    id: &aft_types::TransactionId,
) -> AftResult<bool> {
    Ok(storage
        .get(&TransactionRecord::storage_key_for(id))?
        .is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_storage::InMemoryStore;
    use aft_types::codec::encode_commit_record;
    use aft_types::{Key, TransactionId, Uuid};

    fn tid(ts: u64) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(ts as u128))
    }

    fn put_record(storage: &SharedStorage, ts: u64, keys: &[&str]) -> TransactionRecord {
        let record = TransactionRecord::new(tid(ts), keys.iter().map(Key::new));
        storage
            .put(&record.storage_key(), encode_commit_record(&record))
            .unwrap();
        record
    }

    #[test]
    fn warm_cache_loads_all_records() {
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=5 {
            put_record(&storage, ts, &["k"]);
        }
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap();
        assert_eq!(loaded, 5);
        assert_eq!(metadata.len(), 5);
        assert_eq!(metadata.latest_version_of(&Key::new("k")), Some(tid(5)));
    }

    #[test]
    fn warm_cache_respects_limit_and_prefers_recent() {
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=10 {
            put_record(&storage, ts, &["k"]);
        }
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, 3).unwrap();
        assert_eq!(loaded, 3);
        assert!(metadata.is_committed(&tid(10)));
        assert!(metadata.is_committed(&tid(8)));
        assert!(!metadata.is_committed(&tid(1)));
    }

    #[test]
    fn corrupt_records_are_skipped() {
        let storage: SharedStorage = InMemoryStore::shared();
        put_record(&storage, 1, &["k"]);
        storage
            .put("commit/garbage", bytes::Bytes::from_static(b"not a record"))
            .unwrap();
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap();
        assert_eq!(loaded, 1);
    }

    #[test]
    fn commit_record_existence_check() {
        let storage: SharedStorage = InMemoryStore::shared();
        let record = put_record(&storage, 7, &["k"]);
        assert!(commit_record_exists(&storage, &record.id).unwrap());
        assert!(!commit_record_exists(&storage, &tid(8)).unwrap());
    }

    #[test]
    fn empty_storage_warms_nothing() {
        let storage: SharedStorage = InMemoryStore::shared();
        let metadata = MetadataCache::new();
        assert_eq!(
            warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap(),
            0
        );
        assert!(metadata.is_empty());
    }

    #[test]
    fn pipelined_warm_matches_sequential_warm() {
        use aft_storage::io::{IoConfig, IoEngine};
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=300 {
            put_record(&storage, ts, &["k"]);
        }
        storage
            .put("commit/garbage", bytes::Bytes::from_static(b"junk"))
            .unwrap();

        let sequential = MetadataCache::new();
        let loaded_seq = warm_metadata_cache(&storage, &sequential, usize::MAX).unwrap();

        let io = IoEngine::new(storage.clone(), IoConfig::pipelined());
        let pipelined = MetadataCache::new();
        let loaded_pipe = warm_metadata_cache_pipelined(&io, &pipelined, usize::MAX).unwrap();

        assert_eq!(loaded_seq, loaded_pipe);
        assert_eq!(sequential.len(), pipelined.len());
        assert_eq!(
            pipelined.latest_version_of(&Key::new("k")),
            Some(tid(300)),
            "multi-wave overlapped warm must load every record"
        );

        // The limit applies to the pipelined variant too. The garbage key
        // sorts last, so the 5-key tail holds 4 decodable records.
        let limited = MetadataCache::new();
        assert_eq!(warm_metadata_cache_pipelined(&io, &limited, 5).unwrap(), 4);
        assert!(limited.is_committed(&tid(300)));
        assert!(!limited.is_committed(&tid(1)));
    }

    use aft_storage::checkpoint::publish_checkpoint;
    use aft_storage::io::{IoConfig, IoEngine};
    use aft_storage::Checkpoint;
    use aft_types::AftError;
    use parking_lot::Mutex;

    /// A probe that records every phase it sees and optionally crashes on the
    /// first checkpoint-bootstrap call.
    struct RecordingProbe {
        seen: Mutex<Vec<CommitPhase>>,
        crash_once: Mutex<bool>,
    }

    impl RecordingProbe {
        fn new(crash_once: bool) -> Arc<Self> {
            Arc::new(Self {
                seen: Mutex::new(Vec::new()),
                crash_once: Mutex::new(crash_once),
            })
        }
    }

    impl CommitProbe for RecordingProbe {
        fn before_phase(
            &self,
            _node_id: &str,
            _txid: &TransactionId,
            phase: CommitPhase,
        ) -> AftResult<()> {
            self.seen.lock().push(phase);
            let mut crash = self.crash_once.lock();
            if *crash {
                *crash = false;
                return Err(AftError::Unavailable("killed during bootstrap".into()));
            }
            Ok(())
        }
    }

    fn seeded_engine(total: u64) -> (IoEngine, Vec<TransactionRecord>) {
        let storage: SharedStorage = InMemoryStore::shared();
        let mut records = Vec::new();
        for ts in 1..=total {
            records.push(put_record(&storage, ts, &[&format!("k{}", ts % 7)]));
        }
        (IoEngine::new(storage, IoConfig::pipelined()), records)
    }

    #[test]
    fn checkpointed_bootstrap_matches_full_replay() {
        let (io, records) = seeded_engine(40);
        // Checkpoint covers the first 25 commits.
        let checkpoint = Checkpoint::new(9_000, records[..25].to_vec());
        publish_checkpoint(&io, &checkpoint, || Ok(())).unwrap();

        let replayed = MetadataCache::new();
        warm_metadata_cache_pipelined(&io, &replayed, usize::MAX).unwrap();

        let warmed = MetadataCache::new();
        let outcome =
            warm_metadata_cache_checkpointed(&io, &warmed, usize::MAX, "n0", None).unwrap();
        assert!(outcome.used_checkpoint);
        assert_eq!(outcome.from_checkpoint, 25);
        assert_eq!(outcome.from_tail, 15);
        assert_eq!(outcome.loaded(), replayed.len());
        assert!(outcome.bytes_read > 0);
        for record in &records {
            assert!(warmed.is_committed(&record.id));
            assert_eq!(
                warmed.latest_version_of(&record.write_set.iter().next().unwrap().clone()),
                replayed.latest_version_of(&record.write_set.iter().next().unwrap().clone())
            );
        }
    }

    #[test]
    fn checkpointed_bootstrap_without_checkpoint_is_full_replay() {
        let (io, _) = seeded_engine(12);
        let warmed = MetadataCache::new();
        let outcome =
            warm_metadata_cache_checkpointed(&io, &warmed, usize::MAX, "n0", None).unwrap();
        assert!(!outcome.used_checkpoint);
        assert_eq!(outcome.from_checkpoint, 0);
        assert_eq!(outcome.from_tail, 12);
        assert_eq!(warmed.len(), 12);
    }

    #[test]
    fn bootstrap_probe_fires_between_checkpoint_and_tail() {
        let (io, records) = seeded_engine(10);
        let checkpoint = Checkpoint::new(7, records[..6].to_vec());
        publish_checkpoint(&io, &checkpoint, || Ok(())).unwrap();

        // First attempt is killed mid-bootstrap; the retry must converge.
        let probe = RecordingProbe::new(true);
        let as_probe: Arc<dyn CommitProbe> = probe.clone();
        let warmed = MetadataCache::new();
        let err = warm_metadata_cache_checkpointed(&io, &warmed, usize::MAX, "n0", Some(&as_probe));
        assert!(err.is_err(), "armed probe must abort the first bootstrap");

        let retry = MetadataCache::new();
        let outcome =
            warm_metadata_cache_checkpointed(&io, &retry, usize::MAX, "n0", Some(&as_probe))
                .unwrap();
        assert_eq!(outcome.loaded(), 10);
        assert_eq!(
            probe.seen.lock().as_slice(),
            &[
                CommitPhase::DuringCheckpointBootstrap,
                CommitPhase::DuringCheckpointBootstrap
            ]
        );
    }

    #[test]
    fn torn_latest_checkpoint_falls_back_to_previous() {
        let (io, records) = seeded_engine(20);
        let older = Checkpoint::new(100, records[..10].to_vec());
        publish_checkpoint(&io, &older, || Ok(())).unwrap();
        let newer = Checkpoint::new(200, records[..18].to_vec());
        let outcome = publish_checkpoint(&io, &newer, || Ok(())).unwrap();

        // Tear the newest manifest: truncate its bytes.
        let manifest_key = aft_storage::checkpoint::manifest_key(outcome.id);
        let full = io.storage().get(&manifest_key).unwrap().unwrap();
        io.storage()
            .put(
                &manifest_key,
                bytes::Bytes::copy_from_slice(&full[..full.len() / 2]),
            )
            .unwrap();

        let warmed = MetadataCache::new();
        let outcome =
            warm_metadata_cache_checkpointed(&io, &warmed, usize::MAX, "n0", None).unwrap();
        assert!(outcome.used_checkpoint);
        assert_eq!(outcome.rejected_checkpoints, 1);
        assert_eq!(outcome.from_checkpoint, 10);
        assert_eq!(outcome.from_tail, 10);
        assert_eq!(warmed.len(), 20);
    }
}
