//! Node bootstrap and recovery.
//!
//! When an AFT node starts — including when a replacement node comes up after
//! a failure (§6.7) — it warms its metadata cache by reading the latest
//! records in the Transaction Commit Set from storage (§3.1). Nothing else
//! needs to be recovered: the write-ordering protocol guarantees that any
//! transaction with a durable commit record also has durable data (§3.3.1),
//! and any transaction without one is simply not committed (clients retry).

use std::sync::Arc;

use aft_storage::SharedStorage;
use aft_types::codec::decode_commit_record;
use aft_types::{AftResult, TransactionRecord};

use crate::metadata::MetadataCache;

/// Reads commit records from storage and inserts them into `metadata`.
///
/// `limit` bounds how many of the *most recent* records are loaded (commit
/// keys sort in commit-time order, so the tail of the listing is the most
/// recent). `usize::MAX` loads everything.
///
/// Returns the number of records loaded. Undecodable records are skipped —
/// a half-written commit record means the transaction never committed.
pub fn warm_metadata_cache(
    storage: &SharedStorage,
    metadata: &MetadataCache,
    limit: usize,
) -> AftResult<usize> {
    let keys = storage.list_prefix(&TransactionRecord::storage_prefix())?;
    let start = keys.len().saturating_sub(limit);
    let mut loaded = 0;
    for key in &keys[start..] {
        let Some(blob) = storage.get(key)? else {
            // Deleted by the global GC between the listing and the read.
            continue;
        };
        match decode_commit_record(&blob) {
            Ok(record) => {
                if metadata.insert(Arc::new(record)) {
                    loaded += 1;
                }
            }
            Err(_) => continue,
        }
    }
    Ok(loaded)
}

/// Checks whether a transaction committed, by looking for its commit record
/// in storage.
///
/// This is the recovery rule of §3.3.1: after an AFT node failure, a client
/// that had called `CommitTransaction` but never got an acknowledgement can
/// ask any node to consult storage; if the commit record exists the
/// transaction is durable and successful, otherwise the client must retry.
pub fn commit_record_exists(
    storage: &SharedStorage,
    id: &aft_types::TransactionId,
) -> AftResult<bool> {
    Ok(storage
        .get(&TransactionRecord::storage_key_for(id))?
        .is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_storage::InMemoryStore;
    use aft_types::codec::encode_commit_record;
    use aft_types::{Key, TransactionId, Uuid};

    fn tid(ts: u64) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(ts as u128))
    }

    fn put_record(storage: &SharedStorage, ts: u64, keys: &[&str]) -> TransactionRecord {
        let record = TransactionRecord::new(tid(ts), keys.iter().map(Key::new));
        storage
            .put(&record.storage_key(), encode_commit_record(&record))
            .unwrap();
        record
    }

    #[test]
    fn warm_cache_loads_all_records() {
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=5 {
            put_record(&storage, ts, &["k"]);
        }
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap();
        assert_eq!(loaded, 5);
        assert_eq!(metadata.len(), 5);
        assert_eq!(metadata.latest_version_of(&Key::new("k")), Some(tid(5)));
    }

    #[test]
    fn warm_cache_respects_limit_and_prefers_recent() {
        let storage: SharedStorage = InMemoryStore::shared();
        for ts in 1..=10 {
            put_record(&storage, ts, &["k"]);
        }
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, 3).unwrap();
        assert_eq!(loaded, 3);
        assert!(metadata.is_committed(&tid(10)));
        assert!(metadata.is_committed(&tid(8)));
        assert!(!metadata.is_committed(&tid(1)));
    }

    #[test]
    fn corrupt_records_are_skipped() {
        let storage: SharedStorage = InMemoryStore::shared();
        put_record(&storage, 1, &["k"]);
        storage
            .put("commit/garbage", bytes::Bytes::from_static(b"not a record"))
            .unwrap();
        let metadata = MetadataCache::new();
        let loaded = warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap();
        assert_eq!(loaded, 1);
    }

    #[test]
    fn commit_record_existence_check() {
        let storage: SharedStorage = InMemoryStore::shared();
        let record = put_record(&storage, 7, &["k"]);
        assert!(commit_record_exists(&storage, &record.id).unwrap());
        assert!(!commit_record_exists(&storage, &tid(8)).unwrap());
    }

    #[test]
    fn empty_storage_warms_nothing() {
        let storage: SharedStorage = InMemoryStore::shared();
        let metadata = MetadataCache::new();
        assert_eq!(
            warm_metadata_cache(&storage, &metadata, usize::MAX).unwrap(),
            0
        );
        assert!(metadata.is_empty());
    }
}
