//! Group commit: coalescing concurrent transaction commits.
//!
//! The paper's commit protocol issues, per transaction, one batched write for
//! the transaction's key versions and one write for its commit record (§3.3),
//! and notes that batching writes to reduce storage API calls is what makes
//! AFT cheap over services that bill per request (§6.1.1). This module takes
//! the idea one step further, the way transactional workflow systems batch
//! log appends: commits that *arrive concurrently* on one node are coalesced
//! into a single storage flush — one multi-put covering every transaction's
//! data items followed by one append covering every commit record.
//!
//! Flushes run through the pipelined I/O engine
//! ([`aft_storage::io::IoEngine`]): the batch's data items are submitted
//! concurrently, the flush barriers on their completions, and only then are
//! the records appended — so an 8-key commit overlaps its data round trips
//! instead of paying them one after another.
//!
//! The protocol's write ordering is preserved for every member of a batch:
//! all data items are durable before any commit record is written, and a
//! transaction only becomes visible (in the caller, after `submit` returns)
//! once its own commit record is durable. Coalescing strictly *adds* durable
//! records between a member's data and its visibility, which the protocol
//! already tolerates (a commit record with unreadable siblings is exactly the
//! multicast-lag case of §4).
//!
//! Batching policy, tuned by [`BatchConfig`]:
//!
//! * With `max_delay == 0` (the default) a committer that finds the flush
//!   token free flushes whatever is queued at that instant — itself plus any
//!   commits that queued while the previous flush was in flight. This
//!   "natural" group commit adds **zero** latency for an uncontended client
//!   and grows batches automatically as storage latency and offered load
//!   rise.
//! * With `max_delay > 0` the flush leader waits up to that long for the
//!   queue to reach `max_batch`, trading commit latency for fewer storage
//!   API calls (the classic group-commit window).

use std::time::{Duration, Instant};

use aft_storage::io::{IoEngine, StorageRequest};
use aft_types::{AftResult, Value};
use parking_lot::{Condvar, Mutex};

/// Tuning for the commit batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commits coalesced into one flush (≥ 1).
    pub max_batch: usize,
    /// How long a flush leader waits for the queue to fill before flushing.
    /// Zero flushes immediately with whatever has queued.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_delay: Duration::ZERO,
        }
    }
}

impl BatchConfig {
    /// A configuration that disables coalescing: every commit flushes alone,
    /// reproducing the unbatched protocol exactly.
    pub fn disabled() -> Self {
        BatchConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// Sets the maximum batch size (clamped to ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the group-commit window.
    pub fn with_max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }
}

/// Point-in-time counters of a [`CommitBatcher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Commits submitted through the batcher.
    pub submitted: u64,
    /// Storage flushes performed (each is ≤ one data multi-put plus one
    /// metadata append).
    pub flushes: u64,
    /// Largest number of commits coalesced into one flush.
    pub largest_batch: u64,
}

impl BatchStats {
    /// Mean commits per flush; 1.0 means no coalescing happened.
    pub fn mean_batch(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.submitted as f64 / self.flushes as f64
        }
    }
}

/// One queued commit: the transaction's data items and its commit record.
struct Entry {
    seq: u64,
    data: Vec<(String, Value)>,
    record_key: String,
    record_value: Value,
}

#[derive(Default)]
struct State {
    queue: Vec<Entry>,
    /// Results of flushed entries, keyed by sequence number, awaiting pickup
    /// by their submitting threads. A successful flush reports the simulated
    /// storage latency it charged (data barrier + record append).
    completed: std::collections::HashMap<u64, AftResult<Duration>>,
    /// Whether some thread currently holds the flush token.
    flushing: bool,
    next_seq: u64,
    stats: BatchStats,
}

/// Coalesces concurrently submitted commits into shared storage flushes.
pub struct CommitBatcher {
    config: BatchConfig,
    state: Mutex<State>,
    wakeup: Condvar,
}

impl CommitBatcher {
    /// Creates a batcher with the given tuning.
    pub fn new(config: BatchConfig) -> Self {
        CommitBatcher {
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
                max_delay: config.max_delay,
            },
            state: Mutex::new(State::default()),
            wakeup: Condvar::new(),
        }
    }

    /// The batcher's tuning.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Counters since creation.
    pub fn stats(&self) -> BatchStats {
        self.state.lock().stats
    }

    /// Durably writes one transaction's `data` items and then its commit
    /// record, possibly coalesced with concurrently submitted commits, all
    /// through the pipelined I/O engine. Returns the flush's charged storage
    /// latency once this transaction's commit record is durable; on a
    /// storage error every member of the failed flush gets the error.
    pub fn submit(
        &self,
        io: &IoEngine,
        data: Vec<(String, Value)>,
        record_key: String,
        record_value: Value,
    ) -> AftResult<Duration> {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        state.stats.submitted += 1;
        state.queue.push(Entry {
            seq,
            data,
            record_key,
            record_value,
        });
        // A leader may be sleeping in its group-commit window; let it see
        // the queue grow (and possibly reach max_batch).
        self.wakeup.notify_all();

        loop {
            if let Some(result) = state.completed.remove(&seq) {
                return result;
            }
            if state.flushing {
                // Another thread holds the flush token; it will either flush
                // our entry or hand the token back.
                self.wakeup.wait(&mut state);
                continue;
            }
            state.flushing = true;

            // Group-commit window: wait for more commits, bounded by
            // max_delay and max_batch. Our own entry is already queued.
            if !self.config.max_delay.is_zero() {
                let deadline = Instant::now() + self.config.max_delay;
                while state.queue.len() < self.config.max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    if self.wakeup.wait_for(&mut state, deadline - now).timed_out() {
                        break;
                    }
                }
            }

            let take = state.queue.len().min(self.config.max_batch);
            let batch: Vec<Entry> = state.queue.drain(..take).collect();
            state.stats.flushes += 1;
            state.stats.largest_batch = state.stats.largest_batch.max(batch.len() as u64);
            drop(state);

            let result = Self::flush(io, &batch);

            state = self.state.lock();
            for entry in batch {
                state.completed.insert(entry.seq, result.clone());
            }
            state.flushing = false;
            // Wake waiters: batch members pick up results, queued entries
            // beyond max_batch elect the next leader.
            self.wakeup.notify_all();
        }
    }

    /// One coalesced storage flush through the I/O engine: every member's
    /// data items are submitted concurrently, the flush **barriers** on all
    /// their completions (§3.3's write ordering — all data durable first),
    /// and only then are the commit records appended. Returns the flush's
    /// charged storage latency: the data barrier's overlapped cost plus the
    /// record append's.
    fn flush(io: &IoEngine, batch: &[Entry]) -> AftResult<Duration> {
        let data: Vec<(String, Value)> =
            batch.iter().flat_map(|e| e.data.iter().cloned()).collect();
        let mut cost = Duration::ZERO;
        if !data.is_empty() {
            cost += io.put_all(data)?;
        }
        let records: Vec<(String, Value)> = batch
            .iter()
            .map(|e| (e.record_key.clone(), e.record_value.clone()))
            .collect();
        // A single record keeps the cheaper single-put path; multi-record
        // appends overlap like any other batch.
        cost += if records.len() == 1 {
            let (key, value) = records.into_iter().next().expect("len checked");
            let outcome = io.execute(StorageRequest::Put(key, value));
            outcome.result.map(|_| outcome.cost)?
        } else {
            io.put_all(records)?
        };
        Ok(cost)
    }
}

impl std::fmt::Debug for CommitBatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommitBatcher")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_storage::io::IoConfig;
    use aft_storage::{InMemoryStore, OpKind, SharedStorage, StorageEngine};
    use bytes::Bytes;
    use std::sync::Arc;

    fn val(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn engine_over(store: &Arc<InMemoryStore>) -> IoEngine {
        IoEngine::new(store.clone() as SharedStorage, IoConfig::pipelined())
    }

    #[test]
    fn single_commit_flushes_immediately() {
        let store = InMemoryStore::shared();
        let io = engine_over(&store);
        let batcher = CommitBatcher::new(BatchConfig::default());
        batcher
            .submit(
                &io,
                vec![("data/k/1".into(), val("v"))],
                "commit/1".into(),
                val("r"),
            )
            .unwrap();
        assert!(store.get("data/k/1").unwrap().is_some());
        assert!(store.get("commit/1").unwrap().is_some());
        let stats = batcher.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.largest_batch, 1);
    }

    #[test]
    fn read_only_commits_write_only_the_record() {
        let store = InMemoryStore::shared();
        let io = engine_over(&store);
        let batcher = CommitBatcher::new(BatchConfig::default());
        batcher
            .submit(&io, Vec::new(), "commit/ro".into(), val("r"))
            .unwrap();
        assert_eq!(store.stats().calls(OpKind::BatchPut), 0);
        assert_eq!(store.stats().calls(OpKind::Put), 1);
    }

    #[test]
    fn window_coalesces_concurrent_commits() {
        let store = InMemoryStore::shared();
        let io = engine_over(&store);
        let batcher = Arc::new(CommitBatcher::new(
            BatchConfig::default()
                .with_max_batch(8)
                .with_max_delay(Duration::from_millis(100)),
        ));
        let threads = 8;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let batcher = Arc::clone(&batcher);
                let io = &io;
                scope.spawn(move || {
                    batcher
                        .submit(
                            io,
                            vec![(format!("data/k/{t}"), val("v"))],
                            format!("commit/{t}"),
                            val("r"),
                        )
                        .unwrap();
                });
            }
        });
        let stats = batcher.stats();
        assert_eq!(stats.submitted, 8);
        assert!(
            stats.flushes < 8,
            "a 100ms window must coalesce at least two of eight concurrent \
             commits (flushes: {})",
            stats.flushes
        );
        assert!(stats.largest_batch >= 2);
        // Every commit is durable regardless of which flush carried it.
        for t in 0..threads {
            assert!(store.get(&format!("commit/{t}")).unwrap().is_some());
        }
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let store = InMemoryStore::shared();
        let io = engine_over(&store);
        let batcher = Arc::new(CommitBatcher::new(BatchConfig::disabled()));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let batcher = Arc::clone(&batcher);
                let io = &io;
                scope.spawn(move || {
                    batcher
                        .submit(io, Vec::new(), format!("commit/{t}"), val("r"))
                        .unwrap();
                });
            }
        });
        let stats = batcher.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.flushes, 4);
        assert_eq!(stats.largest_batch, 1);
    }

    #[test]
    fn data_is_written_before_records() {
        // After any successful submit, observing a commit record implies the
        // data it references is present (the §3.3 write ordering) — the data
        // barrier fires before the record append is even submitted.
        let store = InMemoryStore::shared();
        let io = engine_over(&store);
        let batcher = Arc::new(CommitBatcher::new(BatchConfig::default().with_max_batch(4)));
        std::thread::scope(|scope| {
            for t in 0..16 {
                let batcher = Arc::clone(&batcher);
                let io = &io;
                let store = store.clone();
                scope.spawn(move || {
                    batcher
                        .submit(
                            io,
                            vec![(format!("data/k/{t}"), val("v"))],
                            format!("commit/{t}"),
                            val("r"),
                        )
                        .unwrap();
                    // Immediately after our commit returns, our data must be
                    // readable.
                    assert!(store.get(&format!("data/k/{t}")).unwrap().is_some());
                });
            }
        });
        assert_eq!(store.len(), 32);
    }

    #[test]
    fn flush_reports_its_charged_storage_latency() {
        use aft_storage::latency::LatencyProfile;
        use aft_storage::{LatencyMode, LatencyModel, ServiceProfile, SimS3};
        // A fixed 20ms write latency (no variance) makes the accounting
        // exact: an 8-key commit charges one overlapped data round trip plus
        // the record append — 40ms — where sequential charging would be
        // 9 × 20ms.
        let profile = ServiceProfile {
            write: LatencyProfile::new(20_000.0, 20_000.0),
            ..ServiceProfile::zero()
        };
        let storage: SharedStorage =
            SimS3::with_profile(profile, LatencyModel::new(LatencyMode::Virtual, 1.0), 5);
        let io = IoEngine::new(storage, IoConfig::pipelined());
        let batcher = CommitBatcher::new(BatchConfig::disabled());
        let data: Vec<(String, Value)> =
            (0..8).map(|i| (format!("data/k/{i}"), val("v"))).collect();
        let cost = batcher
            .submit(&io, data, "commit/1".into(), val("r"))
            .unwrap();
        assert!(
            cost >= Duration::from_millis(39) && cost <= Duration::from_millis(42),
            "barrier(max of 8 × 20ms) + record(20ms) ≈ 40ms, got {cost:?}"
        );
    }

    #[test]
    fn zero_max_batch_is_clamped() {
        let batcher = CommitBatcher::new(BatchConfig::default().with_max_batch(0));
        assert_eq!(batcher.config().max_batch, 1);
    }
}
