//! Local metadata garbage collection (§5.1).
//!
//! Without garbage collection two things grow without bound: the commit
//! metadata cached (and stored) for every transaction ever committed, and the
//! key versions written to storage. Each node bounds the first locally: a
//! background sweep walks its cached commit records oldest-first and drops
//! every transaction that (a) is superseded (Algorithm 2) and (b) has no
//! running transaction that read from its write set. Data in *storage* is
//! never deleted locally — that requires the global protocol driven by the
//! fault manager (§5.2), which `aft-cluster` implements on top of the hooks
//! exposed here.

use std::time::Duration;

/// Configuration of a node's local metadata GC sweeps.
#[derive(Debug, Clone, Copy)]
pub struct LocalGcConfig {
    /// Maximum number of transactions to delete in one sweep; bounds the time
    /// spent holding metadata locks.
    pub max_deletions_per_sweep: usize,
    /// How often the background sweep runs when driven by a cluster
    /// deployment.
    pub sweep_interval: Duration,
    /// Never garbage collect a transaction until at least this much time has
    /// passed since its commit timestamp, giving in-flight readers on *other*
    /// nodes a grace period (mitigates the §5.2.1 missing-version hazard).
    pub min_age: Duration,
}

impl Default for LocalGcConfig {
    fn default() -> Self {
        LocalGcConfig {
            max_deletions_per_sweep: 10_000,
            sweep_interval: Duration::from_secs(1),
            min_age: Duration::from_millis(0),
        }
    }
}

impl LocalGcConfig {
    /// A configuration that deletes aggressively; used by GC stress tests to
    /// provoke the missing-version condition of §5.2.1.
    pub fn aggressive() -> Self {
        LocalGcConfig {
            max_deletions_per_sweep: usize::MAX,
            sweep_interval: Duration::from_millis(10),
            min_age: Duration::ZERO,
        }
    }
}

/// The result of one local GC sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Commit records examined.
    pub examined: usize,
    /// Records that were superseded but kept because a running transaction
    /// had read from them.
    pub retained_for_readers: usize,
    /// Records removed from the metadata cache in this sweep.
    pub deleted: usize,
}

impl GcOutcome {
    /// Merges two sweep outcomes (used when a sweep is split into batches).
    pub fn merge(self, other: GcOutcome) -> GcOutcome {
        GcOutcome {
            examined: self.examined + other.examined,
            retained_for_readers: self.retained_for_readers + other.retained_for_readers,
            deleted: self.deleted + other.deleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = LocalGcConfig::default();
        assert!(config.max_deletions_per_sweep > 0);
        assert!(config.sweep_interval > Duration::ZERO);
    }

    #[test]
    fn aggressive_config_has_no_limits() {
        let config = LocalGcConfig::aggressive();
        assert_eq!(config.max_deletions_per_sweep, usize::MAX);
        assert_eq!(config.min_age, Duration::ZERO);
    }

    #[test]
    fn outcomes_merge_componentwise() {
        let a = GcOutcome {
            examined: 3,
            retained_for_readers: 1,
            deleted: 2,
        };
        let b = GcOutcome {
            examined: 5,
            retained_for_readers: 0,
            deleted: 4,
        };
        let merged = a.merge(b);
        assert_eq!(merged.examined, 8);
        assert_eq!(merged.retained_for_readers, 1);
        assert_eq!(merged.deleted, 6);
    }
}
