//! Property-based tests of the core guarantees (§3.2).
//!
//! These tests drive an [`AftNode`] with randomly generated transaction
//! histories and check the paper's invariants end-to-end:
//!
//! * every transaction's read set is an Atomic Readset (Theorem 1),
//! * no transaction ever observes uncommitted or aborted data,
//! * read-your-writes and repeatable read hold,
//! * Algorithm 2 / local GC never remove a version a later read needs for
//!   correctness (it may force a retry, but never a fracture).

use std::collections::HashMap;
use std::sync::Arc;

use aft_core::read::is_atomic_readset;
use aft_core::{AftNode, LocalGcConfig, NodeConfig};
use aft_storage::{InMemoryStore, SharedStorage};
use aft_types::clock::TickingClock;
use aft_types::{Key, TransactionId, Value};
use bytes::Bytes;
use proptest::prelude::*;

/// One step of a randomly generated workload.
#[derive(Debug, Clone)]
enum Step {
    /// Start a new transaction (slot index selects which in-flight slot).
    Begin(usize),
    /// Read a key within the transaction in the given slot.
    Read(usize, u8),
    /// Write a key within the transaction in the given slot.
    Write(usize, u8),
    /// Commit the transaction in the given slot.
    Commit(usize),
    /// Abort the transaction in the given slot.
    Abort(usize),
    /// Run a local GC sweep.
    Gc,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..4usize).prop_map(Step::Begin),
        (0..4usize, 0..6u8).prop_map(|(s, k)| Step::Read(s, k)),
        (0..4usize, 0..6u8).prop_map(|(s, k)| Step::Write(s, k)),
        (0..4usize).prop_map(Step::Commit),
        (0..4usize).prop_map(Step::Abort),
        Just(Step::Gc),
    ]
}

fn key_name(k: u8) -> Key {
    Key::new(format!("key-{k}"))
}

/// The value every committed transaction writes: its slot plus a counter, so
/// each value is unique and identifies the writing transaction.
fn value_for(counter: u64) -> Value {
    Bytes::from(format!("value-{counter}"))
}

fn node() -> Arc<AftNode> {
    let storage: SharedStorage = InMemoryStore::shared();
    AftNode::with_clock(NodeConfig::test(), storage, TickingClock::shared(1, 1)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: after any sequence of operations, every transaction's
    /// observed (key, version) pairs form an Atomic Readset, and dirty /
    /// aborted data is never observed.
    #[test]
    fn read_sets_are_always_atomic(steps in proptest::collection::vec(arb_step(), 1..120)) {
        let node = node();
        // Map from written value -> transaction id, filled at commit time;
        // used to translate observed values back into versions.
        let mut value_writer: HashMap<Value, TransactionId> = HashMap::new();
        let mut slots: Vec<Option<TransactionId>> = vec![None; 4];
        // Reads observed per in-flight transaction: key -> value.
        let mut observed: Vec<HashMap<Key, Value>> = vec![HashMap::new(); 4];
        // Writes buffered per in-flight transaction: key -> value.
        let mut pending_writes: Vec<HashMap<Key, Value>> = vec![HashMap::new(); 4];
        let mut aborted_values: Vec<Value> = Vec::new();
        let mut counter = 0u64;

        for step in steps {
            match step {
                Step::Begin(slot) => {
                    if slots[slot].is_none() {
                        slots[slot] = Some(node.start_transaction());
                        observed[slot].clear();
                        pending_writes[slot].clear();
                    }
                }
                Step::Write(slot, k) => {
                    if let Some(txid) = slots[slot] {
                        counter += 1;
                        let value = value_for(counter);
                        node.put(&txid, key_name(k), value.clone()).unwrap();
                        pending_writes[slot].insert(key_name(k), value);
                    }
                }
                Step::Read(slot, k) => {
                    if let Some(txid) = slots[slot] {
                        let key = key_name(k);
                        match node.get(&txid, &key) {
                            Ok(Some(value)) => {
                                // Read-your-writes: a buffered write must win.
                                if let Some(own) = pending_writes[slot].get(&key) {
                                    prop_assert_eq!(&value, own, "read-your-writes violated");
                                } else {
                                    // Aborted data must never be observed.
                                    prop_assert!(
                                        !aborted_values.contains(&value),
                                        "observed a value written by an aborted transaction"
                                    );
                                    // Repeatable read: same key, same value
                                    // (unless we wrote it ourselves, handled above).
                                    if let Some(prev) = observed[slot].get(&key) {
                                        prop_assert_eq!(prev, &value, "repeatable read violated");
                                    }
                                    observed[slot].insert(key, value);
                                }
                            }
                            Ok(None) => {
                                // NULL read: nothing to record.
                            }
                            Err(aft_types::AftError::NoValidVersion { .. }) => {
                                // Allowed outcome (§3.6): the whole request
                                // would be retried. Keep the transaction going.
                            }
                            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
                        }
                    }
                }
                Step::Commit(slot) => {
                    if let Some(txid) = slots[slot].take() {
                        let final_id = node.commit(&txid).unwrap();
                        for value in pending_writes[slot].values() {
                            value_writer.insert(value.clone(), final_id);
                        }
                        // Check atomicity of everything this transaction read
                        // from *other* transactions.
                        let reads: Vec<(Key, TransactionId)> = observed[slot]
                            .iter()
                            .filter_map(|(key, value)| {
                                value_writer.get(value).map(|tid| (key.clone(), *tid))
                            })
                            .collect();
                        prop_assert!(
                            is_atomic_readset(&reads, node.metadata()),
                            "fractured read set observed: {reads:?}"
                        );
                        observed[slot].clear();
                        pending_writes[slot].clear();
                    }
                }
                Step::Abort(slot) => {
                    if let Some(txid) = slots[slot].take() {
                        node.abort(&txid).unwrap();
                        aborted_values.extend(pending_writes[slot].values().cloned());
                        observed[slot].clear();
                        pending_writes[slot].clear();
                    }
                }
                Step::Gc => {
                    node.run_local_gc(&LocalGcConfig::default());
                }
            }
        }
    }

    /// The write-ordering protocol: every version readable by a fresh
    /// transaction belongs to a transaction whose commit record exists in
    /// storage.
    #[test]
    fn visible_data_always_has_a_durable_commit_record(
        writes in proptest::collection::vec((0..6u8, any::<bool>()), 1..40)
    ) {
        let node = node();
        let mut committed_values = Vec::new();
        let mut aborted_values = Vec::new();
        let mut counter = 0u64;

        for (k, commit) in writes {
            let t = node.start_transaction();
            counter += 1;
            let value = value_for(counter);
            node.put(&t, key_name(k), value.clone()).unwrap();
            if commit {
                node.commit(&t).unwrap();
                committed_values.push(value);
            } else {
                node.abort(&t).unwrap();
                aborted_values.push(value);
            }
        }

        let reader = node.start_transaction();
        for k in 0..6u8 {
            if let Ok(Some(value)) = node.get(&reader, &key_name(k)) {
                prop_assert!(committed_values.contains(&value));
                prop_assert!(!aborted_values.contains(&value));
            }
        }
    }

    /// Local GC plus supersedence never loses the *latest* committed version
    /// of any key: a fresh transaction always reads the newest value.
    #[test]
    fn gc_never_hides_the_latest_version(
        writes in proptest::collection::vec(0..4u8, 1..60),
        gc_every in 1usize..8
    ) {
        let node = node();
        let mut latest: HashMap<Key, Value> = HashMap::new();
        let mut counter = 0u64;

        for (i, k) in writes.iter().enumerate() {
            let t = node.start_transaction();
            counter += 1;
            let value = value_for(counter);
            node.put(&t, key_name(*k), value.clone()).unwrap();
            node.commit(&t).unwrap();
            latest.insert(key_name(*k), value);
            if i % gc_every == 0 {
                node.run_local_gc(&LocalGcConfig::aggressive());
            }
        }
        node.run_local_gc(&LocalGcConfig::aggressive());

        let reader = node.start_transaction();
        for (key, expected) in &latest {
            let got = node.get(&reader, key).unwrap();
            prop_assert_eq!(got.as_ref(), Some(expected), "key {} lost its latest version", key);
        }
    }
}
