//! Concurrency stress: AFT's guarantees must not bend under lock striping
//! and batched commits.
//!
//! Barrier-started client threads hammer one AFT node over a striped
//! in-memory backend with group commit enabled, mixing reads and commits
//! over a small contended key space. Every transaction's observed read set
//! must remain an Atomic Readset (§3.2) — zero fractured reads, zero
//! read-your-writes violations — no matter how commits interleave inside
//! coalesced flushes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use aft_core::read::is_atomic_readset;
use aft_core::{AftNode, BatchConfig, NodeConfig};
use aft_storage::{BackendConfig, BackendKind, SharedStorage};
use aft_types::{AftError, Key, TransactionId, Value};
use bytes::Bytes;

const CLIENTS: usize = 8;
const TXNS_PER_CLIENT: usize = 60;
const KEYS: usize = 16;

/// CI's seed-matrix leg sets `AFT_TEST_SEED` so the same stress runs under
/// several deterministic seeds — "passes once" cannot hide a seed-dependent
/// interleaving. Locally, re-run a failing leg with the seed from the CI
/// job name: `AFT_TEST_SEED=2 cargo test --test stress_sharded`.
fn test_seed() -> u64 {
    std::env::var("AFT_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn key(i: usize) -> Key {
    Key::new(format!("hot/{i:02}"))
}

fn value(client: usize, txn: usize, slot: usize) -> Value {
    Bytes::from(format!("c{client}-t{txn}-s{slot}"))
}

/// Runs the stress workload against `node`; returns (ryw, fractured) counts.
fn hammer(node: &Arc<AftNode>) -> (u64, u64) {
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let ryw_anomalies = AtomicU64::new(0);
    let fr_anomalies = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let node = Arc::clone(node);
            let barrier = Arc::clone(&barrier);
            let ryw_anomalies = &ryw_anomalies;
            let fr_anomalies = &fr_anomalies;
            scope.spawn(move || {
                barrier.wait();
                for txn in 0..TXNS_PER_CLIENT {
                    let txid = node.start_transaction();
                    let mut reads: Vec<(Key, TransactionId)> = Vec::new();
                    let mut written: HashMap<Key, Value> = HashMap::new();
                    let mut aborted = false;

                    // Mixed read/commit workload: 3 reads and 2 writes over a
                    // 16-key space, offsets derived from the loop indices so
                    // clients constantly collide.
                    for slot in 0..5 {
                        let k = key((client * 7 + txn * 3 + slot * 5) % KEYS);
                        if slot % 5 < 3 {
                            match node.get_versioned(&txid, &k) {
                                Ok(Some((observed, Some(version)))) => {
                                    reads.push((k, version));
                                    let _ = observed;
                                }
                                Ok(Some((observed, None))) => {
                                    // Served from our own write buffer:
                                    // read-your-writes must hold bytewise.
                                    if written.get(&k) != Some(&observed) {
                                        ryw_anomalies.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Ok(None) => {}
                                Err(AftError::NoValidVersion { .. }) => {
                                    // §3.6: abort and move on, like a retried
                                    // client request would.
                                    let _ = node.abort(&txid);
                                    aborted = true;
                                    break;
                                }
                                Err(other) => panic!("unexpected read error: {other:?}"),
                            }
                        } else {
                            let v = value(client, txn, slot);
                            node.put(&txid, k.clone(), v.clone()).expect("put");
                            written.insert(k, v);
                        }
                    }
                    if aborted {
                        continue;
                    }
                    if !is_atomic_readset(&reads, node.metadata()) {
                        fr_anomalies.fetch_add(1, Ordering::Relaxed);
                    }
                    node.commit(&txid).expect("commit");
                }
            });
        }
    });

    (
        ryw_anomalies.load(Ordering::Relaxed),
        fr_anomalies.load(Ordering::Relaxed),
    )
}

fn striped_node(batch: BatchConfig) -> Arc<AftNode> {
    let storage: SharedStorage = aft_storage::make_backend(
        BackendConfig::test(BackendKind::Memory)
            .with_stripes(16)
            .with_seed(0xAF7 ^ test_seed().wrapping_mul(0x9E37)),
    );
    let config = NodeConfig {
        commit_batch: batch,
        rng_seed: 0xAF71 ^ test_seed().wrapping_mul(0xC2B2),
        ..NodeConfig::test()
    };
    AftNode::new(config, storage).expect("node over memory backend")
}

#[test]
fn read_atomicity_holds_under_striping_and_batched_commits() {
    let node = striped_node(
        BatchConfig::default()
            .with_max_batch(16)
            .with_max_delay(Duration::from_micros(200)),
    );
    let (ryw, fractured) = hammer(&node);
    assert_eq!(ryw, 0, "read-your-writes anomalies under striped+batched");
    assert_eq!(fractured, 0, "fractured reads under striped+batched");
    assert_eq!(node.in_flight(), 0, "no dangling transactions");

    let stats = node.commit_batch_stats();
    assert!(
        stats.submitted >= (CLIENTS * TXNS_PER_CLIENT / 2) as u64,
        "most transactions commit (some abort on NoValidVersion): {stats:?}"
    );
    // The group-commit window must actually coalesce under 8-way contention.
    assert!(
        stats.mean_batch() > 1.0,
        "expected some coalescing, got {stats:?}"
    );
    // Striping spread the storage accesses across stripes.
    let stripe_counts = node.storage().stats().stripe_counts();
    assert_eq!(stripe_counts.len(), 16);
    assert!(
        stripe_counts.iter().filter(|&&c| c > 0).count() >= 8,
        "hot keys must spread over stripes: {stripe_counts:?}"
    );
}

#[test]
fn read_atomicity_holds_without_batching_too() {
    // Same stress with coalescing disabled: isolates the striping layer.
    let node = striped_node(BatchConfig::disabled());
    let (ryw, fractured) = hammer(&node);
    assert_eq!(ryw, 0);
    assert_eq!(fractured, 0);
    let stats = node.commit_batch_stats();
    assert_eq!(
        stats.submitted, stats.flushes,
        "max_batch=1 never coalesces"
    );
}
