//! Property-based tests of checkpointed recovery: bootstrapping from a
//! checkpoint plus the commit-log tail must be indistinguishable from a full
//! replay of the entire history, for *arbitrary* commit/supersedence
//! interleavings, arbitrary checkpoint cut points, and with or without log
//! compaction.

use std::collections::HashSet;
use std::sync::Arc;

use aft_core::bootstrap::{warm_metadata_cache_checkpointed, warm_metadata_cache_pipelined};
use aft_core::{AftNode, MetadataCache, NodeConfig};
use aft_storage::{InMemoryStore, SharedStorage};
use aft_types::clock::TickingClock;
use aft_types::Key;
use bytes::Bytes;
use proptest::prelude::*;

fn key_name(k: u8) -> Key {
    Key::new(format!("key-{k}"))
}

fn node() -> Arc<AftNode> {
    let storage: SharedStorage = InMemoryStore::shared();
    AftNode::with_clock(NodeConfig::test(), storage, TickingClock::shared(1, 1)).unwrap()
}

/// Commits one transaction writing the given (non-empty) key set.
fn commit_keys(node: &AftNode, keys: &[u8]) -> aft_types::TransactionId {
    let t = node.start_transaction();
    for k in keys {
        node.put(&t, key_name(*k), Bytes::from(format!("v{k}")))
            .unwrap();
    }
    node.commit(&t).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any interleaving of multi-key commits (each later commit
    /// supersedes earlier versions of the keys it overwrites), any cut
    /// point for the checkpoint, and either compaction choice, a fresh
    /// cache bootstrapped from checkpoint + tail observes exactly the
    /// state a full replay of the uncompacted history would: the same
    /// newest version for every key, and every committed transaction
    /// either present or strictly superseded.
    #[test]
    fn checkpoint_plus_tail_equals_full_replay(
        writes in proptest::collection::vec(
            proptest::collection::vec(0..8u8, 1..4), 1..40),
        cut_frac in 0.0..1.0f64,
        compact in any::<bool>(),
    ) {
        let origin = node();
        let cut = ((writes.len() as f64) * cut_frac) as usize;

        let mut committed = Vec::new();
        for keys in &writes[..cut] {
            committed.push((commit_keys(&origin, keys), keys.clone()));
        }
        let outcome = origin.checkpoint_now(compact).unwrap();
        prop_assert_eq!(outcome.compaction.is_some(), compact);
        for keys in &writes[cut..] {
            committed.push((commit_keys(&origin, keys), keys.clone()));
        }

        // The recovering node's view: checkpoint + tail.
        let recovered = MetadataCache::new();
        let boot = warm_metadata_cache_checkpointed(
            origin.io(), &recovered, usize::MAX, "recovering", None).unwrap();
        prop_assert!(boot.used_checkpoint);
        prop_assert_eq!(boot.rejected_checkpoints, 0);

        // Reference 1: the origin node's own metadata cache holds the full
        // uncompacted history (GC never ran). Newest-version equivalence
        // must hold per key regardless of compaction.
        for k in 0..8u8 {
            prop_assert_eq!(
                recovered.latest_version_of(&key_name(k)),
                origin.metadata().latest_version_of(&key_name(k)),
                "newest version of {} diverged", key_name(k)
            );
        }

        // Every acked commit is either present or strictly superseded on
        // every key it wrote — nothing is silently lost.
        for (id, keys) in &committed {
            if recovered.is_committed(id) {
                continue;
            }
            for k in keys {
                let newest = recovered.latest_version_of(&key_name(*k));
                prop_assert!(
                    newest.is_some_and(|n| n > *id),
                    "commit {id:?} of {} lost without a superseding version", key_name(*k)
                );
            }
        }

        // Nothing phantom: every recovered record is one of the commits.
        let acked: HashSet<_> = committed.iter().map(|(id, _)| *id).collect();
        for record in recovered.all_records() {
            prop_assert!(acked.contains(&record.id), "phantom record {:?}", record.id);
        }

        // Reference 2: without compaction the commit log is intact, so the
        // recovered cache must hold the *identical* record set a plain
        // full replay loads.
        if !compact {
            let replayed = MetadataCache::new();
            warm_metadata_cache_pipelined(origin.io(), &replayed, usize::MAX).unwrap();
            let mut recovered_ids: Vec<_> =
                recovered.all_records().iter().map(|r| r.id).collect();
            let mut replayed_ids: Vec<_> =
                replayed.all_records().iter().map(|r| r.id).collect();
            recovered_ids.sort();
            replayed_ids.sort();
            prop_assert_eq!(recovered_ids, replayed_ids);
        }
    }

    /// Stacked checkpoints: a second checkpoint taken later (with
    /// compaction under it) still yields full-replay-equivalent bootstrap
    /// state — the newest checkpoint wins and the tail shrinks to what it
    /// does not cover.
    #[test]
    fn stacked_checkpoints_stay_equivalent(
        phases in proptest::collection::vec(
            proptest::collection::vec(0..6u8, 1..3), 3..24),
        first_frac in 0.0..1.0f64,
    ) {
        let origin = node();
        let first = ((phases.len() as f64) * first_frac) as usize;
        let mid = first + (phases.len() - first) / 2;

        for keys in &phases[..first] {
            commit_keys(&origin, keys);
        }
        origin.checkpoint_now(true).unwrap();
        for keys in &phases[first..mid] {
            commit_keys(&origin, keys);
        }
        let second = origin.checkpoint_now(true).unwrap();
        for keys in &phases[mid..] {
            commit_keys(&origin, keys);
        }

        let recovered = MetadataCache::new();
        let boot = warm_metadata_cache_checkpointed(
            origin.io(), &recovered, usize::MAX, "recovering", None).unwrap();
        prop_assert!(boot.used_checkpoint);
        // The newest checkpoint is the one bootstrapped from.
        let latest = aft_storage::load_latest_checkpoint(origin.io()).unwrap();
        prop_assert_eq!(latest.checkpoint.unwrap().id, second.write.id);

        for k in 0..6u8 {
            prop_assert_eq!(
                recovered.latest_version_of(&key_name(k)),
                origin.metadata().latest_version_of(&key_name(k)),
                "newest version of {} diverged", key_name(k)
            );
        }
    }
}
