//! Concurrency stress: AFT's guarantees must not bend under pipelined I/O.
//!
//! Barrier-started client threads hammer one AFT node over the simulated S3
//! backend with the pipelined I/O engine active (virtual clock, full-scale
//! latencies charged), mixing single reads, overlapped multi-reads
//! (`get_all`), and multi-key commits over a small contended key space.
//! Every transaction's observed read set must remain an Atomic Readset
//! (§3.2) — zero fractured reads, zero read-your-writes violations — no
//! matter how the engine's workers interleave the round trips or how
//! commits coalesce inside flushes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use aft_core::read::is_atomic_readset;
use aft_core::{AftNode, BatchConfig, NodeConfig};
use aft_storage::io::IoConfig;
use aft_storage::{BackendConfig, BackendKind, LatencyMode};
use aft_types::{AftError, Key, TransactionId, Value};
use bytes::Bytes;

const CLIENTS: usize = 8;
const TXNS_PER_CLIENT: usize = 50;
const KEYS: usize = 16;

/// CI's seed-matrix leg sets `AFT_TEST_SEED` so the same stress runs under
/// several deterministic seeds — "passes once" cannot hide a seed-dependent
/// interleaving. Locally, re-run a failing leg with the seed from the CI
/// job name: `AFT_TEST_SEED=2 cargo test --test stress_pipelined`.
fn test_seed() -> u64 {
    std::env::var("AFT_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn key(i: usize) -> Key {
    Key::new(format!("hot/{i:02}"))
}

fn value(client: usize, txn: usize, slot: usize) -> Value {
    Bytes::from(format!("c{client}-t{txn}-s{slot}"))
}

fn pipelined_s3_node() -> Arc<AftNode> {
    // Virtual clock at full scale: latencies are charged (so the engine's
    // overlap accounting is exercised) without sleeping, keeping the stress
    // fast and deterministic in wall-clock terms.
    let storage = aft_storage::make_backend(BackendConfig {
        kind: BackendKind::S3,
        mode: LatencyMode::Virtual,
        scale: 1.0,
        seed: 0x57E55 ^ test_seed().wrapping_mul(0x9E37),
        redis_shards: 2,
        stripes: 16,
    });
    let config = NodeConfig {
        // No data cache: every committed read exercises the engine.
        data_cache_bytes: 0,
        commit_batch: BatchConfig::default().with_max_batch(16),
        io: IoConfig::pipelined(),
        rng_seed: 0xAF71 ^ test_seed().wrapping_mul(0xC2B2),
        ..NodeConfig::test()
    };
    AftNode::new(config, storage).expect("node over the S3 sim")
}

/// Runs the stress workload; returns (ryw, fractured) anomaly counts.
fn hammer(node: &Arc<AftNode>) -> (u64, u64) {
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let ryw_anomalies = AtomicU64::new(0);
    let fr_anomalies = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let node = Arc::clone(node);
            let barrier = Arc::clone(&barrier);
            let ryw_anomalies = &ryw_anomalies;
            let fr_anomalies = &fr_anomalies;
            scope.spawn(move || {
                barrier.wait();
                for txn in 0..TXNS_PER_CLIENT {
                    let txid = node.start_transaction();
                    let mut reads: Vec<(Key, TransactionId)> = Vec::new();
                    let mut written: HashMap<Key, Value> = HashMap::new();
                    let mut aborted = false;

                    // Mixed workload: an overlapped multi-read, then single
                    // reads and writes over a 16-key space with offsets that
                    // keep clients colliding.
                    if txn % 3 == 0 {
                        let multi: Vec<Key> = (0..4)
                            .map(|j| key((client * 5 + txn * 7 + j * 3) % KEYS))
                            .collect();
                        match node.get_all(&txid, &multi) {
                            Ok(_) => {}
                            Err(AftError::NoValidVersion { .. }) => {
                                let _ = node.abort(&txid);
                                continue;
                            }
                            Err(other) => panic!("unexpected get_all error: {other:?}"),
                        }
                    }
                    for slot in 0..5 {
                        let k = key((client * 7 + txn * 3 + slot * 5) % KEYS);
                        if slot % 5 < 3 {
                            match node.get_versioned(&txid, &k) {
                                Ok(Some((observed, Some(version)))) => {
                                    reads.push((k, version));
                                    let _ = observed;
                                }
                                Ok(Some((observed, None))) => {
                                    // Served from our own write buffer:
                                    // read-your-writes must hold bytewise.
                                    if written.get(&k) != Some(&observed) {
                                        ryw_anomalies.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Ok(None) => {}
                                Err(AftError::NoValidVersion { .. }) => {
                                    // §3.6: abort and move on, like a retried
                                    // client request would.
                                    let _ = node.abort(&txid);
                                    aborted = true;
                                    break;
                                }
                                Err(other) => panic!("unexpected read error: {other:?}"),
                            }
                        } else {
                            let v = value(client, txn, slot);
                            node.put(&txid, k.clone(), v.clone()).expect("put");
                            written.insert(k, v);
                        }
                    }
                    if aborted {
                        continue;
                    }
                    if !is_atomic_readset(&reads, node.metadata()) {
                        fr_anomalies.fetch_add(1, Ordering::Relaxed);
                    }
                    node.commit(&txid).expect("commit");
                }
            });
        }
    });

    (
        ryw_anomalies.load(Ordering::Relaxed),
        fr_anomalies.load(Ordering::Relaxed),
    )
}

#[test]
fn read_atomicity_holds_over_the_pipelined_s3_sim() {
    let node = pipelined_s3_node();
    let (ryw, fractured) = hammer(&node);
    assert_eq!(ryw, 0, "read-your-writes anomalies under pipelined I/O");
    assert_eq!(fractured, 0, "fractured reads under pipelined I/O");
    assert_eq!(node.in_flight(), 0, "no dangling transactions");

    // The engine really pipelined: multi-key commits submit their data puts
    // concurrently, so the in-flight window must have been exercised.
    let io_stats = node.io().stats();
    assert!(io_stats.submitted > 0);
    assert_eq!(io_stats.submitted, io_stats.completed, "nothing lost");
    assert!(
        io_stats.peak_in_flight >= 2,
        "commit flushes must overlap their data puts: {io_stats:?}"
    );
    // Per-commit storage costs were recorded for every flushed commit.
    assert!(!node.stats().commit_storage_latency().is_empty());
}

#[test]
fn pipelined_and_sequential_io_agree_on_committed_state() {
    // The same single-threaded history through a pipelined node and a
    // sequential node must commit identical data (pipelining changes
    // latency, never outcomes).
    let run = |io: IoConfig| -> Vec<String> {
        let storage =
            aft_storage::make_backend(BackendConfig::test(BackendKind::S3).with_seed(0xD1FF));
        let node = AftNode::new(
            NodeConfig {
                io,
                ..NodeConfig::test()
            },
            storage.clone(),
        )
        .unwrap();
        for t in 0..10 {
            let txid = node.start_transaction();
            for j in 0..4 {
                node.put(&txid, key((t * 4 + j) % KEYS), value(0, t, j))
                    .unwrap();
            }
            node.commit(&txid).unwrap();
        }
        storage.list_prefix("data/").unwrap()
    };
    let sequential = run(IoConfig::sequential());
    let pipelined = run(IoConfig::pipelined());
    assert_eq!(sequential.len(), pipelined.len());
}
