//! Latency recording and throughput timelines.
//!
//! Every figure in the paper reports either latency percentiles (median boxes
//! with 99th-percentile whiskers) or throughput over time / versus offered
//! load. [`LatencyRecorder`] collects per-request latencies and computes the
//! percentiles; [`ThroughputTimeline`] buckets completions into fixed-width
//! windows for the Figure 9/10 time series.

use std::time::Duration;

/// A simple exact latency recorder (stores every sample).
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_micros() as u64);
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Returns true if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Computes summary statistics over the recorded samples.
    pub fn stats(&self) -> LatencyStats {
        if self.samples_us.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let percentile = |p: f64| -> Duration {
            let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            Duration::from_micros(sorted[rank])
        };
        let sum: u64 = sorted.iter().sum();
        LatencyStats {
            count: sorted.len(),
            mean: Duration::from_micros(sum / sorted.len() as u64),
            median: percentile(0.5),
            p95: percentile(0.95),
            p99: percentile(0.99),
            min: Duration::from_micros(sorted[0]),
            max: Duration::from_micros(sorted[sorted.len() - 1]),
        }
    }
}

/// Summary statistics of a latency distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// 50th percentile.
    pub median: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Smallest sample.
    pub min: Duration,
    /// Largest sample.
    pub max: Duration,
}

impl LatencyStats {
    /// Median latency in (fractional) milliseconds, as the figures report it.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }

    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99.as_secs_f64() * 1e3
    }
}

/// Completions bucketed into fixed-width time windows.
#[derive(Debug, Clone)]
pub struct ThroughputTimeline {
    bucket_width: Duration,
    buckets: Vec<u64>,
}

impl ThroughputTimeline {
    /// Creates a timeline with the given bucket width.
    pub fn new(bucket_width: Duration) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be positive");
        ThroughputTimeline {
            bucket_width,
            buckets: Vec::new(),
        }
    }

    /// Records one completion at `elapsed` since the experiment started.
    pub fn record(&mut self, elapsed: Duration) {
        let index = (elapsed.as_secs_f64() / self.bucket_width.as_secs_f64()) as usize;
        if index >= self.buckets.len() {
            self.buckets.resize(index + 1, 0);
        }
        self.buckets[index] += 1;
    }

    /// Merges another timeline (same bucket width) into this one.
    pub fn merge(&mut self, other: &ThroughputTimeline) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "cannot merge timelines with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, count) in other.buckets.iter().enumerate() {
            self.buckets[i] += count;
        }
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> Duration {
        self.bucket_width
    }

    /// `(bucket start time in seconds, completions per second)` series.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let width = self.bucket_width.as_secs_f64();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &count)| (i as f64 * width, count as f64 / width))
            .collect()
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zeroes() {
        let recorder = LatencyRecorder::new();
        assert!(recorder.is_empty());
        let stats = recorder.stats();
        assert_eq!(stats.count, 0);
        assert_eq!(stats.median, Duration::ZERO);
    }

    #[test]
    fn percentiles_are_computed_over_sorted_samples() {
        let mut recorder = LatencyRecorder::new();
        // 1ms..=100ms inserted in reverse order.
        for ms in (1..=100u64).rev() {
            recorder.record(Duration::from_millis(ms));
        }
        let stats = recorder.stats();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.min, Duration::from_millis(1));
        assert_eq!(stats.max, Duration::from_millis(100));
        assert!((stats.median_ms() - 50.0).abs() <= 1.0);
        assert!((stats.p99_ms() - 99.0).abs() <= 1.0);
        assert!(stats.mean >= Duration::from_millis(50));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(Duration::from_millis(10));
        b.record(Duration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.stats().max, Duration::from_millis(30));
    }

    #[test]
    fn timeline_buckets_completions() {
        let mut timeline = ThroughputTimeline::new(Duration::from_secs(1));
        for i in 0..10 {
            timeline.record(Duration::from_millis(i * 300));
        }
        let series = timeline.series();
        assert_eq!(timeline.total(), 10);
        // 0.0-1.0s holds events at 0,300,600,900ms = 4 completions.
        assert_eq!(series[0], (0.0, 4.0));
        assert_eq!(series[1].1, 3.0);
    }

    #[test]
    fn timeline_merge_adds_buckets() {
        let mut a = ThroughputTimeline::new(Duration::from_secs(1));
        let mut b = ThroughputTimeline::new(Duration::from_secs(1));
        a.record(Duration::from_millis(500));
        b.record(Duration::from_millis(700));
        b.record(Duration::from_millis(1_500));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.series()[0].1, 2.0);
        assert_eq!(a.series()[1].1, 1.0);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merging_mismatched_widths_panics() {
        let mut a = ThroughputTimeline::new(Duration::from_secs(1));
        let b = ThroughputTimeline::new(Duration::from_secs(2));
        a.merge(&b);
    }
}
