//! Zipfian key-popularity distribution.
//!
//! The paper's workloads draw keys from Zipfian distributions with
//! coefficients 1.0 ("lightly contended"), 1.5 ("moderately contended") and
//! 2.0 ("heavily contended") — §6.1.2 and §6.2. The generator here uses the
//! classic inverse-CDF construction over a precomputed cumulative weight
//! table, which is exact and fast for the key-space sizes the evaluation uses
//! (1,000 to 100,000 keys).

use rand::Rng;

/// A sampler over `0..n` with Zipfian popularity (rank 1 is the most popular).
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    /// Cumulative normalised weights; `cdf[i]` is P(rank <= i).
    cdf: Vec<f64>,
}

impl ZipfGenerator {
    /// Creates a generator over `n` items with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution. Larger exponents
    /// concentrate probability on the lowest ranks.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one item");
        assert!(s >= 0.0, "the Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        ZipfGenerator { cdf }
    }

    /// Number of items in the distribution.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns true if the distribution has no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples an item index in `0..n` (0 is the most popular item).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // Find the first rank whose cumulative probability covers u.
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf contains no NaN"))
        {
            Ok(index) => index,
            Err(index) => index.min(self.cdf.len() - 1),
        }
    }

    /// The probability of sampling item `index`.
    pub fn probability(&self, index: usize) -> f64 {
        if index >= self.cdf.len() {
            return 0.0;
        }
        if index == 0 {
            self.cdf[0]
        } else {
            self.cdf[index] - self.cdf[index - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(n: usize, s: f64, samples: usize) -> Vec<usize> {
        let zipf = ZipfGenerator::new(n, s);
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = vec![0usize; n];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_exponent_is_zero() {
        let counts = frequencies(10, 0.0, 100_000);
        for &count in &counts {
            assert!(
                (8_000..12_000).contains(&count),
                "uniform draw should give ~10k per bucket, got {count}"
            );
        }
    }

    #[test]
    fn skew_increases_with_exponent() {
        let light = frequencies(1_000, 1.0, 50_000);
        let heavy = frequencies(1_000, 2.0, 50_000);
        let light_top = light[0] as f64 / 50_000.0;
        let heavy_top = heavy[0] as f64 / 50_000.0;
        assert!(light_top > 0.05, "rank 1 under zipf(1.0) is popular");
        assert!(
            heavy_top > 2.0 * light_top,
            "zipf(2.0) concentrates much more on rank 1 ({heavy_top} vs {light_top})"
        );
    }

    #[test]
    fn ranks_are_monotonically_less_popular() {
        let counts = frequencies(100, 1.5, 200_000);
        // Compare well-separated ranks to keep sampling noise manageable.
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[49]);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let zipf = ZipfGenerator::new(500, 1.5);
        let total: f64 = (0..500).map(|i| zipf.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(zipf.probability(500), 0.0);
        assert_eq!(zipf.len(), 500);
        assert!(!zipf.is_empty());
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = ZipfGenerator::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = ZipfGenerator::new(0, 1.0);
    }
}
