//! Workload generation and measurement for the AFT evaluation (§6).
//!
//! This crate contains everything the benchmark harness needs that is not
//! part of the system under test:
//!
//! * [`zipf`] — the Zipfian key-popularity distribution the paper's workloads
//!   use (coefficients 1.0 / 1.5 / 2.0).
//! * [`generator`] — transaction plans: how many functions per request, how
//!   many reads and writes per function, payload sizes, and key choices.
//! * [`drivers`] — the three ways a request can execute: through AFT
//!   ([`drivers::AftDriver`]), directly against the storage engine with
//!   embedded metadata ("Plain", [`drivers::PlainDriver`]), or through
//!   DynamoDB's transaction mode ([`drivers::DynamoTxnDriver`]).
//! * [`anomaly`] — the read-your-writes and fractured-read anomaly detectors
//!   behind Table 2.
//! * [`histogram`] — latency recording (median / p99) and throughput
//!   timelines.
//! * [`runner`] — the closed-loop multi-client experiment runner used by
//!   every figure.

pub mod anomaly;
pub mod drivers;
pub mod generator;
pub mod histogram;
pub mod runner;
pub mod zipf;

pub use anomaly::{AnomalyCounts, AnomalyFlags, TaggedObservation};
pub use drivers::{AftDriver, ClientMode, DynamoTxnDriver, PlainDriver, RequestDriver};
pub use generator::{FunctionPlan, TransactionPlan, WorkloadConfig, WorkloadGenerator};
pub use histogram::{LatencyRecorder, LatencyStats, ThroughputTimeline};
pub use runner::{run_closed_loop, RunConfig, RunResult};
pub use zipf::ZipfGenerator;
