//! Workload specification and transaction-plan generation.
//!
//! The paper's standard workload (§6.1.2) is a logical request of two
//! functions, each performing one 4 KB write and two 4 KB reads, with keys
//! drawn from a Zipfian distribution. Other experiments vary the number of
//! functions (Figure 6), the read/write mix over 10 total IOs (Figure 5), the
//! key-space size and skew (Figure 4), and the request rate (Figures 7-10).
//! [`WorkloadConfig`] captures those knobs and [`WorkloadGenerator`] turns
//! them into concrete [`TransactionPlan`]s.

use aft_types::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::ZipfGenerator;

/// The tunable parameters of an experiment's workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Functions per logical request (transaction).
    pub functions: usize,
    /// Reads performed by each function.
    pub reads_per_function: usize,
    /// Writes performed by each function.
    pub writes_per_function: usize,
    /// Payload size of every read/written object, in bytes (paper: 4 KB).
    pub value_size: usize,
    /// Number of distinct keys in the key space.
    pub num_keys: usize,
    /// Zipf exponent of the key-popularity distribution (0 = uniform).
    pub zipf_exponent: f64,
}

impl WorkloadConfig {
    /// The paper's standard workload: 2 functions × (2 reads + 1 write) of
    /// 4 KB objects over 1,000 keys at Zipf 1.0 (§6.1.2).
    pub fn standard() -> Self {
        WorkloadConfig {
            functions: 2,
            reads_per_function: 2,
            writes_per_function: 1,
            value_size: 4 * 1024,
            num_keys: 1_000,
            zipf_exponent: 1.0,
        }
    }

    /// The Figure 4 workload: same per-function shape but a 100,000-key space
    /// and configurable skew.
    pub fn caching_skew(zipf_exponent: f64) -> Self {
        WorkloadConfig {
            num_keys: 100_000,
            zipf_exponent,
            ..WorkloadConfig::standard()
        }
    }

    /// The Figure 5 workload: 10 total IOs per request with the given
    /// percentage of reads, split over 2 functions.
    ///
    /// `read_percent` is clamped to multiples of 20 in `[0, 100]`, matching
    /// the paper's sweep (0%, 20%, ..., 100%).
    pub fn read_write_ratio(read_percent: u32) -> Self {
        let read_percent = read_percent.min(100) / 20 * 20;
        let total_reads = (10 * read_percent / 100) as usize;
        let total_writes = 10 - total_reads;
        WorkloadConfig {
            functions: 2,
            reads_per_function: total_reads / 2,
            writes_per_function: total_writes / 2,
            ..WorkloadConfig::standard()
        }
    }

    /// The Figure 6 workload: `functions` functions of 2 reads + 1 write each.
    pub fn transaction_length(functions: usize) -> Self {
        WorkloadConfig {
            functions,
            ..WorkloadConfig::standard()
        }
    }

    /// Sets the Zipf exponent.
    pub fn with_zipf(mut self, exponent: f64) -> Self {
        self.zipf_exponent = exponent;
        self
    }

    /// Sets the key-space size.
    pub fn with_keys(mut self, num_keys: usize) -> Self {
        self.num_keys = num_keys;
        self
    }

    /// Sets the payload size.
    pub fn with_value_size(mut self, value_size: usize) -> Self {
        self.value_size = value_size;
        self
    }

    /// Total IOs per request.
    pub fn total_ios(&self) -> usize {
        self.functions * (self.reads_per_function + self.writes_per_function)
    }
}

/// The operations one function performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionPlan {
    /// Keys to read, in order.
    pub reads: Vec<Key>,
    /// Keys to write, in order.
    pub writes: Vec<Key>,
}

/// A fully materialised logical request: one entry per function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionPlan {
    /// Per-function operations, executed in order.
    pub functions: Vec<FunctionPlan>,
    /// Size of every written payload, in bytes.
    pub value_size: usize,
}

impl TransactionPlan {
    /// Every key this request will write, across all functions.
    pub fn write_set(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self
            .functions
            .iter()
            .flat_map(|f| f.writes.iter().cloned())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Total reads in the plan.
    pub fn total_reads(&self) -> usize {
        self.functions.iter().map(|f| f.reads.len()).sum()
    }

    /// Total writes in the plan.
    pub fn total_writes(&self) -> usize {
        self.functions.iter().map(|f| f.writes.len()).sum()
    }
}

/// Generates transaction plans from a [`WorkloadConfig`].
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    zipf: ZipfGenerator,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator with its own seeded RNG (one per client thread).
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        let zipf = ZipfGenerator::new(config.num_keys, config.zipf_exponent);
        WorkloadGenerator {
            config,
            zipf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn sample_key(&mut self) -> Key {
        let index = self.zipf.sample(&mut self.rng);
        Key::new(format!("key-{index:08}"))
    }

    /// Generates the next transaction plan.
    pub fn next_plan(&mut self) -> TransactionPlan {
        let functions = (0..self.config.functions)
            .map(|_| FunctionPlan {
                reads: (0..self.config.reads_per_function)
                    .map(|_| self.sample_key())
                    .collect(),
                writes: (0..self.config.writes_per_function)
                    .map(|_| self.sample_key())
                    .collect(),
            })
            .collect();
        TransactionPlan {
            functions,
            value_size: self.config.value_size,
        }
    }

    /// Generates a plan that touches every key exactly once (used to preload
    /// the key space before measuring, so that reads never hit empty keys).
    pub fn preload_plan(&self) -> Vec<Key> {
        (0..self.config.num_keys)
            .map(|index| Key::new(format!("key-{index:08}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_matches_the_paper() {
        let config = WorkloadConfig::standard();
        assert_eq!(config.functions, 2);
        assert_eq!(config.reads_per_function, 2);
        assert_eq!(config.writes_per_function, 1);
        assert_eq!(config.value_size, 4096);
        assert_eq!(config.total_ios(), 6);
    }

    #[test]
    fn read_write_ratio_sweep_produces_ten_ios() {
        for pct in [0u32, 20, 40, 60, 80, 100] {
            let config = WorkloadConfig::read_write_ratio(pct);
            assert_eq!(config.total_ios(), 10, "at {pct}% reads");
            let reads = config.functions * config.reads_per_function;
            assert_eq!(reads as u32, pct / 10, "at {pct}% reads");
        }
    }

    #[test]
    fn transaction_length_sweep() {
        for n in 1..=10 {
            let config = WorkloadConfig::transaction_length(n);
            assert_eq!(config.functions, n);
            assert_eq!(config.total_ios(), 3 * n);
        }
    }

    #[test]
    fn plans_follow_the_config_shape() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::standard(), 7);
        let plan = generator.next_plan();
        assert_eq!(plan.functions.len(), 2);
        assert_eq!(plan.total_reads(), 4);
        assert_eq!(plan.total_writes(), 2);
        assert_eq!(plan.value_size, 4096);
        assert!(plan.write_set().len() <= 2);
        for function in &plan.functions {
            assert_eq!(function.reads.len(), 2);
            assert_eq!(function.writes.len(), 1);
        }
    }

    #[test]
    fn generators_with_the_same_seed_agree() {
        let mut a = WorkloadGenerator::new(WorkloadConfig::standard(), 42);
        let mut b = WorkloadGenerator::new(WorkloadConfig::standard(), 42);
        assert_eq!(a.next_plan(), b.next_plan());
        let mut c = WorkloadGenerator::new(WorkloadConfig::standard(), 43);
        assert_ne!(a.next_plan(), c.next_plan());
    }

    #[test]
    fn skewed_generators_prefer_popular_keys() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::standard().with_zipf(2.0), 11);
        let mut hot = 0;
        let mut total = 0;
        for _ in 0..500 {
            let plan = generator.next_plan();
            for f in &plan.functions {
                for k in f.reads.iter().chain(f.writes.iter()) {
                    total += 1;
                    if k.as_str() == "key-00000000" {
                        hot += 1;
                    }
                }
            }
        }
        assert!(
            hot as f64 / total as f64 > 0.3,
            "under Zipf 2.0 the hottest key dominates ({hot}/{total})"
        );
    }

    #[test]
    fn preload_covers_the_key_space() {
        let generator = WorkloadGenerator::new(WorkloadConfig::standard().with_keys(50), 1);
        let keys = generator.preload_plan();
        assert_eq!(keys.len(), 50);
        assert_eq!(keys[0].as_str(), "key-00000000");
        assert_eq!(keys[49].as_str(), "key-00000049");
    }
}
