//! Consistency-anomaly detection (Table 2).
//!
//! The paper quantifies AFT's benefit by counting two kinds of anomalies over
//! 10,000 transactions:
//!
//! * **Read-Your-Write (RYW) anomalies** — a transaction reads a key it wrote
//!   earlier in the same request and observes someone else's version.
//! * **Fractured Read (FR) anomalies** — the transaction's reads violate the
//!   Atomic Readset definition: it read `k` from transaction `T_i`, also read
//!   a key `l` that `T_i` cowrote, but observed a version of `l` *older* than
//!   `T_i`'s. Repeatable-read violations are counted here too, as in §6.1.2.
//!
//! For the baseline configurations ("Plain" storage and DynamoDB transaction
//! mode) detection works exactly as in the paper: every written value embeds
//! the writing request's ID and cowritten key set ([`aft_types::TaggedValue`]),
//! and the client checks its observations after the fact. AFT-backed requests
//! are instead checked against the node's real commit metadata (see
//! `drivers::aft`), which avoids tagging artefacts; by Theorem 1 they should
//! never show an anomaly.

use std::collections::HashSet;

use aft_types::{Key, TaggedValue, TransactionId};

/// Anomalies observed by a single logical request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnomalyFlags {
    /// The request observed a read-your-writes violation.
    pub read_your_writes: bool,
    /// The request observed a fractured (or non-repeatable) read.
    pub fractured_read: bool,
}

impl AnomalyFlags {
    /// No anomalies.
    pub const CLEAN: AnomalyFlags = AnomalyFlags {
        read_your_writes: false,
        fractured_read: false,
    };

    /// Returns true if any anomaly was observed.
    pub fn any(&self) -> bool {
        self.read_your_writes || self.fractured_read
    }
}

/// Aggregate anomaly counts over many requests (one Table 2 row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnomalyCounts {
    /// Requests that observed at least one RYW anomaly.
    pub ryw_transactions: u64,
    /// Requests that observed at least one FR anomaly.
    pub fr_transactions: u64,
    /// Requests inspected.
    pub total_transactions: u64,
}

impl AnomalyCounts {
    /// Folds one request's flags into the aggregate.
    pub fn record(&mut self, flags: AnomalyFlags) {
        self.total_transactions += 1;
        if flags.read_your_writes {
            self.ryw_transactions += 1;
        }
        if flags.fractured_read {
            self.fr_transactions += 1;
        }
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &AnomalyCounts) {
        self.ryw_transactions += other.ryw_transactions;
        self.fr_transactions += other.fr_transactions;
        self.total_transactions += other.total_transactions;
    }

    /// Fraction of requests with an RYW anomaly.
    pub fn ryw_rate(&self) -> f64 {
        if self.total_transactions == 0 {
            0.0
        } else {
            self.ryw_transactions as f64 / self.total_transactions as f64
        }
    }

    /// Fraction of requests with an FR anomaly.
    pub fn fr_rate(&self) -> f64 {
        if self.total_transactions == 0 {
            0.0
        } else {
            self.fr_transactions as f64 / self.total_transactions as f64
        }
    }
}

/// One event observed by a request running against a baseline configuration.
#[derive(Debug, Clone)]
pub enum TaggedEvent {
    /// The request wrote `key` (tagged with its own ID).
    Write(Key),
    /// The request read `key` and observed the given tagged value (or nothing).
    Read {
        /// The key read.
        key: Key,
        /// The value observed, if the key existed.
        value: Option<TaggedValue>,
    },
}

/// The ordered observations of one baseline request, ready for analysis.
#[derive(Debug, Clone)]
pub struct TaggedObservation {
    /// The ID this request tagged its own writes with.
    pub own_tag: TransactionId,
    /// Events in the order they happened.
    pub events: Vec<TaggedEvent>,
}

impl TaggedObservation {
    /// Creates an empty observation for a request tagged `own_tag`.
    pub fn new(own_tag: TransactionId) -> Self {
        TaggedObservation {
            own_tag,
            events: Vec::new(),
        }
    }

    /// Records a write of `key`.
    pub fn record_write(&mut self, key: Key) {
        self.events.push(TaggedEvent::Write(key));
    }

    /// Records a read of `key` observing `value`.
    pub fn record_read(&mut self, key: Key, value: Option<TaggedValue>) {
        self.events.push(TaggedEvent::Read { key, value });
    }

    /// Analyses the observation and reports the anomalies it contains.
    pub fn analyze(&self) -> AnomalyFlags {
        let mut flags = AnomalyFlags::CLEAN;
        let mut written: HashSet<&Key> = HashSet::new();
        // Reads of *other* transactions' data seen so far:
        // (key, writer id, writer's cowritten set).
        let mut foreign_reads: Vec<(&Key, TransactionId, &[Key])> = Vec::new();

        for event in &self.events {
            match event {
                TaggedEvent::Write(key) => {
                    written.insert(key);
                }
                TaggedEvent::Read { key, value } => {
                    if written.contains(key) {
                        // Read-your-writes: we must observe our own version.
                        let ours = value
                            .as_ref()
                            .is_some_and(|observed| observed.tid == self.own_tag);
                        if !ours {
                            flags.read_your_writes = true;
                        }
                        continue;
                    }
                    let Some(observed) = value else {
                        continue;
                    };
                    if observed.tid == self.own_tag {
                        // Our own write surfaced through a key we did not
                        // track as written (possible after retries); not an
                        // anomaly.
                        continue;
                    }
                    for (earlier_key, earlier_tid, earlier_cowritten) in &foreign_reads {
                        // Non-repeatable read of the same key.
                        if *earlier_key == key && *earlier_tid != observed.tid {
                            flags.fractured_read = true;
                        }
                        // The earlier read's writer also wrote `key`, but we
                        // now observed an older version of it.
                        if earlier_cowritten.contains(key) && observed.tid < *earlier_tid {
                            flags.fractured_read = true;
                        }
                        // The current read's writer also wrote the earlier
                        // key, and the earlier observation was older.
                        if observed.cowritten.contains(earlier_key) && *earlier_tid < observed.tid {
                            flags.fractured_read = true;
                        }
                    }
                    foreign_reads.push((key, observed.tid, observed.cowritten.as_slice()));
                }
            }
        }
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_types::{Uuid, Value};

    fn tid(ts: u64) -> TransactionId {
        TransactionId::new(ts, Uuid::from_u128(ts as u128))
    }

    fn tagged(ts: u64, cowritten: &[&str]) -> TaggedValue {
        TaggedValue::new(
            tid(ts),
            cowritten.iter().map(Key::new).collect(),
            Value::from_static(b"payload"),
        )
    }

    #[test]
    fn clean_observation_has_no_anomalies() {
        let mut obs = TaggedObservation::new(tid(100));
        obs.record_read(Key::new("k"), Some(tagged(5, &["k", "l"])));
        obs.record_read(Key::new("l"), Some(tagged(5, &["k", "l"])));
        obs.record_write(Key::new("m"));
        let flags = obs.analyze();
        assert_eq!(flags, AnomalyFlags::CLEAN);
        assert!(!flags.any());
    }

    #[test]
    fn reading_someone_elses_version_of_own_write_is_ryw() {
        let mut obs = TaggedObservation::new(tid(100));
        obs.record_write(Key::new("k"));
        obs.record_read(Key::new("k"), Some(tagged(99, &["k"])));
        assert!(obs.analyze().read_your_writes);

        // Observing our own version is fine.
        let mut ok = TaggedObservation::new(tid(100));
        ok.record_write(Key::new("k"));
        ok.record_read(
            Key::new("k"),
            Some(TaggedValue::new(
                tid(100),
                vec![Key::new("k")],
                Value::from_static(b"x"),
            )),
        );
        assert!(!ok.analyze().read_your_writes);
    }

    #[test]
    fn missing_own_write_is_ryw() {
        let mut obs = TaggedObservation::new(tid(100));
        obs.record_write(Key::new("k"));
        obs.record_read(Key::new("k"), None);
        assert!(obs.analyze().read_your_writes);
    }

    #[test]
    fn fractured_read_in_either_order_is_detected() {
        // T5 wrote {k, l}; T3 wrote {l}. Reading k from T5 and l from T3 is
        // fractured regardless of the order of the two reads.
        let mut newer_first = TaggedObservation::new(tid(100));
        newer_first.record_read(Key::new("k"), Some(tagged(5, &["k", "l"])));
        newer_first.record_read(Key::new("l"), Some(tagged(3, &["l"])));
        assert!(newer_first.analyze().fractured_read);

        let mut older_first = TaggedObservation::new(tid(100));
        older_first.record_read(Key::new("l"), Some(tagged(3, &["l"])));
        older_first.record_read(Key::new("k"), Some(tagged(5, &["k", "l"])));
        assert!(older_first.analyze().fractured_read);
    }

    #[test]
    fn newer_version_of_cowritten_key_is_not_fractured() {
        // Reading k from T5 (cowrote l) and l from T8 (newer) is allowed.
        let mut obs = TaggedObservation::new(tid(100));
        obs.record_read(Key::new("k"), Some(tagged(5, &["k", "l"])));
        obs.record_read(Key::new("l"), Some(tagged(8, &["l"])));
        assert!(!obs.analyze().fractured_read);
    }

    #[test]
    fn non_repeatable_read_counts_as_fractured() {
        let mut obs = TaggedObservation::new(tid(100));
        obs.record_read(Key::new("k"), Some(tagged(5, &["k"])));
        obs.record_read(Key::new("k"), Some(tagged(9, &["k"])));
        assert!(obs.analyze().fractured_read);
    }

    #[test]
    fn counts_aggregate_per_transaction() {
        let mut counts = AnomalyCounts::default();
        counts.record(AnomalyFlags::CLEAN);
        counts.record(AnomalyFlags {
            read_your_writes: true,
            fractured_read: true,
        });
        counts.record(AnomalyFlags {
            read_your_writes: false,
            fractured_read: true,
        });
        assert_eq!(counts.total_transactions, 3);
        assert_eq!(counts.ryw_transactions, 1);
        assert_eq!(counts.fr_transactions, 2);
        assert!((counts.fr_rate() - 2.0 / 3.0).abs() < 1e-9);

        let mut merged = AnomalyCounts::default();
        merged.merge(&counts);
        merged.merge(&counts);
        assert_eq!(merged.total_transactions, 6);
        assert_eq!(merged.ryw_transactions, 2);
    }

    #[test]
    fn empty_counts_have_zero_rates() {
        let counts = AnomalyCounts::default();
        assert_eq!(counts.ryw_rate(), 0.0);
        assert_eq!(counts.fr_rate(), 0.0);
    }
}
