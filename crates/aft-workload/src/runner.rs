//! The closed-loop experiment runner.
//!
//! Every experiment in §6 follows the same pattern: N parallel clients each
//! synchronously issue logical requests (invoke, wait, repeat), and the
//! harness reports latency percentiles, throughput, and anomaly counts.
//! [`run_closed_loop`] is that harness: it spawns one thread per client,
//! drives the given [`RequestDriver`], and merges the per-client
//! measurements.
//!
//! The merge mutex is a `parking_lot::Mutex` (like the rest of the
//! workspace), which does not poison: a panicking client thread takes down
//! its own scope join, not every sibling's result merge — one driver bug no
//! longer cascades into unrelated lock-poisoning failures.

use std::time::{Duration, Instant};

use aft_types::AftResult;
use parking_lot::Mutex;

use crate::anomaly::AnomalyCounts;
use crate::drivers::RequestDriver;
use crate::generator::{WorkloadConfig, WorkloadGenerator};
use crate::histogram::{LatencyRecorder, LatencyStats, ThroughputTimeline};

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Parallel closed-loop clients.
    pub clients: usize,
    /// Requests each client issues (ignored if zero and a duration is set).
    pub requests_per_client: usize,
    /// Optional wall-clock limit; the run stops when either bound is hit.
    pub duration: Option<Duration>,
    /// Bucket width of the throughput timeline.
    pub timeline_bucket: Duration,
    /// Whether to preload the key space through the driver before measuring.
    pub preload: bool,
    /// The workload every client generates plans from.
    pub workload: WorkloadConfig,
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
}

impl RunConfig {
    /// A single-client run of 100 requests over the given workload.
    pub fn new(workload: WorkloadConfig) -> Self {
        RunConfig {
            clients: 1,
            requests_per_client: 100,
            duration: None,
            timeline_bucket: Duration::from_secs(1),
            preload: true,
            workload,
            seed: 0xC11E17,
        }
    }

    /// Sets the number of clients.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the per-client request count.
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests_per_client = requests;
        self
    }

    /// Sets a wall-clock duration bound.
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The merged measurements of one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The driver's display name.
    pub driver: String,
    /// Latency distribution of successful requests.
    pub latency: LatencyStats,
    /// Anomaly counts across successful requests.
    pub anomalies: AnomalyCounts,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Completions bucketed over time.
    pub timeline: ThroughputTimeline,
}

impl RunResult {
    /// Average throughput over the measured phase, in requests per second.
    pub fn throughput_tps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.elapsed.as_secs_f64()
        }
    }
}

struct ClientMeasurements {
    latencies: LatencyRecorder,
    anomalies: AnomalyCounts,
    completed: u64,
    failed: u64,
    timeline: ThroughputTimeline,
}

/// Runs a closed-loop experiment and returns the merged measurements.
pub fn run_closed_loop(driver: &dyn RequestDriver, config: &RunConfig) -> AftResult<RunResult> {
    if config.preload {
        let generator = WorkloadGenerator::new(config.workload.clone(), config.seed);
        driver.preload(&generator.preload_plan(), config.workload.value_size)?;
    }

    let per_client_requests = if config.requests_per_client == 0 {
        usize::MAX
    } else {
        config.requests_per_client
    };
    let deadline = config.duration;
    let started = Instant::now();
    let collected: Mutex<Vec<ClientMeasurements>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for client in 0..config.clients {
            let collected = &collected;
            let workload = config.workload.clone();
            let seed = config.seed + 1 + client as u64;
            let bucket = config.timeline_bucket;
            scope.spawn(move || {
                let mut generator = WorkloadGenerator::new(workload, seed);
                let mut measurements = ClientMeasurements {
                    latencies: LatencyRecorder::new(),
                    anomalies: AnomalyCounts::default(),
                    completed: 0,
                    failed: 0,
                    timeline: ThroughputTimeline::new(bucket),
                };
                for _ in 0..per_client_requests {
                    if let Some(limit) = deadline {
                        if started.elapsed() >= limit {
                            break;
                        }
                    }
                    let plan = generator.next_plan();
                    let request_start = Instant::now();
                    match driver.execute(&plan) {
                        Ok(flags) => {
                            measurements.latencies.record(request_start.elapsed());
                            measurements.anomalies.record(flags);
                            measurements.completed += 1;
                            measurements.timeline.record(started.elapsed());
                        }
                        Err(_) => {
                            measurements.failed += 1;
                        }
                    }
                }
                collected.lock().push(measurements);
            });
        }
    });

    let elapsed = started.elapsed();
    let mut latencies = LatencyRecorder::new();
    let mut anomalies = AnomalyCounts::default();
    let mut completed = 0;
    let mut failed = 0;
    let mut timeline = ThroughputTimeline::new(config.timeline_bucket);
    for client in collected.into_inner() {
        latencies.merge(&client.latencies);
        anomalies.merge(&client.anomalies);
        completed += client.completed;
        failed += client.failed;
        timeline.merge(&client.timeline);
    }

    Ok(RunResult {
        driver: driver.name().to_owned(),
        latency: latencies.stats(),
        anomalies,
        completed,
        failed,
        elapsed,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::{AftDriver, PlainDriver};
    use aft_core::{AftNode, NodeConfig};
    use aft_faas::{FaasPlatform, PlatformConfig, RetryPolicy};
    use aft_storage::{BackendConfig, BackendKind, InMemoryStore};
    use aft_types::clock::TickingClock;

    fn small_workload() -> WorkloadConfig {
        WorkloadConfig::standard().with_keys(50).with_value_size(64)
    }

    fn aft_driver() -> AftDriver {
        let node = AftNode::with_clock(
            NodeConfig::test(),
            InMemoryStore::shared(),
            TickingClock::shared(1, 1),
        )
        .unwrap();
        AftDriver::single_node(
            node,
            FaasPlatform::new(PlatformConfig::test()),
            RetryPolicy::with_attempts(5),
        )
    }

    #[test]
    fn single_client_run_completes_every_request() {
        let driver = aft_driver();
        let config = RunConfig::new(small_workload()).with_requests(25);
        let result = run_closed_loop(&driver, &config).unwrap();
        assert_eq!(result.completed, 25);
        assert_eq!(result.failed, 0);
        assert_eq!(result.anomalies.total_transactions, 25);
        assert_eq!(result.anomalies.ryw_transactions, 0);
        assert_eq!(result.anomalies.fr_transactions, 0);
        assert_eq!(result.latency.count, 25);
        assert_eq!(result.timeline.total(), 25);
        assert!(result.throughput_tps() > 0.0);
        assert_eq!(result.driver, "AFT");
    }

    #[test]
    fn multi_client_runs_aggregate_across_threads() {
        let driver = aft_driver();
        let config = RunConfig::new(small_workload())
            .with_clients(4)
            .with_requests(10);
        let result = run_closed_loop(&driver, &config).unwrap();
        assert_eq!(result.completed, 40);
        assert_eq!(result.latency.count, 40);
        // With concurrent clients AFT must still never show anomalies.
        assert_eq!(result.anomalies.ryw_transactions, 0);
        assert_eq!(result.anomalies.fr_transactions, 0);
    }

    #[test]
    fn duration_bound_stops_the_run() {
        let driver = aft_driver();
        let config = RunConfig::new(small_workload())
            .with_requests(0)
            .with_duration(Duration::from_millis(100));
        let result = run_closed_loop(&driver, &config).unwrap();
        assert!(result.completed > 0);
        assert!(result.elapsed >= Duration::from_millis(100));
        assert!(result.elapsed < Duration::from_secs(10));
    }

    #[test]
    fn concurrent_plain_clients_eventually_show_anomalies() {
        // The contended plain workload is the Table 2 setting: with enough
        // parallel clients hammering a tiny hot key space, read-your-writes
        // and fractured-read anomalies appear.
        let storage = aft_storage::make_backend(BackendConfig::test(BackendKind::DynamoDb));
        let driver = PlainDriver::new(
            storage,
            FaasPlatform::new(PlatformConfig::test()),
            RetryPolicy::with_attempts(3),
        );
        let config = RunConfig::new(
            WorkloadConfig::standard()
                .with_keys(4)
                .with_zipf(2.0)
                .with_value_size(64),
        )
        .with_clients(8)
        .with_requests(150);
        let result = run_closed_loop(&driver, &config).unwrap();
        assert_eq!(result.completed, 8 * 150);
        assert!(
            result.anomalies.ryw_transactions + result.anomalies.fr_transactions > 0,
            "expected at least one anomaly under heavy contention without AFT"
        );
    }
}
