//! The AFT-backed request driver.
//!
//! Each logical request runs against an [`AftApi`] implementation — a single
//! node, a cluster's round-robin router, or (via `aft-net`) a client SDK
//! speaking the wire protocol to a served deployment; the driver is
//! transport-agnostic, so the same workloads measure all three. Requests
//! execute their functions through the FaaS platform sharing a single AFT
//! transaction and commit in the last function. On retryable failures —
//! injected function crashes, a routed node that has since been killed, a
//! dropped connection, or a read with no valid version (§3.6) — the whole
//! request restarts from scratch with a fresh transaction, which is exactly
//! the retry model the paper assumes.

use std::sync::Arc;

use aft_cluster::Cluster;
use aft_core::api::{AftApi, CommitOutcome};
use aft_core::AftNode;
use aft_faas::{Composition, FaasPlatform, RetryPolicy};
use aft_types::{payload_of_size, AftError, AftResult, Key, TransactionId, Value};

use crate::anomaly::AnomalyFlags;
use crate::drivers::RequestDriver;
use crate::generator::TransactionPlan;

/// Selects the API endpoint each request attempt runs against.
type ApiSelector = Arc<dyn Fn() -> AftResult<Arc<dyn AftApi>> + Send + Sync>;

/// Selects between the two ways a driver can reach AFT, so experiment
/// configuration (rather than code) decides whether a run is in-process or
/// crosses the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientMode {
    /// Calls go straight into the `AftNode`/`Cluster` objects in-process.
    #[default]
    InProcess,
    /// Calls go through an `aft-net` client over a socket to a served
    /// cluster.
    Networked,
}

impl ClientMode {
    /// Reads `AFT_CLIENT_MODE` (`net`/`networked` vs `local`/`inprocess`;
    /// unset means in-process).
    pub fn from_env() -> Self {
        match std::env::var("AFT_CLIENT_MODE").ok().as_deref() {
            Some("net") | Some("networked") => ClientMode::Networked,
            _ => ClientMode::InProcess,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ClientMode::InProcess => "in-process",
            ClientMode::Networked => "networked",
        }
    }
}

/// Executes logical requests through the AFT shim.
pub struct AftDriver {
    platform: Arc<FaasPlatform>,
    select_api: ApiSelector,
    retry: RetryPolicy,
    label: String,
}

/// Per-attempt request state carried across the functions of one composition.
struct AftRequestCtx {
    api: Option<Arc<dyn AftApi>>,
    txid: Option<TransactionId>,
    committed: bool,
    /// The commit's verdict (read-atomicity check runs where the metadata
    /// lives — in-process or server-side).
    outcome: Option<CommitOutcome>,
    /// True versions observed for reads served from committed data.
    reads: Vec<(Key, TransactionId)>,
    /// Values this request wrote, for read-your-writes verification.
    written: std::collections::HashMap<Key, Value>,
    ryw_violation: bool,
}

impl Drop for AftRequestCtx {
    fn drop(&mut self) {
        // A failed attempt leaves a dangling transaction; abort it eagerly
        // rather than waiting for the node's timeout sweep.
        if !self.committed {
            if let (Some(api), Some(txid)) = (&self.api, &self.txid) {
                let _ = api.abort(txid);
            }
        }
    }
}

impl AftDriver {
    /// A driver that sends every request to one AFT node.
    pub fn single_node(
        node: Arc<AftNode>,
        platform: Arc<FaasPlatform>,
        retry: RetryPolicy,
    ) -> Self {
        let api: Arc<dyn AftApi> = node;
        Self::from_api(api, platform, retry).with_label("AFT")
    }

    /// A driver that routes each request through a cluster's load balancer.
    pub fn clustered(
        cluster: Arc<Cluster>,
        platform: Arc<FaasPlatform>,
        retry: RetryPolicy,
    ) -> Self {
        AftDriver {
            platform,
            select_api: Arc::new(move || cluster.route().map(|node| node as Arc<dyn AftApi>)),
            retry,
            label: "AFT (clustered)".to_owned(),
        }
    }

    /// A driver over any [`AftApi`] endpoint — the constructor the networked
    /// client uses (the endpoint itself routes server-side), and the common
    /// base of the other two.
    pub fn from_api(api: Arc<dyn AftApi>, platform: Arc<FaasPlatform>, retry: RetryPolicy) -> Self {
        let label = format!("AFT ({})", api.api_label());
        AftDriver {
            platform,
            select_api: Arc::new(move || Ok(Arc::clone(&api))),
            retry,
            label,
        }
    }

    /// Overrides the driver's display name.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The FaaS platform requests run on.
    pub fn platform(&self) -> &Arc<FaasPlatform> {
        &self.platform
    }

    fn build_composition(&self, plan: Arc<TransactionPlan>) -> Composition<AftRequestCtx> {
        let platform = Arc::clone(&self.platform);
        Composition::repeated(
            "aft-request",
            plan.functions.len(),
            move |ctx: &mut AftRequestCtx, info| {
                let api = ctx
                    .api
                    .clone()
                    .ok_or_else(|| AftError::Unavailable("no AFT endpoint available".to_owned()))?;
                let txid = ctx.txid.ok_or_else(|| {
                    AftError::Unavailable("transaction was not started".to_owned())
                })?;
                let function = &plan.functions[info.step_index];

                for key in &function.reads {
                    match api.get_versioned(&txid, key)? {
                        Some((value, Some(version))) => {
                            ctx.reads.push((key.clone(), version));
                            let _ = value;
                        }
                        // Served from our own write buffer: verify we see the
                        // bytes we wrote (read-your-writes).
                        Some((value, None)) if ctx.written.get(key) != Some(&value) => {
                            ctx.ryw_violation = true;
                        }
                        Some((_, None)) => {}
                        None => {}
                    }
                }
                for key in &function.writes {
                    let value = payload_of_size(plan.value_size);
                    api.put(&txid, key.clone(), value.clone())?;
                    ctx.written.insert(key.clone(), value);
                    // The §1 hazard: a crash between two writes of the same
                    // request. AFT's write buffer keeps the partial update
                    // invisible; retries start a fresh transaction.
                    if platform.injector().should_crash_midway() {
                        return Err(AftError::FunctionFailed(
                            "injected crash between writes".to_owned(),
                        ));
                    }
                }
                if info.step_index + 1 == info.total_steps {
                    let outcome = api.commit(&txid, &ctx.reads)?;
                    ctx.committed = true;
                    ctx.outcome = Some(outcome);
                }
                Ok(())
            },
        )
    }
}

impl RequestDriver for AftDriver {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, plan: &TransactionPlan) -> AftResult<AnomalyFlags> {
        let plan = Arc::new(plan.clone());
        let composition = self.build_composition(Arc::clone(&plan));
        let select_api = Arc::clone(&self.select_api);

        let (ctx, outcome) = self.platform.run_request(
            &composition,
            move |_attempt| {
                let api = select_api().ok();
                let txid = api.as_ref().and_then(|a| a.begin().ok());
                AftRequestCtx {
                    api,
                    txid,
                    committed: false,
                    outcome: None,
                    reads: Vec::new(),
                    written: std::collections::HashMap::new(),
                    ryw_violation: false,
                }
            },
            &self.retry,
        );

        match ctx {
            Some(ctx) => {
                let atomic = ctx.outcome.as_ref().is_none_or(|o| o.atomic);
                Ok(AnomalyFlags {
                    read_your_writes: ctx.ryw_violation,
                    fractured_read: !atomic,
                })
            }
            None => Err(outcome
                .error
                .unwrap_or_else(|| AftError::FunctionFailed("request failed".to_owned()))),
        }
    }

    fn preload(&self, keys: &[Key], value_size: usize) -> AftResult<()> {
        let api = (self.select_api)()?;
        aft_core::api::preload_keys(&api, keys, |_| payload_of_size(value_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};
    use aft_chaos::FaasChaos;
    use aft_core::NodeConfig;
    use aft_faas::PlatformConfig;
    use aft_storage::InMemoryStore;
    use aft_types::clock::TickingClock;

    fn make_driver(failures: FaasChaos) -> (AftDriver, Arc<AftNode>) {
        let node = AftNode::with_clock(
            NodeConfig::test(),
            InMemoryStore::shared(),
            TickingClock::shared(1, 1),
        )
        .unwrap();
        let platform = FaasPlatform::new(PlatformConfig::test().with_chaos(failures));
        let driver =
            AftDriver::single_node(Arc::clone(&node), platform, RetryPolicy::with_attempts(10));
        (driver, node)
    }

    #[test]
    fn requests_commit_and_show_no_anomalies() {
        let (driver, node) = make_driver(FaasChaos::quiet());
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::standard().with_keys(50).with_value_size(64),
            3,
        );
        driver.preload(&generator.preload_plan(), 64).unwrap();
        let preloaded = node.stats().committed();

        for _ in 0..50 {
            let flags = driver.execute(&generator.next_plan()).unwrap();
            assert_eq!(flags, AnomalyFlags::CLEAN);
        }
        assert_eq!(node.stats().committed(), preloaded + 50);
        assert_eq!(node.in_flight(), 0, "no dangling transactions");
    }

    #[test]
    fn injected_failures_are_masked_by_retries() {
        let (driver, node) = make_driver(FaasChaos::uniform(0.3));
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::standard().with_keys(20).with_value_size(64),
            5,
        );
        driver.preload(&generator.preload_plan(), 64).unwrap();

        let mut clean = 0;
        for _ in 0..100 {
            if let Ok(flags) = driver.execute(&generator.next_plan()) {
                assert_eq!(flags, AnomalyFlags::CLEAN, "AFT must never show anomalies");
                clean += 1;
            }
        }
        assert!(
            clean >= 95,
            "almost every request completes despite failures"
        );
        assert!(
            driver.platform().stats().snapshot().injected_failures > 0,
            "failures were actually injected"
        );
        assert_eq!(node.in_flight(), 0, "failed attempts were aborted");
    }

    #[test]
    fn preload_writes_every_key_once() {
        let (driver, node) = make_driver(FaasChaos::quiet());
        let keys: Vec<Key> = (0..10).map(|i| Key::new(format!("k{i}"))).collect();
        driver.preload(&keys, 32).unwrap();
        let t = node.start_transaction();
        for key in &keys {
            assert!(node.get(&t, key).unwrap().is_some());
        }
    }

    #[test]
    fn client_mode_parses_from_env_labels() {
        assert_eq!(ClientMode::default(), ClientMode::InProcess);
        assert_eq!(ClientMode::InProcess.label(), "in-process");
        assert_eq!(ClientMode::Networked.label(), "networked");
    }
}
