//! Request drivers: the three ways a logical request executes in the
//! evaluation.
//!
//! * [`AftDriver`] — through the AFT shim (single node or a cluster's
//!   round-robin router), committing all writes atomically.
//! * [`PlainDriver`] — functions write directly to the storage engine, as a
//!   developer would without AFT ("Plain" in Figure 3 / Table 2). Values
//!   embed the request ID and cowritten set so anomalies can be detected.
//! * [`DynamoTxnDriver`] — DynamoDB's transaction mode: each function's reads
//!   become one `TransactGetItems` call and all of the request's writes are
//!   grouped into one `TransactWriteItems` call at the end (§6.1.2's adapted
//!   workload), with conflict-abort retries included in the latency.
//!
//! All drivers run their functions through the simulated FaaS platform, so
//! invocation overhead, concurrency limits, retries and injected failures
//! apply uniformly.

mod aft;
mod dynamo_txn;
mod plain;

pub use aft::{AftDriver, ClientMode};
pub use dynamo_txn::DynamoTxnDriver;
pub use plain::PlainDriver;

use aft_types::{AftResult, Key};

use crate::anomaly::AnomalyFlags;
use crate::generator::TransactionPlan;

/// A way of executing logical requests against some storage architecture.
pub trait RequestDriver: Send + Sync {
    /// Short name used in benchmark output ("AFT", "Plain", "DynamoDB Txns").
    fn name(&self) -> &str;

    /// Executes one logical request end-to-end — including FaaS invocation
    /// overhead and any retries — and reports the anomalies the request
    /// observed. Returns an error only if the request ultimately failed
    /// (retry budget exhausted).
    fn execute(&self, plan: &TransactionPlan) -> AftResult<AnomalyFlags>;

    /// Writes an initial version of every key so that measured reads never
    /// miss. Not measured; called once before an experiment.
    fn preload(&self, keys: &[Key], value_size: usize) -> AftResult<()>;
}
