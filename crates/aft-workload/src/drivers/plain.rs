//! The "Plain" baseline driver: functions write directly to cloud storage.
//!
//! This is what a serverless application looks like without AFT: every
//! function reads and writes the shared store in place, so a failure between
//! two writes exposes a fractional update, retries can double-expose partial
//! state, and concurrent requests freely interleave. To count the resulting
//! anomalies the driver embeds the same metadata AFT maintains — a request
//! ID and cowritten key set — inside each stored value (§6.1.2 reports this
//! costs about 70 extra bytes per 4 KB object).

use std::sync::Arc;

use aft_faas::{Composition, FaasPlatform, RetryPolicy};
use aft_storage::SharedStorage;
use aft_types::codec::{decode_tagged_value, encode_tagged_value};
use aft_types::{
    payload_of_size, AftError, AftResult, Key, SharedClock, SystemClock, TaggedValue,
    TransactionId, Uuid,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::anomaly::{AnomalyFlags, TaggedObservation};
use crate::drivers::RequestDriver;
use crate::generator::TransactionPlan;

/// Executes logical requests directly against a storage engine, without AFT.
pub struct PlainDriver {
    platform: Arc<FaasPlatform>,
    storage: SharedStorage,
    retry: RetryPolicy,
    rng: Mutex<StdRng>,
    /// Strictly increasing tag timestamps. Real deployments use the wall
    /// clock; at simulation speed many requests share a millisecond, so a
    /// per-driver counter (seeded from the clock) keeps tag order consistent
    /// with issue order and avoids spurious fractured-read reports.
    tag_clock: std::sync::atomic::AtomicU64,
    label: String,
}

/// Per-attempt state for a plain request.
struct PlainRequestCtx {
    observation: TaggedObservation,
}

impl PlainDriver {
    /// Creates a plain driver over `storage`.
    pub fn new(storage: SharedStorage, platform: Arc<FaasPlatform>, retry: RetryPolicy) -> Self {
        Self::with_clock(storage, platform, retry, SystemClock::shared())
    }

    /// Creates a plain driver with an explicit clock for request tags.
    pub fn with_clock(
        storage: SharedStorage,
        platform: Arc<FaasPlatform>,
        retry: RetryPolicy,
        clock: SharedClock,
    ) -> Self {
        let label = format!("Plain ({})", storage.name());
        PlainDriver {
            platform,
            storage,
            retry,
            rng: Mutex::new(StdRng::seed_from_u64(0x71A1)),
            tag_clock: std::sync::atomic::AtomicU64::new(clock.now() * 1_000),
            label,
        }
    }

    fn new_tag(&self) -> TransactionId {
        let uuid = Uuid::from_rng(&mut *self.rng.lock());
        // Reserve a window of 16 so per-attempt re-tags stay unique.
        let timestamp = self
            .tag_clock
            .fetch_add(16, std::sync::atomic::Ordering::Relaxed);
        TransactionId::new(timestamp, uuid)
    }

    fn build_composition(&self, plan: Arc<TransactionPlan>) -> Composition<PlainRequestCtx> {
        let storage = self.storage.clone();
        let platform = Arc::clone(&self.platform);
        let write_set: Arc<Vec<Key>> = Arc::new(plan.write_set());
        Composition::repeated(
            "plain-request",
            plan.functions.len(),
            move |ctx: &mut PlainRequestCtx, info| {
                let function = &plan.functions[info.step_index];
                for key in &function.reads {
                    let observed = match storage.get(key.as_str())? {
                        Some(blob) => Some(decode_tagged_value(&blob)?),
                        None => None,
                    };
                    ctx.observation.record_read(key.clone(), observed);
                }
                for key in &function.writes {
                    let value = TaggedValue::new(
                        ctx.observation.own_tag,
                        write_set.as_ref().clone(),
                        payload_of_size(plan.value_size),
                    );
                    storage.put(key.as_str(), encode_tagged_value(&value))?;
                    ctx.observation.record_write(key.clone());
                    // Without AFT, a crash here leaves the previous writes
                    // visible to everyone — the §1 fractional-update hazard.
                    if platform.injector().should_crash_midway() {
                        return Err(AftError::FunctionFailed(
                            "injected crash between writes".to_owned(),
                        ));
                    }
                }
                Ok(())
            },
        )
    }
}

impl RequestDriver for PlainDriver {
    fn name(&self) -> &str {
        &self.label
    }

    fn execute(&self, plan: &TransactionPlan) -> AftResult<AnomalyFlags> {
        let plan = Arc::new(plan.clone());
        let composition = self.build_composition(Arc::clone(&plan));
        let tagger = self.new_tag();
        let (ctx, outcome) = self.platform.run_request(
            &composition,
            move |attempt| PlainRequestCtx {
                // Retries re-tag so that a half-finished earlier attempt is a
                // distinct writer — exactly what a client re-issuing a request
                // looks like to the rest of the system.
                observation: TaggedObservation::new(TransactionId::new(
                    tagger.timestamp.wrapping_add(attempt as u64),
                    tagger.uuid,
                )),
            },
            &self.retry,
        );
        match ctx {
            Some(ctx) => Ok(ctx.observation.analyze()),
            None => Err(outcome
                .error
                .unwrap_or_else(|| AftError::FunctionFailed("request failed".to_owned()))),
        }
    }

    fn preload(&self, keys: &[Key], value_size: usize) -> AftResult<()> {
        let tag = TransactionId::new(0, Uuid::from_u128(0x9E10AD));
        let items: Vec<(String, aft_types::Value)> = keys
            .iter()
            .map(|key| {
                let value = TaggedValue::new(tag, vec![key.clone()], payload_of_size(value_size));
                (key.as_str().to_owned(), encode_tagged_value(&value))
            })
            .collect();
        self.storage.put_batch(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};
    use aft_chaos::FaasChaos;
    use aft_faas::PlatformConfig;
    use aft_storage::{BackendConfig, BackendKind};

    fn make_driver(kind: BackendKind) -> PlainDriver {
        let storage = aft_storage::make_backend(BackendConfig::test(kind));
        let platform = FaasPlatform::new(PlatformConfig::test());
        PlainDriver::new(storage, platform, RetryPolicy::with_attempts(3))
    }

    #[test]
    fn single_client_requests_are_anomaly_free() {
        // Without concurrency or failures there is nobody to interleave with,
        // so even the plain driver observes no anomalies.
        let driver = make_driver(BackendKind::DynamoDb);
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::standard()
                .with_keys(40)
                .with_value_size(128),
            9,
        );
        driver.preload(&generator.preload_plan(), 128).unwrap();
        for _ in 0..30 {
            let flags = driver.execute(&generator.next_plan()).unwrap();
            assert_eq!(flags, AnomalyFlags::CLEAN);
        }
    }

    #[test]
    fn partial_writes_from_crashed_functions_are_visible() {
        // A mid-body crash in the plain driver leaves some of the request's
        // writes in storage even though the request failed — the motivating
        // anomaly of §1. With no retries the request errors out, and the
        // partially written key retains the crashed request's tag.
        let storage = aft_storage::make_backend(BackendConfig::test(BackendKind::DynamoDb));
        let platform = FaasPlatform::new(PlatformConfig::test().with_chaos(FaasChaos {
            before_body: 0.0,
            after_body: 0.0,
            mid_body: 1.0,
        }));
        let driver = PlainDriver::new(storage.clone(), platform, RetryPolicy::no_retries());
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::standard().with_keys(10).with_value_size(64),
            2,
        );
        driver.preload(&generator.preload_plan(), 64).unwrap();

        let plan = generator.next_plan();
        let result = driver.execute(&plan);
        assert!(result.is_err(), "the crashed request fails");

        // The first written key of the plan now holds data from the failed
        // request (a fractional update).
        let first_write = &plan.functions[0].writes[0];
        let blob = storage.get(first_write.as_str()).unwrap().unwrap();
        let tagged = decode_tagged_value(&blob).unwrap();
        assert_ne!(tagged.tid, TransactionId::new(0, Uuid::from_u128(0x9E10AD)));
    }

    #[test]
    fn preload_then_read_round_trips_over_every_backend() {
        for kind in [BackendKind::S3, BackendKind::DynamoDb, BackendKind::Redis] {
            let driver = make_driver(kind);
            let keys: Vec<Key> = (0..5).map(|i| Key::new(format!("k{i}"))).collect();
            driver.preload(&keys, 32).unwrap();
            let plan = TransactionPlan {
                functions: vec![crate::generator::FunctionPlan {
                    reads: keys.clone(),
                    writes: vec![],
                }],
                value_size: 32,
            };
            let flags = driver.execute(&plan).unwrap();
            assert_eq!(flags, AnomalyFlags::CLEAN, "backend {kind:?}");
        }
    }
}
