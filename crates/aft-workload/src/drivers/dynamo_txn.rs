//! The DynamoDB transaction-mode baseline driver.
//!
//! DynamoDB's transaction mode offers stronger guarantees than plain
//! DynamoDB, but each transaction is a single API call that must be read-only
//! or write-only, and nothing ties together the calls made by different
//! functions of one request. The paper adapts the workload to be as
//! favourable as possible to this model (§6.1.2): each function's reads
//! become one `TransactGetItems` call, and *all* of the request's writes are
//! grouped into a single `TransactWriteItems` call issued by the last
//! function. This removes read-your-writes anomalies by construction, but
//! reads still span two separate transactions, so fractured reads remain —
//! and under contention the conflict-abort retries become expensive
//! (Figure 4).

use std::sync::Arc;

use aft_faas::{Composition, FaasPlatform, RetryPolicy};
use aft_storage::DynamoTransactionMode;
use aft_types::codec::{decode_tagged_value, encode_tagged_value};
use aft_types::{
    payload_of_size, AftError, AftResult, Key, SharedClock, SystemClock, TaggedValue,
    TransactionId, Uuid,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::anomaly::{AnomalyFlags, TaggedObservation};
use crate::drivers::RequestDriver;
use crate::generator::TransactionPlan;

/// Executes logical requests using DynamoDB's transaction mode.
pub struct DynamoTxnDriver {
    platform: Arc<FaasPlatform>,
    table: DynamoTransactionMode,
    retry: RetryPolicy,
    rng: Mutex<StdRng>,
    /// Strictly increasing tag timestamps (see `PlainDriver::tag_clock`).
    tag_clock: std::sync::atomic::AtomicU64,
}

/// Per-attempt state for a transaction-mode request.
struct DynamoTxnCtx {
    observation: TaggedObservation,
}

impl DynamoTxnDriver {
    /// Creates a driver over a simulated DynamoDB table's transactional API.
    pub fn new(
        table: DynamoTransactionMode,
        platform: Arc<FaasPlatform>,
        retry: RetryPolicy,
    ) -> Self {
        Self::with_clock(table, platform, retry, SystemClock::shared())
    }

    /// Creates a driver with an explicit clock for request tags.
    pub fn with_clock(
        table: DynamoTransactionMode,
        platform: Arc<FaasPlatform>,
        retry: RetryPolicy,
        clock: SharedClock,
    ) -> Self {
        DynamoTxnDriver {
            platform,
            table,
            retry,
            rng: Mutex::new(StdRng::seed_from_u64(0xD7A0)),
            tag_clock: std::sync::atomic::AtomicU64::new(clock.now() * 1_000),
        }
    }

    fn new_tag(&self) -> TransactionId {
        let uuid = Uuid::from_rng(&mut *self.rng.lock());
        let timestamp = self
            .tag_clock
            .fetch_add(16, std::sync::atomic::Ordering::Relaxed);
        TransactionId::new(timestamp, uuid)
    }

    fn build_composition(&self, plan: Arc<TransactionPlan>) -> Composition<DynamoTxnCtx> {
        let table = self.table.clone();
        let write_set: Arc<Vec<Key>> = Arc::new(plan.write_set());
        Composition::repeated(
            "dynamo-txn-request",
            plan.functions.len(),
            move |ctx: &mut DynamoTxnCtx, info| {
                let function = &plan.functions[info.step_index];

                // One read-only transaction per function.
                if !function.reads.is_empty() {
                    let keys: Vec<String> = function
                        .reads
                        .iter()
                        .map(|k| k.as_str().to_owned())
                        .collect();
                    let values = table.read(&keys)?;
                    for (key, blob) in function.reads.iter().zip(values) {
                        let observed = match blob {
                            Some(blob) => Some(decode_tagged_value(&blob)?),
                            None => None,
                        };
                        ctx.observation.record_read(key.clone(), observed);
                    }
                }

                // All of the request's writes go into a single write-only
                // transaction issued by the last function.
                if info.step_index + 1 == info.total_steps && !write_set.is_empty() {
                    let items: Vec<(String, aft_types::Value)> = write_set
                        .iter()
                        .map(|key| {
                            let value = TaggedValue::new(
                                ctx.observation.own_tag,
                                write_set.as_ref().clone(),
                                payload_of_size(plan.value_size),
                            );
                            (key.as_str().to_owned(), encode_tagged_value(&value))
                        })
                        .collect();
                    table.write(items)?;
                    for key in write_set.iter() {
                        ctx.observation.record_write(key.clone());
                    }
                }
                Ok(())
            },
        )
    }
}

impl RequestDriver for DynamoTxnDriver {
    fn name(&self) -> &str {
        "DynamoDB Txns"
    }

    fn execute(&self, plan: &TransactionPlan) -> AftResult<AnomalyFlags> {
        let plan = Arc::new(plan.clone());
        let composition = self.build_composition(Arc::clone(&plan));
        let tag = self.new_tag();
        let (ctx, outcome) = self.platform.run_request(
            &composition,
            move |attempt| DynamoTxnCtx {
                observation: TaggedObservation::new(TransactionId::new(
                    tag.timestamp.wrapping_add(attempt as u64),
                    tag.uuid,
                )),
            },
            &self.retry,
        );
        match ctx {
            Some(ctx) => Ok(ctx.observation.analyze()),
            None => Err(outcome
                .error
                .unwrap_or_else(|| AftError::FunctionFailed("request failed".to_owned()))),
        }
    }

    fn preload(&self, keys: &[Key], value_size: usize) -> AftResult<()> {
        let tag = TransactionId::new(0, Uuid::from_u128(0x9E10AD));
        // The transactional API caps items per call; preload through the
        // table's regular batch path instead.
        let items: Vec<(String, aft_types::Value)> = keys
            .iter()
            .map(|key| {
                let value = TaggedValue::new(tag, vec![key.clone()], payload_of_size(value_size));
                (key.as_str().to_owned(), encode_tagged_value(&value))
            })
            .collect();
        use aft_storage::StorageEngine;
        self.table.table().put_batch(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};
    use aft_faas::PlatformConfig;
    use aft_storage::{LatencyModel, ServiceProfile, SimDynamo, StorageEngine};

    fn make_driver() -> (DynamoTxnDriver, Arc<SimDynamo>) {
        let table = SimDynamo::with_profile(ServiceProfile::zero(), LatencyModel::disabled(), 5);
        let platform = FaasPlatform::new(PlatformConfig::test());
        let driver = DynamoTxnDriver::new(
            table.transaction_mode(),
            platform,
            RetryPolicy::with_attempts(5),
        );
        (driver, table)
    }

    #[test]
    fn requests_read_and_write_through_the_transactional_api() {
        let (driver, table) = make_driver();
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::standard().with_keys(30).with_value_size(64),
            4,
        );
        driver.preload(&generator.preload_plan(), 64).unwrap();

        for _ in 0..20 {
            let flags = driver.execute(&generator.next_plan()).unwrap();
            // A single client cannot interleave with anyone.
            assert_eq!(flags, AnomalyFlags::CLEAN);
        }
        let stats = table.stats().snapshot();
        assert!(stats.calls(aft_storage::OpKind::TransactRead) >= 40);
        assert!(stats.calls(aft_storage::OpKind::TransactWrite) >= 20);
    }

    #[test]
    fn writes_are_grouped_into_one_transaction_per_request() {
        let (driver, table) = make_driver();
        let mut generator = WorkloadGenerator::new(
            WorkloadConfig::standard().with_keys(30).with_value_size(64),
            8,
        );
        driver.preload(&generator.preload_plan(), 64).unwrap();
        let before = table.stats().snapshot();
        driver.execute(&generator.next_plan()).unwrap();
        let delta = table.stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.calls(aft_storage::OpKind::TransactWrite),
            1,
            "all writes in one TransactWriteItems call"
        );
        assert_eq!(
            delta.calls(aft_storage::OpKind::TransactRead),
            2,
            "one per function"
        );
    }
}
