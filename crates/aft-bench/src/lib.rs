//! The benchmark harness for the AFT reproduction.
//!
//! Every table and figure in the paper's evaluation (§6) has:
//!
//! * a **binary** under `src/bin/` (`fig2_io_latency`, `fig3_table2_e2e`, ...)
//!   that runs the full experiment and prints the same rows/series the paper
//!   reports, and
//! * a **Criterion bench** under `benches/` that measures the per-request
//!   building blocks of the same experiment, so `cargo bench` exercises every
//!   figure's code path in a few minutes.
//!
//! The experiments run against the simulated substrates with latencies scaled
//! down by a single global factor (`AFT_BENCH_SCALE`, default 0.1). Scaling
//! every service identically preserves the ratios, crossovers, and winners —
//! the properties EXPERIMENTS.md compares against the paper — while letting
//! the whole suite finish quickly.
//!
//! Environment knobs (all optional):
//!
//! * `AFT_BENCH_SCALE` — latency scale factor (default `0.1`).
//! * `AFT_BENCH_REQUESTS` — requests per client for latency experiments
//!   (default 200).
//! * `AFT_BENCH_FAST` — if set, shrinks every experiment (fewer requests,
//!   fewer clients, shorter timelines) for smoke-testing.

pub mod checkpoint;
pub mod dissemination;
pub mod experiments;
pub mod json;
pub mod overload;
pub mod pipelined;
pub mod recovery;
pub mod report;
pub mod scaling;
pub mod service;
pub mod setup;
pub mod summary;

pub use checkpoint::{fig13_checkpoint, CheckpointBenchConfig, CheckpointReport};
pub use dissemination::{fig12_dissemination, DisseminationBenchConfig, DisseminationReport};
pub use json::Json;
pub use overload::{fig11_overload, OverloadConfig, OverloadReport};
pub use pipelined::{fig2_pipelined, PipelineConfig, PipelineReport};
pub use recovery::{fig10_recovery, FaultMode, RecoveryConfig, RecoveryReport};
pub use report::Table;
pub use scaling::{fig7_throughput_scaling, ScalingConfig, ThroughputReport};
pub use service::{fig8_service, ServiceConfig, ServiceReport};
pub use setup::BenchEnv;
pub use summary::aggregate_bench_reports;
