//! One function per table/figure of the paper's evaluation (§6).
//!
//! Each function runs the experiment against the simulated substrates and
//! returns the rendered result table(s). The harness binaries print them; the
//! `run_all` binary and the integration tests call them with reduced sizes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use aft_cluster::{Cluster, DisseminationConfig};
use aft_core::LocalGcConfig;
use aft_storage::BackendKind;
use aft_types::{payload_of_size, Key};
use aft_workload::{
    run_closed_loop, AftDriver, ClientMode, LatencyRecorder, RequestDriver, RunConfig, RunResult,
    WorkloadConfig,
};

use crate::report::{ms, Table};
use crate::setup::{BenchEnv, ServeOptions};

fn latency_row(table: &mut Table, config: &str, detail: &str, result: &RunResult) {
    table.add_row(vec![
        config.to_owned(),
        detail.to_owned(),
        ms(result.latency.median_ms()),
        ms(result.latency.p99_ms()),
        result.completed.to_string(),
    ]);
}

// ---------------------------------------------------------------------------
// Figure 2 — IO latency of 1/5/10 writes, with and without AFT, with and
// without batching, over DynamoDB.
// ---------------------------------------------------------------------------

/// Figure 2: direct-to-DynamoDB writes versus writes through AFT's commit
/// protocol, sequential versus batched, for 1/5/10 writes per request.
pub fn fig2_io_latency(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 2 — IO latency: 1/5/10 writes (ms)",
        &[
            "configuration",
            "writes",
            "median (ms)",
            "p99 (ms)",
            "requests",
        ],
    );
    let requests = env.sized(env.requests_per_client, 30);
    let payload = payload_of_size(4 * 1024);

    let write_counts = [1usize, 5, 10];
    for &writes in &write_counts {
        // DynamoDB Sequential: one PutItem per write.
        let storage = env.storage(BackendKind::DynamoDb, 0xF2_01 + writes as u64);
        let mut recorder = LatencyRecorder::new();
        for request in 0..requests {
            let start = Instant::now();
            for w in 0..writes {
                storage
                    .put(&format!("fig2/{request}/{w}"), payload.clone())
                    .expect("simulated storage never fails");
            }
            recorder.record(start.elapsed());
        }
        let stats = recorder.stats();
        table.add_row(vec![
            "DynamoDB Sequential".into(),
            writes.to_string(),
            ms(stats.median_ms()),
            ms(stats.p99_ms()),
            requests.to_string(),
        ]);

        // DynamoDB Batch: one BatchWriteItem per request.
        let storage = env.storage(BackendKind::DynamoDb, 0xF2_02 + writes as u64);
        let mut recorder = LatencyRecorder::new();
        for request in 0..requests {
            let items: Vec<(String, aft_types::Value)> = (0..writes)
                .map(|w| (format!("fig2/{request}/{w}"), payload.clone()))
                .collect();
            let start = Instant::now();
            storage
                .put_batch(items)
                .expect("simulated storage never fails");
            recorder.record(start.elapsed());
        }
        let stats = recorder.stats();
        table.add_row(vec![
            "DynamoDB Batch".into(),
            writes.to_string(),
            ms(stats.median_ms()),
            ms(stats.p99_ms()),
            requests.to_string(),
        ]);

        // AFT Sequential: one Put call to the shim per write, then commit.
        let storage = env.storage(BackendKind::DynamoDb, 0xF2_03 + writes as u64);
        let node = env.node(storage, true, 0xF2_03);
        let mut recorder = LatencyRecorder::new();
        for request in 0..requests {
            let start = Instant::now();
            let txid = node.start_transaction();
            for w in 0..writes {
                node.put(
                    &txid,
                    Key::new(format!("fig2/{request}/{w}")),
                    payload.clone(),
                )
                .expect("put");
            }
            node.commit(&txid).expect("commit");
            recorder.record(start.elapsed());
        }
        let stats = recorder.stats();
        table.add_row(vec![
            "AFT Sequential".into(),
            writes.to_string(),
            ms(stats.median_ms()),
            ms(stats.p99_ms()),
            requests.to_string(),
        ]);

        // AFT Batch: all writes shipped to the shim in one request.
        let storage = env.storage(BackendKind::DynamoDb, 0xF2_04 + writes as u64);
        let node = env.node(storage, true, 0xF2_04);
        let mut recorder = LatencyRecorder::new();
        for request in 0..requests {
            let items: Vec<(Key, aft_types::Value)> = (0..writes)
                .map(|w| (Key::new(format!("fig2/{request}/{w}")), payload.clone()))
                .collect();
            let start = Instant::now();
            let txid = node.start_transaction();
            node.put_all(&txid, items).expect("put_all");
            node.commit(&txid).expect("commit");
            recorder.record(start.elapsed());
        }
        let stats = recorder.stats();
        table.add_row(vec![
            "AFT Batch".into(),
            writes.to_string(),
            ms(stats.median_ms()),
            ms(stats.p99_ms()),
            requests.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 3 + Table 2 — end-to-end latency and anomaly counts.
// ---------------------------------------------------------------------------

/// Figure 3 and Table 2: end-to-end latency of the standard 2-function,
/// 6-IO transaction over S3 / DynamoDB / Redis (Plain vs AFT vs DynamoDB
/// transaction mode), plus the anomaly counts of Table 2.
pub fn fig3_and_table2(env: &BenchEnv) -> (Table, Table) {
    let clients = env.sized(10, 4);
    let requests = env.sized(env.requests_per_client, 25);
    let workload = WorkloadConfig::standard();

    let mut latency = Table::new(
        "Figure 3 — end-to-end latency, 2-function / 6-IO transactions",
        &[
            "configuration",
            "backend",
            "median (ms)",
            "p99 (ms)",
            "requests",
        ],
    );
    let mut anomalies = Table::new(
        "Table 2 — consistency anomalies",
        &[
            "configuration",
            "consistency level",
            "RYW anomalies",
            "FR anomalies",
            "transactions",
        ],
    );

    let run = |driver: &dyn RequestDriver, seed: u64| -> RunResult {
        run_closed_loop(
            driver,
            &RunConfig::new(workload.clone())
                .with_clients(clients)
                .with_requests(requests)
                .with_seed(seed),
        )
        .expect("experiment run")
    };

    // Plain baselines over each backend.
    for (kind, consistency) in [
        (BackendKind::S3, "None"),
        (BackendKind::DynamoDb, "None"),
        (BackendKind::Redis, "Shard Linearizable"),
    ] {
        let driver = env.plain_driver(kind, 0xF3_10 + kind.label().len() as u64);
        let result = run(&driver, 0xF3_11);
        latency_row(&mut latency, "Plain", kind.label(), &result);
        anomalies.add_row(vec![
            format!("{} (Plain)", kind.label()),
            consistency.into(),
            result.anomalies.ryw_transactions.to_string(),
            result.anomalies.fr_transactions.to_string(),
            result.anomalies.total_transactions.to_string(),
        ]);
    }

    // AFT over each backend.
    for kind in BackendKind::EVALUATED {
        let driver = env.aft_driver(kind, true, 0xF3_20 + kind.label().len() as u64);
        let result = run(&driver, 0xF3_21);
        latency_row(&mut latency, "AFT", kind.label(), &result);
        if kind == BackendKind::DynamoDb {
            anomalies.add_row(vec![
                "AFT".into(),
                "Read Atomic".into(),
                result.anomalies.ryw_transactions.to_string(),
                result.anomalies.fr_transactions.to_string(),
                result.anomalies.total_transactions.to_string(),
            ]);
        }
    }

    // DynamoDB transaction mode.
    let driver = env.dynamo_txn_driver(0xF3_30);
    let result = run(&driver, 0xF3_31);
    latency_row(&mut latency, "Transactional", "DynamoDB", &result);
    anomalies.add_row(vec![
        "DynamoDB (Serializable)".into(),
        "Serializable".into(),
        result.anomalies.ryw_transactions.to_string(),
        result.anomalies.fr_transactions.to_string(),
        result.anomalies.total_transactions.to_string(),
    ]);

    (latency, anomalies)
}

// ---------------------------------------------------------------------------
// Figure 4 — read caching and data skew.
// ---------------------------------------------------------------------------

/// Figure 4: AFT over DynamoDB and Redis with and without the data cache,
/// plus DynamoDB transaction mode, across Zipf coefficients 1.0 / 1.5 / 2.0.
pub fn fig4_caching_skew(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 4 — read caching and data skew",
        &[
            "configuration",
            "zipf",
            "median (ms)",
            "p99 (ms)",
            "cache hit rate",
        ],
    );
    let clients = env.sized(10, 4);
    let requests = env.sized(env.requests_per_client, 20);
    // The paper uses a 100,000-key space; we default to 50,000 to keep the
    // preload fast and memory modest (see EXPERIMENTS.md).
    let keys = env.sized(50_000, 2_000);

    for zipf in [1.0, 1.5, 2.0] {
        let workload = WorkloadConfig::caching_skew(zipf).with_keys(keys);
        let run = |driver: &dyn RequestDriver| -> RunResult {
            run_closed_loop(
                driver,
                &RunConfig::new(workload.clone())
                    .with_clients(clients)
                    .with_requests(requests)
                    .with_seed(0xF4_01),
            )
            .expect("experiment run")
        };

        let driver = env.dynamo_txn_driver(0xF4_10);
        let result = run(&driver);
        table.add_row(vec![
            "DynamoDB Txns".into(),
            format!("{zipf:.1}"),
            ms(result.latency.median_ms()),
            ms(result.latency.p99_ms()),
            "-".into(),
        ]);

        for kind in [BackendKind::DynamoDb, BackendKind::Redis] {
            for caching in [false, true] {
                let storage = env.storage(kind, 0xF4_20);
                let node = env.node(storage, caching, 0xF4_21);
                let driver = AftDriver::single_node(Arc::clone(&node), env.platform(), env.retry())
                    .with_label(crate::setup::aft_label(kind, caching));
                let result = run(&driver);
                let hit_rate = node.stats().snapshot().cache_hit_rate();
                table.add_row(vec![
                    driver.name().to_owned(),
                    format!("{zipf:.1}"),
                    ms(result.latency.median_ms()),
                    ms(result.latency.p99_ms()),
                    format!("{:.0}%", hit_rate * 100.0),
                ]);
            }
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 5 — read/write ratios.
// ---------------------------------------------------------------------------

/// Figure 5: latency of 10-IO transactions as the fraction of reads sweeps
/// from 0% to 100%, for AFT over DynamoDB and Redis.
pub fn fig5_rw_ratio(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 5 — read/write ratio (10 IOs per transaction)",
        &[
            "configuration",
            "% reads",
            "median (ms)",
            "p99 (ms)",
            "storage API calls/txn",
        ],
    );
    let clients = env.sized(10, 4);
    let requests = env.sized(env.requests_per_client, 20);

    for kind in [BackendKind::DynamoDb, BackendKind::Redis] {
        for pct in [0u32, 20, 40, 60, 80, 100] {
            let workload = WorkloadConfig::read_write_ratio(pct);
            let storage = env.storage(kind, 0xF5_01 + pct as u64);
            let node = env.node(storage.clone(), true, 0xF5_02);
            let driver = AftDriver::single_node(node, env.platform(), env.retry())
                .with_label(crate::setup::aft_label(kind, true));
            let before = storage.stats().snapshot();
            let result = run_closed_loop(
                &driver,
                &RunConfig::new(workload)
                    .with_clients(clients)
                    .with_requests(requests)
                    .with_seed(0xF5_03),
            )
            .expect("experiment run");
            let delta = storage.stats().snapshot().delta_since(&before);
            let calls_per_txn = if result.completed == 0 {
                0.0
            } else {
                delta.total_calls() as f64 / result.completed as f64
            };
            table.add_row(vec![
                driver.name().to_owned(),
                format!("{pct}%"),
                ms(result.latency.median_ms()),
                ms(result.latency.p99_ms()),
                format!("{calls_per_txn:.1}"),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 6 — transaction length.
// ---------------------------------------------------------------------------

/// Figure 6: latency as the composition length grows from 1 to 10 functions
/// (3 IOs per function), for AFT over DynamoDB and Redis.
pub fn fig6_txn_length(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 6 — transaction length (functions per request)",
        &["configuration", "functions", "median (ms)", "p99 (ms)"],
    );
    let clients = env.sized(10, 4);
    let requests = env.sized(env.requests_per_client / 2, 10).max(5);
    let lengths = [1usize, 2, 4, 6, 8, 10];

    for kind in [BackendKind::DynamoDb, BackendKind::Redis] {
        for &functions in &lengths {
            let workload = WorkloadConfig::transaction_length(functions);
            let driver = env.aft_driver(kind, true, 0xF6_01 + functions as u64);
            let result = run_closed_loop(
                &driver,
                &RunConfig::new(workload)
                    .with_clients(clients)
                    .with_requests(requests)
                    .with_seed(0xF6_02),
            )
            .expect("experiment run");
            table.add_row(vec![
                driver.name().to_owned(),
                functions.to_string(),
                ms(result.latency.median_ms()),
                ms(result.latency.p99_ms()),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 7 — single-node scalability.
// ---------------------------------------------------------------------------

/// Figure 7: throughput of a single AFT node as the number of closed-loop
/// clients grows, over DynamoDB and Redis (Zipf 1.5).
pub fn fig7_single_node(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 7 — single-node throughput vs clients (Zipf 1.5)",
        &[
            "configuration",
            "clients",
            "throughput (txn/s)",
            "median (ms)",
        ],
    );
    let client_counts: Vec<usize> = if env.fast {
        vec![1, 4, 8]
    } else {
        vec![1, 5, 10, 20, 30, 40, 45, 50]
    };
    let requests = env.sized(60, 15);
    let workload = WorkloadConfig::standard().with_zipf(1.5);

    for kind in [BackendKind::DynamoDb, BackendKind::Redis] {
        for &clients in &client_counts {
            let driver = env.aft_driver(kind, true, 0xF7_01 + clients as u64);
            let result = run_closed_loop(
                &driver,
                &RunConfig::new(workload.clone())
                    .with_clients(clients)
                    .with_requests(requests)
                    .with_seed(0xF7_02),
            )
            .expect("experiment run");
            table.add_row(vec![
                driver.name().to_owned(),
                clients.to_string(),
                format!("{:.0}", result.throughput_tps()),
                ms(result.latency.median_ms()),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 8 — distributed scalability.
// ---------------------------------------------------------------------------

/// Figure 8: multi-node throughput (40 clients per node) against the ideal
/// linear-scaling line, over DynamoDB and Redis.
pub fn fig8_distributed(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 8 — distributed throughput vs clients (40 clients/node)",
        &[
            "configuration",
            "nodes",
            "clients",
            "throughput (txn/s)",
            "ideal (txn/s)",
            "% of ideal",
        ],
    );
    let clients_per_node = env.sized(40, 8);
    let node_counts: Vec<usize> = if env.fast {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    };
    let requests = env.sized(40, 10);
    let workload = WorkloadConfig::standard().with_zipf(1.5);

    // In-process by default; AFT_CLIENT_MODE=net runs the same sweep
    // through the aft-net service layer over loopback sockets.
    let mode = ClientMode::from_env();
    for kind in [BackendKind::DynamoDb, BackendKind::Redis] {
        let mut single_node_tps = 0.0f64;
        for &nodes in &node_counts {
            let storage = env.storage(kind, 0xF8_01 + nodes as u64);
            let cluster = env.cluster(storage, nodes, true);
            cluster.start_background();
            let (driver, service) = env.cluster_driver(&cluster, mode, &ServeOptions::default());
            let driver = match mode {
                ClientMode::InProcess => driver.with_label(format!("AFT ({})", kind.label())),
                ClientMode::Networked => {
                    driver.with_label(format!("AFT ({}, networked)", kind.label()))
                }
            };
            let result = run_closed_loop(
                &driver,
                &RunConfig::new(workload.clone())
                    .with_clients(clients_per_node * nodes)
                    .with_requests(requests)
                    .with_seed(0xF8_02),
            )
            .expect("experiment run");
            drop(service);
            cluster.shutdown();

            let tps = result.throughput_tps();
            if nodes == node_counts[0] {
                single_node_tps = tps / node_counts[0] as f64;
            }
            let ideal = single_node_tps * nodes as f64;
            let pct = if ideal > 0.0 {
                100.0 * tps / ideal
            } else {
                100.0
            };
            table.add_row(vec![
                driver.name().to_owned(),
                nodes.to_string(),
                (clients_per_node * nodes).to_string(),
                format!("{tps:.0}"),
                format!("{ideal:.0}"),
                format!("{pct:.0}%"),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 9 — garbage collection overhead.
// ---------------------------------------------------------------------------

/// Figure 9: throughput with and without global garbage collection, and the
/// rate at which superseded transactions are deleted.
pub fn fig9_gc(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 9 — garbage collection overhead (Zipf 1.5, 1 node, 40 clients)",
        &[
            "configuration",
            "throughput (txn/s)",
            "transactions committed",
            "transactions deleted",
            "deleted/s",
            "live data versions",
        ],
    );
    let clients = env.sized(40, 8);
    let duration = env.timed(Duration::from_secs(10), Duration::from_secs(2));
    let workload = WorkloadConfig::standard().with_zipf(1.5);

    for gc_enabled in [true, false] {
        let storage = env.storage(BackendKind::DynamoDb, 0xF9_01 + gc_enabled as u64);
        let mut cluster_config = aft_cluster::ClusterConfig {
            initial_nodes: 1,
            node_template: env.node_template(true),
            dissemination: DisseminationConfig::all_to_all()
                .with_interval(Duration::from_millis(200)),
            local_gc: LocalGcConfig::default(),
            local_gc_enabled: gc_enabled,
            global_gc_enabled: gc_enabled,
            replacement_delay: Duration::ZERO,
            ..aft_cluster::ClusterConfig::default()
        };
        cluster_config.global_gc = aft_cluster::GlobalGcConfig::default();
        let cluster = Cluster::new(cluster_config, storage.clone()).expect("cluster");
        cluster.start_background();
        let driver = AftDriver::clustered(Arc::clone(&cluster), env.platform(), env.retry())
            .with_label(if gc_enabled {
                "GC enabled"
            } else {
                "GC disabled"
            });

        let result = run_closed_loop(
            &driver,
            &RunConfig::new(workload.clone())
                .with_clients(clients)
                .with_requests(0)
                .with_duration(duration)
                .with_seed(0xF9_02),
        )
        .expect("experiment run");
        // Give the background GC a final chance to catch up, then stop it.
        let _ = cluster.run_maintenance_round();
        cluster.shutdown();

        let deleted = cluster.total_gc_deleted();
        let live_versions = storage.list_prefix("data/").map(|k| k.len()).unwrap_or(0);
        table.add_row(vec![
            driver.name().to_owned(),
            format!("{:.0}", result.throughput_tps()),
            result.completed.to_string(),
            deleted.to_string(),
            format!("{:.0}", deleted as f64 / result.elapsed.as_secs_f64()),
            live_versions.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 10 — fault tolerance.
// ---------------------------------------------------------------------------

/// Figure 10: throughput timeline of a 4-node cluster across a node failure
/// and the replacement node joining.
pub fn fig10_fault_tolerance(env: &BenchEnv) -> Table {
    let mut table = Table::new(
        "Figure 10 — throughput across a node failure (4 nodes)",
        &["time (s)", "throughput (txn/s)", "active nodes", "event"],
    );

    let clients = env.sized(100, 16);
    let total = env.timed(Duration::from_secs(18), Duration::from_secs(6));
    let kill_after = total / 3;
    let replacement_delay = total / 6;
    let bucket = Duration::from_secs(1);

    let storage = env.storage(BackendKind::DynamoDb, 0xFA_01);
    let cluster_config = aft_cluster::ClusterConfig {
        initial_nodes: 4,
        node_template: env.node_template(true),
        dissemination: DisseminationConfig::all_to_all().with_interval(Duration::from_millis(200)),
        fault_scan_interval: Duration::from_millis(250),
        replacement_delay,
        ..aft_cluster::ClusterConfig::default()
    };
    let cluster = Cluster::new(cluster_config, storage).expect("cluster");
    cluster.start_background();

    // A side thread kills one node part-way through the run; the cluster's
    // fault-detection thread notices and brings up a replacement after the
    // configured delay (container download + cache warm-up).
    let cluster_for_killer = Arc::clone(&cluster);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(kill_after);
        cluster_for_killer.kill_node("aft-node-1");
    });

    let driver = AftDriver::clustered(Arc::clone(&cluster), env.platform(), env.retry());
    let result = run_closed_loop(
        &driver,
        &RunConfig::new(WorkloadConfig::standard().with_zipf(1.0))
            .with_clients(clients)
            .with_requests(0)
            .with_duration(total)
            .with_seed(0xFA_02),
    )
    .expect("experiment run");
    killer.join().expect("killer thread");
    cluster.shutdown();

    let kill_second = kill_after.as_secs_f64();
    let rejoin_second = kill_second + replacement_delay.as_secs_f64();
    for (second, tps) in result.timeline.series() {
        let event = if (second - kill_second).abs() < bucket.as_secs_f64() / 2.0 {
            "node killed"
        } else if (second - rejoin_second).abs() < bucket.as_secs_f64() {
            "replacement joins"
        } else {
            ""
        };
        let active = if second < kill_second || second >= rejoin_second {
            4
        } else {
            3
        };
        table.add_row(vec![
            format!("{second:.0}"),
            format!("{tps:.0}"),
            active.to_string(),
            event.into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment functions are exercised end-to-end (at tiny sizes and
    // zero latency) so that `cargo test` covers every figure's code path.

    #[test]
    fn fig2_produces_all_twelve_rows() {
        let table = fig2_io_latency(&BenchEnv::test());
        assert_eq!(table.len(), 12, "4 configurations x 3 write counts");
    }

    #[test]
    fn fig3_and_table2_cover_every_configuration() {
        let (latency, anomalies) = fig3_and_table2(&BenchEnv::test());
        assert_eq!(latency.len(), 7, "3 plain + 3 aft + 1 transactional");
        assert_eq!(anomalies.len(), 5, "the five rows of Table 2");
        // The AFT row of Table 2 must report zero anomalies.
        let rendered = anomalies.render();
        let aft_line = rendered
            .lines()
            .find(|l| l.starts_with("AFT"))
            .expect("AFT row present");
        let cells: Vec<&str> = aft_line.split_whitespace().collect();
        assert!(
            cells.contains(&"0"),
            "AFT row shows zero anomalies: {aft_line}"
        );
    }

    #[test]
    fn fig5_reports_both_backends_and_all_ratios() {
        let table = fig5_rw_ratio(&BenchEnv::test());
        assert_eq!(table.len(), 12, "2 backends x 6 ratios");
    }

    #[test]
    fn fig7_and_fig8_scale_with_clients_and_nodes() {
        let fig7 = fig7_single_node(&BenchEnv::test());
        assert_eq!(fig7.len(), 6, "2 backends x 3 client counts in fast mode");
        let fig8 = fig8_distributed(&BenchEnv::test());
        assert_eq!(fig8.len(), 4, "2 backends x 2 node counts in fast mode");
    }

    #[test]
    fn fig9_reports_gc_on_and_off() {
        let table = fig9_gc(&BenchEnv::test());
        assert_eq!(table.len(), 2);
        let rendered = table.render();
        assert!(rendered.contains("GC enabled"));
        assert!(rendered.contains("GC disabled"));
    }
}
