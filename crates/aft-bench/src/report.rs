//! Plain-text table rendering for experiment output.
//!
//! The harness binaries print their results as aligned text tables so that a
//! run's stdout can be compared side by side with the paper's figures, and so
//! `bench_output.txt` stays grep-able.

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; the number of cells should match the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Convenience for rows built from display values.
    pub fn row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, header) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(header.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}  "));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a millisecond value the way the paper's figures label them.
pub fn ms(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else if value >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = Table::new("Demo", &["config", "median (ms)", "p99 (ms)"]);
        table.add_row(vec!["AFT".into(), "3.1".into(), "9.9".into()]);
        table.add_row(vec!["DynamoDB Sequential".into(), "30".into(), "96".into()]);
        let rendered = table.render();
        assert!(rendered.contains("== Demo =="));
        assert!(rendered.contains("DynamoDB Sequential"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        // Every data line is at least as wide as the longest cell in column 0.
        for line in rendered.lines().skip(2) {
            assert!(line.len() >= "DynamoDB Sequential".len());
        }
    }

    #[test]
    fn ms_formatting_scales_precision() {
        assert_eq!(ms(3.72111), "3.72");
        assert_eq!(ms(37.2111), "37.2");
        assert_eq!(ms(372.111), "372");
    }

    #[test]
    fn row_builder_accepts_display_values() {
        let mut table = Table::new("t", &["a", "b"]);
        table.row(&[&1.5f64, &"x"]);
        assert_eq!(table.len(), 1);
        assert!(table.render().contains("1.5"));
    }
}
