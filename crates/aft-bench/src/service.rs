//! `fig8_service`: the networked-service throughput sweep plus the
//! connection-chaos verification leg.
//!
//! The paper's Figure 8 drives a cluster with 40 closed-loop clients per
//! node — but in-process. This experiment asks the same question across a
//! *real service boundary*: N client threads share an aft-net SDK over
//! loopback TCP to a served 3-node cluster and measure requests per second
//! and p50/p99 latency per client count. Then a **chaos leg** repeats the
//! run with seeded connection faults (resets before/after send, delayed
//! acks) and verifies the two invariants the wire protocol must add on top
//! of the paper's:
//!
//! * **zero read-atomicity anomalies** — fractured reads and
//!   read-your-writes violations stay impossible across the socket;
//! * **zero lost acknowledged commits** — every commit acknowledgement the
//!   SDK ever received corresponds to a durable commit record, even though
//!   acks were being dropped mid-flight (the §4.2 window, closed by the
//!   server's dedup ledger).
//!
//! A third **connection-scale leg** opens hundreds to thousands of raw
//! loopback connections against one server and holds them resident while a
//! small active subset keeps pinging: the readiness-driven event loop must
//! own every socket (zero per-connection reader threads, checked via
//! `/proc/self/task`), per-connection resident memory must stay flat, and
//! tail latency must not collapse with the full fleet connected.
//!
//! Results land in `BENCH_service.json`; [`ServiceReport::check_gate`]
//! fails on any anomaly, lost ack, clean-leg failure, `Ping`/`Stats`
//! error, reader-thread growth, per-connection memory growth, or p99
//! collapse — which CI's `service-gate` job enforces.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aft_chaos::{ChaosSpec, NetChaos};
use aft_cluster::{Cluster, ClusterConfig, DisseminationConfig};
use aft_core::api::AftApi;
use aft_faas::{FaasPlatform, PlatformConfig, RetryPolicy};
use aft_net::frame::{read_frame, write_frame};
use aft_net::AftServer;
use aft_storage::io::RetryConfig;
use aft_storage::{BackendConfig, BackendKind};
use aft_types::wire::{decode_response, encode_request, WireRequest, WireResponse};
use aft_types::{TransactionRecord, WireStats};
use aft_workload::{run_closed_loop, AftDriver, RunConfig, WorkloadConfig};

use crate::json::Json;
use crate::report::Table;
use crate::setup::{serve_cluster, ServeOptions, ServiceHandle};

/// A scale point's ping p99 above this is a latency collapse.
const CONN_P99_COLLAPSE_MS: f64 = 250.0;
/// Resident bytes per connection above this is per-connection memory growth.
const CONN_RSS_CAP_BYTES: f64 = 64.0 * 1024.0;

/// Configuration of the service sweep.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Concurrent client threads per point of the sweep.
    pub client_counts: Vec<usize>,
    /// Requests each client issues per point.
    pub requests_per_client: usize,
    /// AFT nodes behind the server.
    pub nodes: usize,
    /// Server worker-pool size.
    pub workers: usize,
    /// Client connection-pool size.
    pub pool_size: usize,
    /// Clients in the chaos leg.
    pub chaos_clients: usize,
    /// Requests per client in the chaos leg.
    pub chaos_requests: usize,
    /// Connection-reset rate of the chaos leg.
    pub reset_rate: f64,
    /// Delayed-ack rate of the chaos leg.
    pub delay_rate: f64,
    /// Concurrent resident connections per point of the scale leg.
    pub conn_counts: Vec<usize>,
    /// Connections that keep pinging while the rest of the fleet idles.
    pub conn_active: usize,
    /// Pings each active connection issues during the measured phase.
    pub conn_pings: usize,
    /// Base seed.
    pub seed: u64,
}

impl ServiceConfig {
    /// The full sweep: 1→16 clients, 150 requests each.
    pub fn standard() -> Self {
        ServiceConfig {
            client_counts: vec![1, 2, 4, 8, 16],
            requests_per_client: 150,
            nodes: 3,
            workers: 8,
            pool_size: 4,
            chaos_clients: 8,
            chaos_requests: 60,
            reset_rate: 0.08,
            delay_rate: 0.04,
            conn_counts: vec![256, 1024, 2048],
            conn_active: 32,
            conn_pings: 40,
            seed: 0xF8_5E7,
        }
    }

    /// The CI sweep: same invariants, sub-minute runtime. Still climbs to
    /// 256 resident connections so the scale invariants run on every push.
    pub fn fast() -> Self {
        ServiceConfig {
            client_counts: vec![1, 4, 8],
            requests_per_client: 40,
            chaos_requests: 25,
            conn_counts: vec![64, 256],
            conn_active: 16,
            conn_pings: 20,
            ..ServiceConfig::standard()
        }
    }
}

/// One point of the clean sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServicePoint {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests per second over the measured phase.
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
    /// Read-atomicity anomalies observed (must be zero).
    pub anomalies: u64,
}

/// One point of the connection-scale leg: `connections` raw sockets held
/// resident against one server while `pings` pings measure tail latency.
#[derive(Debug, Clone, Copy)]
pub struct ConnScalePoint {
    /// Resident loopback connections held open concurrently.
    pub connections: usize,
    /// Median ping round trip with the fleet resident, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile ping round trip with the fleet resident, ms.
    pub p99_ms: f64,
    /// Pings measured by the active subset.
    pub pings: u64,
    /// Per-connection reader threads alive with the fleet resident (the
    /// event loop must own every socket, so this must be zero).
    pub reader_threads: u64,
    /// Process thread count with the fleet resident.
    pub threads_total: u64,
    /// Thread-count change between server-up and fleet-resident. Zero in a
    /// standalone run; informational under parallel test noise.
    pub threads_delta: i64,
    /// Resident-memory change while opening the fleet, bytes (floored at 0).
    pub rss_delta_bytes: i64,
    /// Resident bytes per connection.
    pub rss_per_conn_bytes: f64,
    /// Frames the event loop decoded during the point.
    pub frames_read: u64,
    /// Connections the event loop owned with the fleet resident.
    pub conns_open: u64,
    /// Frame buffers parked in the loop's pool after the point.
    pub pooled_buffers: u64,
}

/// What the chaos leg observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosLegReport {
    /// Requests completed under injection.
    pub completed: u64,
    /// Requests that exhausted retries under injection.
    pub failed: u64,
    /// Read-atomicity anomalies (must be zero).
    pub anomalies: u64,
    /// Connections reset before the request was sent.
    pub resets_before_send: u64,
    /// Connections reset in the lost-ack window.
    pub resets_after_send: u64,
    /// Acknowledgements delivered late.
    pub delayed_acks: u64,
    /// Commit acknowledgements the SDK received.
    pub acked_commits: u64,
    /// Acked commits with no durable record (must be zero).
    pub lost_acked_commits: u64,
    /// Acks served from the server's dedup ledger.
    pub duplicate_acks: u64,
    /// Transport-level retries the SDK performed.
    pub transport_retries: u64,
}

/// The whole experiment's results.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Clean-sweep points, in client-count order.
    pub points: Vec<ServicePoint>,
    /// The chaos leg.
    pub chaos: ChaosLegReport,
    /// Connection-scale points, in connection-count order.
    pub conn_scale: Vec<ConnScalePoint>,
    /// `Ping` round-trip time, milliseconds (None if it failed).
    pub ping_ms: Option<f64>,
    /// Server counters after the clean sweep's last point (None if the
    /// `Stats` verb failed).
    pub server_stats: Option<WireStats>,
    /// Nodes behind the server.
    pub nodes: usize,
    /// Server worker-pool size.
    pub workers: usize,
}

impl ServiceReport {
    /// Total anomalies across every leg.
    pub fn total_anomalies(&self) -> u64 {
        self.points.iter().map(|p| p.anomalies).sum::<u64>() + self.chaos.anomalies
    }

    /// Peak clean-sweep throughput.
    pub fn peak_rps(&self) -> f64 {
        self.points.iter().map(|p| p.rps).fold(0.0, f64::max)
    }

    /// Fails on any violated invariant, in CI-gate style.
    pub fn check_gate(&self) -> Result<String, String> {
        if self.total_anomalies() > 0 {
            return Err(format!(
                "{} read-atomicity anomalies observed across the service boundary",
                self.total_anomalies()
            ));
        }
        if self.chaos.lost_acked_commits > 0 {
            return Err(format!(
                "{} acknowledged commits have no durable record (lost acks)",
                self.chaos.lost_acked_commits
            ));
        }
        if let Some(clean_failed) = self.points.iter().find(|p| p.failed > 0) {
            return Err(format!(
                "{} requests failed at {} clients with no fault injection",
                clean_failed.failed, clean_failed.clients
            ));
        }
        let Some(ping_ms) = self.ping_ms else {
            return Err("Ping verb failed".to_owned());
        };
        let Some(stats) = self.server_stats else {
            return Err("Stats verb failed".to_owned());
        };
        if self.chaos.resets_after_send == 0 {
            return Err("chaos leg never exercised the lost-ack window".to_owned());
        }
        for point in &self.conn_scale {
            if point.reader_threads > 0 {
                return Err(format!(
                    "{} per-connection reader threads alive at {} connections — the event \
                     loop must own every socket",
                    point.reader_threads, point.connections
                ));
            }
            if point.conns_open != point.connections as u64 {
                return Err(format!(
                    "event loop owns {} of {} resident connections",
                    point.conns_open, point.connections
                ));
            }
            if point.p99_ms > CONN_P99_COLLAPSE_MS {
                return Err(format!(
                    "ping p99 collapsed to {:.1} ms at {} resident connections \
                     (bound {CONN_P99_COLLAPSE_MS} ms)",
                    point.p99_ms, point.connections
                ));
            }
            if point.rss_per_conn_bytes > CONN_RSS_CAP_BYTES {
                return Err(format!(
                    "{:.0} resident bytes per connection at {} connections \
                     (cap {CONN_RSS_CAP_BYTES:.0})",
                    point.rss_per_conn_bytes, point.connections
                ));
            }
        }
        let max_conns = self
            .conn_scale
            .iter()
            .map(|p| p.connections)
            .max()
            .unwrap_or(0);
        Ok(format!(
            "{} points clean, peak {:.0} req/s; chaos leg: {} resets ({} in the lost-ack \
             window), {} acked commits all durable, {} deduplicated; scale leg: {} resident \
             connections on one loop thread; ping {:.2} ms, {} server requests",
            self.points.len(),
            self.peak_rps(),
            self.chaos.resets_before_send + self.chaos.resets_after_send,
            self.chaos.resets_after_send,
            self.chaos.acked_commits,
            self.chaos.duplicate_acks,
            max_conns,
            ping_ms,
            stats.requests,
        ))
    }

    /// Renders the sweep as an aligned text table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "fig8_service — loopback service throughput (3-node cluster behind aft-net)",
            &[
                "clients",
                "req/s",
                "p50 (ms)",
                "p99 (ms)",
                "completed",
                "failed",
                "anomalies",
            ],
        );
        for p in &self.points {
            table.add_row(vec![
                p.clients.to_string(),
                format!("{:.0}", p.rps),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p99_ms),
                p.completed.to_string(),
                p.failed.to_string(),
                p.anomalies.to_string(),
            ]);
        }
        table.add_row(vec![
            format!("chaos ({})", self.chaos.completed),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            format!("{} acked", self.chaos.acked_commits),
            format!("{} lost", self.chaos.lost_acked_commits),
            self.chaos.anomalies.to_string(),
        ]);
        table
    }

    /// Renders the connection-scale leg as an aligned text table.
    pub fn conn_table(&self) -> Table {
        let mut table = Table::new(
            "fig8_service — resident connections on one event-loop thread",
            &[
                "conns",
                "p50 (ms)",
                "p99 (ms)",
                "rdr thr",
                "threads",
                "rss/conn (B)",
                "frames",
            ],
        );
        for p in &self.conn_scale {
            table.add_row(vec![
                p.connections.to_string(),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p99_ms),
                p.reader_threads.to_string(),
                p.threads_total.to_string(),
                format!("{:.0}", p.rss_per_conn_bytes),
                p.frames_read.to_string(),
            ]);
        }
        table
    }

    /// Serialises the report as the `BENCH_service.json` document.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("clients", Json::Num(p.clients as f64)),
                    ("rps", Json::Num(round2(p.rps))),
                    ("p50_ms", Json::Num(round2(p.p50_ms))),
                    ("p99_ms", Json::Num(round2(p.p99_ms))),
                    ("completed", Json::Num(p.completed as f64)),
                    ("failed", Json::Num(p.failed as f64)),
                    ("anomalies", Json::Num(p.anomalies as f64)),
                ])
            })
            .collect();
        let chaos = Json::obj(vec![
            ("completed", Json::Num(self.chaos.completed as f64)),
            ("failed", Json::Num(self.chaos.failed as f64)),
            ("anomalies", Json::Num(self.chaos.anomalies as f64)),
            (
                "resets_before_send",
                Json::Num(self.chaos.resets_before_send as f64),
            ),
            (
                "resets_after_send",
                Json::Num(self.chaos.resets_after_send as f64),
            ),
            ("delayed_acks", Json::Num(self.chaos.delayed_acks as f64)),
            ("acked_commits", Json::Num(self.chaos.acked_commits as f64)),
            (
                "lost_acked_commits",
                Json::Num(self.chaos.lost_acked_commits as f64),
            ),
            (
                "duplicate_acks",
                Json::Num(self.chaos.duplicate_acks as f64),
            ),
            (
                "transport_retries",
                Json::Num(self.chaos.transport_retries as f64),
            ),
        ]);
        let conn_scale = self
            .conn_scale
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("connections", Json::Num(p.connections as f64)),
                    ("p50_ms", Json::Num(round2(p.p50_ms))),
                    ("p99_ms", Json::Num(round2(p.p99_ms))),
                    ("pings", Json::Num(p.pings as f64)),
                    ("reader_threads", Json::Num(p.reader_threads as f64)),
                    ("threads_total", Json::Num(p.threads_total as f64)),
                    ("threads_delta", Json::Num(p.threads_delta as f64)),
                    ("rss_delta_bytes", Json::Num(p.rss_delta_bytes as f64)),
                    (
                        "rss_per_conn_bytes",
                        Json::Num(round2(p.rss_per_conn_bytes)),
                    ),
                    ("frames_read", Json::Num(p.frames_read as f64)),
                    ("conns_open", Json::Num(p.conns_open as f64)),
                    ("pooled_buffers", Json::Num(p.pooled_buffers as f64)),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("experiment", Json::str("fig8_service")),
            ("nodes", Json::Num(self.nodes as f64)),
            ("workers", Json::Num(self.workers as f64)),
            (
                "max_connections",
                Json::Num(
                    self.conn_scale
                        .iter()
                        .map(|p| p.connections)
                        .max()
                        .unwrap_or(0) as f64,
                ),
            ),
            ("peak_rps", Json::Num(round2(self.peak_rps()))),
            ("anomalies", Json::Num(self.total_anomalies() as f64)),
            (
                "lost_acked_commits",
                Json::Num(self.chaos.lost_acked_commits as f64),
            ),
            (
                "ping_ms",
                self.ping_ms.map_or(Json::Null, |v| Json::Num(round2(v))),
            ),
            ("points", Json::Arr(points)),
            ("chaos", chaos),
            ("conn_scale", Json::Arr(conn_scale)),
        ];
        if let Some(stats) = self.server_stats {
            pairs.push((
                "server",
                Json::obj(vec![
                    (
                        "connections_accepted",
                        Json::Num(stats.connections_accepted as f64),
                    ),
                    ("requests", Json::Num(stats.requests as f64)),
                    ("commits", Json::Num(stats.commits as f64)),
                    (
                        "duplicate_commits",
                        Json::Num(stats.duplicate_commits as f64),
                    ),
                    ("errors", Json::Num(stats.errors as f64)),
                ]),
            ));
        }
        Json::obj(pairs)
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// A fresh 3-node deployment served on loopback. Zero simulated latency:
/// the experiment measures the service layer itself, not the storage sims.
/// `keep_commit_set` disables garbage collection so the durable Transaction
/// Commit Set stays the *complete* ground truth — required by the chaos
/// leg's lost-ack verification, which would otherwise flag legitimately
/// GC'd superseded records as lost.
fn served_deployment(
    config: &ServiceConfig,
    options: &ServeOptions,
    seed: u64,
    keep_commit_set: bool,
) -> (Arc<Cluster>, ServiceHandle) {
    let storage = aft_storage::make_backend(BackendConfig::test(BackendKind::Memory));
    let cluster_config = ClusterConfig {
        dissemination: DisseminationConfig::all_to_all().with_interval(Duration::from_millis(5)),
        replacement_delay: Duration::ZERO,
        local_gc_enabled: !keep_commit_set,
        global_gc_enabled: !keep_commit_set,
        ..ClusterConfig::test(config.nodes)
    };
    let cluster = Cluster::new(cluster_config, storage).expect("cluster construction");
    cluster.start_background();
    let handle = serve_cluster(&cluster, &options.clone().seed(seed)).expect("serve on loopback");
    (cluster, handle)
}

/// The kernel's view of this process's thread count (`Threads:` in
/// `/proc/self/status`).
fn proc_threads() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("Threads:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Resident set size in bytes (`/proc/self/statm` field 2, pages).
fn proc_rss_bytes() -> i64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|statm| {
            statm
                .split_whitespace()
                .nth(1)
                .and_then(|pages| pages.parse::<i64>().ok())
        })
        .map_or(0, |pages| pages * 4096)
}

/// Threads named `aft-net-rd*` — the thread-per-connection model's reader
/// threads. The event loop spawns none, so with a resident fleet this count
/// proves the loop owns every socket (robust against unrelated threads
/// created by concurrently running tests).
fn reader_thread_count() -> u64 {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .flatten()
        .filter(|task| {
            std::fs::read_to_string(task.path().join("comm"))
                .is_ok_and(|comm| comm.trim_end().starts_with("aft-net-rd"))
        })
        .count() as u64
}

/// Connects to `addr`, retrying briefly: a fleet of thousands of connects
/// can outrun the accept backlog for a moment.
fn connect_patiently(addr: SocketAddr) -> TcpStream {
    let mut last_err = None;
    for _ in 0..200 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return stream;
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    panic!("connect to {addr}: {last_err:?}");
}

/// One `Ping` round trip over a raw framed socket.
fn raw_ping(stream: &mut TcpStream) -> io::Result<Duration> {
    let started = Instant::now();
    write_frame(stream, &encode_request(1, &WireRequest::Ping))?;
    let Some(frame) = read_frame(stream)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    };
    match decode_response(&frame) {
        Ok((_, WireResponse::Pong)) => Ok(started.elapsed()),
        Ok((_, other)) => Err(io::Error::other(format!("expected Pong, got {other:?}"))),
        Err(e) => Err(io::Error::other(format!("undecodable response: {e}"))),
    }
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One point of the connection-scale leg: a fresh server, `connections`
/// raw sockets opened and proven live (one ping each), threads and RSS
/// sampled with the fleet resident, then an active subset pings for the
/// latency distribution while the rest idle.
fn run_conn_point(config: &ServiceConfig, connections: usize) -> ConnScalePoint {
    // One node and no background maintenance: `Ping` never reaches
    // storage, so the point measures the I/O core itself.
    let storage = aft_storage::make_backend(BackendConfig::test(BackendKind::Memory));
    let cluster = Cluster::new(ClusterConfig::test(1), storage).expect("cluster construction");
    let server = AftServer::builder()
        .workers(config.workers)
        .slab_capacity(connections)
        .serve(Arc::clone(&cluster), "127.0.0.1:0")
        .expect("serve on loopback");
    let addr = server.local_addr();

    let threads_before = proc_threads();
    let rss_before = proc_rss_bytes();

    // Open the fleet; one ping per connection proves the loop registered
    // and serves it before anything is counted.
    let mut socks: Vec<TcpStream> = (0..connections).map(|_| connect_patiently(addr)).collect();
    for sock in &mut socks {
        raw_ping(sock).expect("registration ping");
    }

    let reader_threads = reader_thread_count();
    let threads_total = proc_threads();
    let threads_delta = threads_total as i64 - threads_before as i64;
    let rss_delta_bytes = (proc_rss_bytes() - rss_before).max(0);
    let rss_per_conn_bytes = rss_delta_bytes as f64 / connections.max(1) as f64;

    // Active subset: keeps pinging with the full fleet resident, a few
    // driver threads multiplexing the subset.
    let active = config.conn_active.clamp(1, connections);
    let mut active_socks: Vec<TcpStream> = socks.drain(..active).collect();
    let drivers = active.min(4);
    let chunk = active.div_ceil(drivers);
    let collected = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for batch in active_socks.chunks_mut(chunk) {
            let collected = &collected;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(config.conn_pings * batch.len());
                for _ in 0..config.conn_pings {
                    for sock in batch.iter_mut() {
                        let rtt = raw_ping(sock).expect("ping with the fleet resident");
                        local.push(rtt.as_secs_f64() * 1_000.0);
                    }
                }
                collected.lock().unwrap().extend(local);
            });
        }
    });
    let mut latencies = collected.into_inner().unwrap();
    latencies.sort_by(f64::total_cmp);

    let snapshot = server
        .event_snapshot()
        .expect("the scale leg runs the event-driven model");
    let point = ConnScalePoint {
        connections,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        pings: latencies.len() as u64,
        reader_threads,
        threads_total,
        threads_delta,
        rss_delta_bytes,
        rss_per_conn_bytes,
        frames_read: snapshot.frames_read,
        conns_open: snapshot.conns_open,
        pooled_buffers: snapshot.pooled_buffers,
    };

    drop(active_socks);
    drop(socks);
    server.shutdown();
    cluster.shutdown();
    point
}

fn service_workload() -> WorkloadConfig {
    WorkloadConfig::standard()
        .with_keys(200)
        .with_value_size(256)
}

fn driver_for(handle: &ServiceHandle) -> AftDriver {
    let api: Arc<dyn AftApi> = Arc::clone(&handle.client) as Arc<dyn AftApi>;
    AftDriver::from_api(
        api,
        FaasPlatform::new(PlatformConfig::test()),
        RetryPolicy::with_attempts(8),
    )
}

/// Runs the sweep and the chaos leg.
pub fn fig8_service(config: &ServiceConfig) -> ServiceReport {
    let options = ServeOptions::default()
        .workers(config.workers)
        .pool_size(config.pool_size);

    // Clean sweep: a fresh deployment per point, so points are independent.
    let mut points = Vec::new();
    let mut ping_ms = None;
    let mut server_stats = None;
    for (i, &clients) in config.client_counts.iter().enumerate() {
        let (cluster, handle) = served_deployment(config, &options, config.seed + i as u64, false);
        let driver = driver_for(&handle);
        let result = run_closed_loop(
            &driver,
            &RunConfig::new(service_workload())
                .with_clients(clients)
                .with_requests(config.requests_per_client)
                .with_seed(config.seed ^ (clients as u64) << 8),
        )
        .expect("closed-loop run");
        points.push(ServicePoint {
            clients,
            rps: result.throughput_tps(),
            p50_ms: result.latency.median_ms(),
            p99_ms: result.latency.p99_ms(),
            completed: result.completed,
            failed: result.failed,
            anomalies: result.anomalies.ryw_transactions + result.anomalies.fr_transactions,
        });
        // Operability verbs, checked on the last (largest) point.
        if i + 1 == config.client_counts.len() {
            ping_ms = handle.client.ping().ok().map(|d| d.as_secs_f64() * 1_000.0);
            server_stats = handle.client.server_stats().ok();
        }
        drop(handle);
        cluster.shutdown();
    }

    // Chaos leg: one deployment, seeded connection faults, then verify
    // every acked commit against the durable commit set.
    let chaos_options = ServeOptions {
        chaos: Some(
            ChaosSpec::new(config.seed ^ 0xC4A05).net(NetChaos::resets_and_delays(
                config.reset_rate,
                config.delay_rate,
                Duration::from_millis(1),
            )),
        ),
        retry: RetryConfig {
            max_attempts: 6,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
        },
        ..options
    };
    let (cluster, handle) = served_deployment(config, &chaos_options, config.seed ^ 0xC4A1, true);
    let driver = driver_for(&handle);
    let result = run_closed_loop(
        &driver,
        &RunConfig::new(service_workload())
            .with_clients(config.chaos_clients)
            .with_requests(config.chaos_requests)
            .with_seed(config.seed ^ 0xC4A2),
    )
    .expect("chaos closed-loop run");

    // Ground truth: every commit the SDK ever saw acknowledged must have a
    // durable record. (Preload commits are included — they are acked too.)
    let acked = handle.client.acked_commits();
    let lost = acked
        .iter()
        .filter(|id| {
            cluster
                .storage()
                .get(&TransactionRecord::storage_key_for(id))
                .map_or(true, |v| v.is_none())
        })
        .count() as u64;
    let injector = handle.client.chaos_stats().unwrap_or_default();
    let client_stats = handle.client.stats();
    let chaos = ChaosLegReport {
        completed: result.completed,
        failed: result.failed,
        anomalies: result.anomalies.ryw_transactions + result.anomalies.fr_transactions,
        resets_before_send: injector.resets_before_send,
        resets_after_send: injector.resets_after_send,
        delayed_acks: injector.delayed_acks,
        acked_commits: acked.len() as u64,
        lost_acked_commits: lost,
        duplicate_acks: client_stats.duplicate_acks,
        transport_retries: client_stats.transport_retries,
    };
    drop(handle);
    cluster.shutdown();

    // Connection-scale leg: how many resident sockets one loop thread owns,
    // a fresh deployment per point so points are independent.
    let conn_scale = config
        .conn_counts
        .iter()
        .map(|&connections| run_conn_point(config, connections))
        .collect();

    ServiceReport {
        points,
        chaos,
        conn_scale,
        ping_ms,
        server_stats,
        nodes: config.nodes,
        workers: config.workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            client_counts: vec![1, 4],
            requests_per_client: 8,
            chaos_clients: 4,
            chaos_requests: 12,
            conn_counts: vec![48],
            conn_active: 8,
            conn_pings: 5,
            ..ServiceConfig::fast()
        }
    }

    #[test]
    fn sweep_runs_clean_over_real_sockets() {
        let report = fig8_service(&tiny_config());
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert_eq!(point.failed, 0);
            assert_eq!(point.anomalies, 0);
            assert!(point.rps > 0.0);
            assert_eq!(
                point.completed,
                (point.clients * 8) as u64,
                "every request completed"
            );
        }
        assert!(report.ping_ms.is_some());
        let stats = report.server_stats.expect("stats verb");
        assert!(stats.commits > 0);
        assert_eq!(report.chaos.lost_acked_commits, 0);
        assert!(report.chaos.resets_after_send > 0, "chaos leg injected");
        assert_eq!(report.conn_scale.len(), 1);
        let scale = &report.conn_scale[0];
        assert_eq!(scale.connections, 48);
        assert_eq!(scale.conns_open, 48, "the loop owns the whole fleet");
        assert_eq!(scale.reader_threads, 0, "no per-connection threads");
        assert!(scale.pings > 0 && scale.p99_ms > 0.0);
        report.check_gate().expect("gate passes on a clean run");
    }

    #[test]
    fn gate_fails_on_anomalies_or_lost_acks() {
        let mut report = fig8_service(&ServiceConfig {
            client_counts: vec![1],
            requests_per_client: 4,
            chaos_clients: 2,
            chaos_requests: 8,
            conn_counts: vec![16],
            conn_active: 4,
            conn_pings: 3,
            ..ServiceConfig::fast()
        });
        report.chaos.lost_acked_commits = 1;
        assert!(report.check_gate().is_err());
        report.chaos.lost_acked_commits = 0;
        report.points[0].anomalies = 1;
        assert!(report.check_gate().is_err());
        report.points[0].anomalies = 0;
        report.conn_scale[0].reader_threads = 3;
        assert!(
            report.check_gate().is_err(),
            "reader-thread growth fails the gate"
        );
        report.conn_scale[0].reader_threads = 0;
        report.conn_scale[0].p99_ms = CONN_P99_COLLAPSE_MS + 1.0;
        assert!(report.check_gate().is_err(), "p99 collapse fails the gate");
        report.conn_scale[0].p99_ms = 1.0;
        report.conn_scale[0].rss_per_conn_bytes = CONN_RSS_CAP_BYTES + 1.0;
        assert!(
            report.check_gate().is_err(),
            "per-connection memory growth fails the gate"
        );
    }

    #[test]
    fn json_document_has_the_documented_schema() {
        let report = ServiceReport {
            points: vec![ServicePoint {
                clients: 4,
                rps: 1234.5,
                p50_ms: 0.8,
                p99_ms: 2.5,
                completed: 600,
                failed: 0,
                anomalies: 0,
            }],
            chaos: ChaosLegReport {
                completed: 100,
                acked_commits: 110,
                resets_after_send: 5,
                ..ChaosLegReport::default()
            },
            conn_scale: vec![ConnScalePoint {
                connections: 1024,
                p50_ms: 0.3,
                p99_ms: 2.1,
                pings: 640,
                reader_threads: 0,
                threads_total: 11,
                threads_delta: 0,
                rss_delta_bytes: 1_048_576,
                rss_per_conn_bytes: 1024.0,
                frames_read: 1664,
                conns_open: 1024,
                pooled_buffers: 12,
            }],
            ping_ms: Some(0.21),
            server_stats: Some(WireStats {
                requests: 1000,
                commits: 600,
                ..WireStats::default()
            }),
            nodes: 3,
            workers: 8,
        };
        let rendered = report.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("experiment").unwrap().as_str().unwrap(),
            "fig8_service"
        );
        assert_eq!(parsed.get("points").unwrap().as_array().unwrap().len(), 1);
        assert!(parsed.get("chaos").unwrap().get("acked_commits").is_some());
        assert!(parsed.get("server").unwrap().get("commits").is_some());
        let conn_scale = parsed.get("conn_scale").unwrap().as_array().unwrap();
        assert_eq!(conn_scale.len(), 1);
        assert!(conn_scale[0].get("rss_per_conn_bytes").is_some());
        assert_eq!(
            parsed.get("max_connections").unwrap().as_f64().unwrap(),
            1024.0
        );
    }
}
