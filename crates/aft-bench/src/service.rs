//! `fig8_service`: the networked-service throughput sweep plus the
//! connection-chaos verification leg.
//!
//! The paper's Figure 8 drives a cluster with 40 closed-loop clients per
//! node — but in-process. This experiment asks the same question across a
//! *real service boundary*: N client threads share an aft-net SDK over
//! loopback TCP to a served 3-node cluster and measure requests per second
//! and p50/p99 latency per client count. Then a **chaos leg** repeats the
//! run with seeded connection faults (resets before/after send, delayed
//! acks) and verifies the two invariants the wire protocol must add on top
//! of the paper's:
//!
//! * **zero read-atomicity anomalies** — fractured reads and
//!   read-your-writes violations stay impossible across the socket;
//! * **zero lost acknowledged commits** — every commit acknowledgement the
//!   SDK ever received corresponds to a durable commit record, even though
//!   acks were being dropped mid-flight (the §4.2 window, closed by the
//!   server's dedup ledger).
//!
//! Results land in `BENCH_service.json`; [`ServiceReport::check_gate`]
//! fails on any anomaly, lost ack, clean-leg failure, or `Ping`/`Stats`
//! error — which CI's `service-gate` job enforces.

use std::sync::Arc;
use std::time::Duration;

use aft_cluster::{Cluster, ClusterConfig};
use aft_core::api::AftApi;
use aft_faas::{FaasPlatform, PlatformConfig, RetryPolicy};
use aft_net::NetChaosConfig;
use aft_storage::io::RetryConfig;
use aft_storage::{BackendConfig, BackendKind};
use aft_types::{TransactionRecord, WireStats};
use aft_workload::{run_closed_loop, AftDriver, RunConfig, WorkloadConfig};

use crate::json::Json;
use crate::report::Table;
use crate::setup::{serve_cluster, NetEnvConfig, ServiceHandle};

/// Configuration of the service sweep.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Concurrent client threads per point of the sweep.
    pub client_counts: Vec<usize>,
    /// Requests each client issues per point.
    pub requests_per_client: usize,
    /// AFT nodes behind the server.
    pub nodes: usize,
    /// Server worker-pool size.
    pub workers: usize,
    /// Client connection-pool size.
    pub pool_size: usize,
    /// Clients in the chaos leg.
    pub chaos_clients: usize,
    /// Requests per client in the chaos leg.
    pub chaos_requests: usize,
    /// Connection-reset rate of the chaos leg.
    pub reset_rate: f64,
    /// Delayed-ack rate of the chaos leg.
    pub delay_rate: f64,
    /// Base seed.
    pub seed: u64,
}

impl ServiceConfig {
    /// The full sweep: 1→16 clients, 150 requests each.
    pub fn standard() -> Self {
        ServiceConfig {
            client_counts: vec![1, 2, 4, 8, 16],
            requests_per_client: 150,
            nodes: 3,
            workers: 8,
            pool_size: 4,
            chaos_clients: 8,
            chaos_requests: 60,
            reset_rate: 0.08,
            delay_rate: 0.04,
            seed: 0xF8_5E7,
        }
    }

    /// The CI sweep: same invariants, sub-minute runtime.
    pub fn fast() -> Self {
        ServiceConfig {
            client_counts: vec![1, 4, 8],
            requests_per_client: 40,
            chaos_requests: 25,
            ..ServiceConfig::standard()
        }
    }
}

/// One point of the clean sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServicePoint {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests per second over the measured phase.
    pub rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
    /// Read-atomicity anomalies observed (must be zero).
    pub anomalies: u64,
}

/// What the chaos leg observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosLegReport {
    /// Requests completed under injection.
    pub completed: u64,
    /// Requests that exhausted retries under injection.
    pub failed: u64,
    /// Read-atomicity anomalies (must be zero).
    pub anomalies: u64,
    /// Connections reset before the request was sent.
    pub resets_before_send: u64,
    /// Connections reset in the lost-ack window.
    pub resets_after_send: u64,
    /// Acknowledgements delivered late.
    pub delayed_acks: u64,
    /// Commit acknowledgements the SDK received.
    pub acked_commits: u64,
    /// Acked commits with no durable record (must be zero).
    pub lost_acked_commits: u64,
    /// Acks served from the server's dedup ledger.
    pub duplicate_acks: u64,
    /// Transport-level retries the SDK performed.
    pub transport_retries: u64,
}

/// The whole experiment's results.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Clean-sweep points, in client-count order.
    pub points: Vec<ServicePoint>,
    /// The chaos leg.
    pub chaos: ChaosLegReport,
    /// `Ping` round-trip time, milliseconds (None if it failed).
    pub ping_ms: Option<f64>,
    /// Server counters after the clean sweep's last point (None if the
    /// `Stats` verb failed).
    pub server_stats: Option<WireStats>,
    /// Nodes behind the server.
    pub nodes: usize,
    /// Server worker-pool size.
    pub workers: usize,
}

impl ServiceReport {
    /// Total anomalies across every leg.
    pub fn total_anomalies(&self) -> u64 {
        self.points.iter().map(|p| p.anomalies).sum::<u64>() + self.chaos.anomalies
    }

    /// Peak clean-sweep throughput.
    pub fn peak_rps(&self) -> f64 {
        self.points.iter().map(|p| p.rps).fold(0.0, f64::max)
    }

    /// Fails on any violated invariant, in CI-gate style.
    pub fn check_gate(&self) -> Result<String, String> {
        if self.total_anomalies() > 0 {
            return Err(format!(
                "{} read-atomicity anomalies observed across the service boundary",
                self.total_anomalies()
            ));
        }
        if self.chaos.lost_acked_commits > 0 {
            return Err(format!(
                "{} acknowledged commits have no durable record (lost acks)",
                self.chaos.lost_acked_commits
            ));
        }
        if let Some(clean_failed) = self.points.iter().find(|p| p.failed > 0) {
            return Err(format!(
                "{} requests failed at {} clients with no fault injection",
                clean_failed.failed, clean_failed.clients
            ));
        }
        let Some(ping_ms) = self.ping_ms else {
            return Err("Ping verb failed".to_owned());
        };
        let Some(stats) = self.server_stats else {
            return Err("Stats verb failed".to_owned());
        };
        if self.chaos.resets_after_send == 0 {
            return Err("chaos leg never exercised the lost-ack window".to_owned());
        }
        Ok(format!(
            "{} points clean, peak {:.0} req/s; chaos leg: {} resets ({} in the lost-ack \
             window), {} acked commits all durable, {} deduplicated; ping {:.2} ms, \
             {} server requests",
            self.points.len(),
            self.peak_rps(),
            self.chaos.resets_before_send + self.chaos.resets_after_send,
            self.chaos.resets_after_send,
            self.chaos.acked_commits,
            self.chaos.duplicate_acks,
            ping_ms,
            stats.requests,
        ))
    }

    /// Renders the sweep as an aligned text table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "fig8_service — loopback service throughput (3-node cluster behind aft-net)",
            &[
                "clients",
                "req/s",
                "p50 (ms)",
                "p99 (ms)",
                "completed",
                "failed",
                "anomalies",
            ],
        );
        for p in &self.points {
            table.add_row(vec![
                p.clients.to_string(),
                format!("{:.0}", p.rps),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p99_ms),
                p.completed.to_string(),
                p.failed.to_string(),
                p.anomalies.to_string(),
            ]);
        }
        table.add_row(vec![
            format!("chaos ({})", self.chaos.completed),
            "-".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            format!("{} acked", self.chaos.acked_commits),
            format!("{} lost", self.chaos.lost_acked_commits),
            self.chaos.anomalies.to_string(),
        ]);
        table
    }

    /// Serialises the report as the `BENCH_service.json` document.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("clients", Json::Num(p.clients as f64)),
                    ("rps", Json::Num(round2(p.rps))),
                    ("p50_ms", Json::Num(round2(p.p50_ms))),
                    ("p99_ms", Json::Num(round2(p.p99_ms))),
                    ("completed", Json::Num(p.completed as f64)),
                    ("failed", Json::Num(p.failed as f64)),
                    ("anomalies", Json::Num(p.anomalies as f64)),
                ])
            })
            .collect();
        let chaos = Json::obj(vec![
            ("completed", Json::Num(self.chaos.completed as f64)),
            ("failed", Json::Num(self.chaos.failed as f64)),
            ("anomalies", Json::Num(self.chaos.anomalies as f64)),
            (
                "resets_before_send",
                Json::Num(self.chaos.resets_before_send as f64),
            ),
            (
                "resets_after_send",
                Json::Num(self.chaos.resets_after_send as f64),
            ),
            ("delayed_acks", Json::Num(self.chaos.delayed_acks as f64)),
            ("acked_commits", Json::Num(self.chaos.acked_commits as f64)),
            (
                "lost_acked_commits",
                Json::Num(self.chaos.lost_acked_commits as f64),
            ),
            (
                "duplicate_acks",
                Json::Num(self.chaos.duplicate_acks as f64),
            ),
            (
                "transport_retries",
                Json::Num(self.chaos.transport_retries as f64),
            ),
        ]);
        let mut pairs = vec![
            ("experiment", Json::str("fig8_service")),
            ("nodes", Json::Num(self.nodes as f64)),
            ("workers", Json::Num(self.workers as f64)),
            ("peak_rps", Json::Num(round2(self.peak_rps()))),
            ("anomalies", Json::Num(self.total_anomalies() as f64)),
            (
                "lost_acked_commits",
                Json::Num(self.chaos.lost_acked_commits as f64),
            ),
            (
                "ping_ms",
                self.ping_ms.map_or(Json::Null, |v| Json::Num(round2(v))),
            ),
            ("points", Json::Arr(points)),
            ("chaos", chaos),
        ];
        if let Some(stats) = self.server_stats {
            pairs.push((
                "server",
                Json::obj(vec![
                    (
                        "connections_accepted",
                        Json::Num(stats.connections_accepted as f64),
                    ),
                    ("requests", Json::Num(stats.requests as f64)),
                    ("commits", Json::Num(stats.commits as f64)),
                    (
                        "duplicate_commits",
                        Json::Num(stats.duplicate_commits as f64),
                    ),
                    ("errors", Json::Num(stats.errors as f64)),
                ]),
            ));
        }
        Json::obj(pairs)
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// A fresh 3-node deployment served on loopback. Zero simulated latency:
/// the experiment measures the service layer itself, not the storage sims.
/// `keep_commit_set` disables garbage collection so the durable Transaction
/// Commit Set stays the *complete* ground truth — required by the chaos
/// leg's lost-ack verification, which would otherwise flag legitimately
/// GC'd superseded records as lost.
fn served_deployment(
    config: &ServiceConfig,
    net: &NetEnvConfig,
    seed: u64,
    keep_commit_set: bool,
) -> (Arc<Cluster>, ServiceHandle) {
    let storage = aft_storage::make_backend(BackendConfig::test(BackendKind::Memory));
    let cluster_config = ClusterConfig {
        broadcast_interval: Duration::from_millis(5),
        replacement_delay: Duration::ZERO,
        local_gc_enabled: !keep_commit_set,
        global_gc_enabled: !keep_commit_set,
        ..ClusterConfig::test(config.nodes)
    };
    let cluster = Cluster::new(cluster_config, storage).expect("cluster construction");
    cluster.start_background();
    let handle = serve_cluster(
        &cluster,
        &NetEnvConfig {
            seed,
            ..net.clone()
        },
    )
    .expect("serve on loopback");
    (cluster, handle)
}

fn service_workload() -> WorkloadConfig {
    WorkloadConfig::standard()
        .with_keys(200)
        .with_value_size(256)
}

fn driver_for(handle: &ServiceHandle) -> AftDriver {
    let api: Arc<dyn AftApi> = Arc::clone(&handle.client) as Arc<dyn AftApi>;
    AftDriver::from_api(
        api,
        FaasPlatform::new(PlatformConfig::test()),
        RetryPolicy::with_attempts(8),
    )
}

/// Runs the sweep and the chaos leg.
pub fn fig8_service(config: &ServiceConfig) -> ServiceReport {
    let net = NetEnvConfig {
        workers: config.workers,
        pool_size: config.pool_size,
        ..NetEnvConfig::default()
    };

    // Clean sweep: a fresh deployment per point, so points are independent.
    let mut points = Vec::new();
    let mut ping_ms = None;
    let mut server_stats = None;
    for (i, &clients) in config.client_counts.iter().enumerate() {
        let (cluster, handle) = served_deployment(config, &net, config.seed + i as u64, false);
        let driver = driver_for(&handle);
        let result = run_closed_loop(
            &driver,
            &RunConfig::new(service_workload())
                .with_clients(clients)
                .with_requests(config.requests_per_client)
                .with_seed(config.seed ^ (clients as u64) << 8),
        )
        .expect("closed-loop run");
        points.push(ServicePoint {
            clients,
            rps: result.throughput_tps(),
            p50_ms: result.latency.median_ms(),
            p99_ms: result.latency.p99_ms(),
            completed: result.completed,
            failed: result.failed,
            anomalies: result.anomalies.ryw_transactions + result.anomalies.fr_transactions,
        });
        // Operability verbs, checked on the last (largest) point.
        if i + 1 == config.client_counts.len() {
            ping_ms = handle.client.ping().ok().map(|d| d.as_secs_f64() * 1_000.0);
            server_stats = handle.client.server_stats().ok();
        }
        drop(handle);
        cluster.shutdown();
    }

    // Chaos leg: one deployment, seeded connection faults, then verify
    // every acked commit against the durable commit set.
    let chaos_net = NetEnvConfig {
        chaos: Some(NetChaosConfig::resets_and_delays(
            config.seed ^ 0xC4A05,
            config.reset_rate,
            config.delay_rate,
            Duration::from_millis(1),
        )),
        retry: RetryConfig {
            max_attempts: 6,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(2),
        },
        ..net
    };
    let (cluster, handle) = served_deployment(config, &chaos_net, config.seed ^ 0xC4A1, true);
    let driver = driver_for(&handle);
    let result = run_closed_loop(
        &driver,
        &RunConfig::new(service_workload())
            .with_clients(config.chaos_clients)
            .with_requests(config.chaos_requests)
            .with_seed(config.seed ^ 0xC4A2),
    )
    .expect("chaos closed-loop run");

    // Ground truth: every commit the SDK ever saw acknowledged must have a
    // durable record. (Preload commits are included — they are acked too.)
    let acked = handle.client.acked_commits();
    let lost = acked
        .iter()
        .filter(|id| {
            cluster
                .storage()
                .get(&TransactionRecord::storage_key_for(id))
                .map_or(true, |v| v.is_none())
        })
        .count() as u64;
    let injector = handle.client.chaos_stats().unwrap_or_default();
    let client_stats = handle.client.stats();
    let chaos = ChaosLegReport {
        completed: result.completed,
        failed: result.failed,
        anomalies: result.anomalies.ryw_transactions + result.anomalies.fr_transactions,
        resets_before_send: injector.resets_before_send,
        resets_after_send: injector.resets_after_send,
        delayed_acks: injector.delayed_acks,
        acked_commits: acked.len() as u64,
        lost_acked_commits: lost,
        duplicate_acks: client_stats.duplicate_acks,
        transport_retries: client_stats.transport_retries,
    };
    drop(handle);
    cluster.shutdown();

    ServiceReport {
        points,
        chaos,
        ping_ms,
        server_stats,
        nodes: config.nodes,
        workers: config.workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            client_counts: vec![1, 4],
            requests_per_client: 8,
            chaos_clients: 4,
            chaos_requests: 12,
            ..ServiceConfig::fast()
        }
    }

    #[test]
    fn sweep_runs_clean_over_real_sockets() {
        let report = fig8_service(&tiny_config());
        assert_eq!(report.points.len(), 2);
        for point in &report.points {
            assert_eq!(point.failed, 0);
            assert_eq!(point.anomalies, 0);
            assert!(point.rps > 0.0);
            assert_eq!(
                point.completed,
                (point.clients * 8) as u64,
                "every request completed"
            );
        }
        assert!(report.ping_ms.is_some());
        let stats = report.server_stats.expect("stats verb");
        assert!(stats.commits > 0);
        assert_eq!(report.chaos.lost_acked_commits, 0);
        assert!(report.chaos.resets_after_send > 0, "chaos leg injected");
        report.check_gate().expect("gate passes on a clean run");
    }

    #[test]
    fn gate_fails_on_anomalies_or_lost_acks() {
        let mut report = fig8_service(&ServiceConfig {
            client_counts: vec![1],
            requests_per_client: 4,
            chaos_clients: 2,
            chaos_requests: 8,
            ..ServiceConfig::fast()
        });
        report.chaos.lost_acked_commits = 1;
        assert!(report.check_gate().is_err());
        report.chaos.lost_acked_commits = 0;
        report.points[0].anomalies = 1;
        assert!(report.check_gate().is_err());
    }

    #[test]
    fn json_document_has_the_documented_schema() {
        let report = ServiceReport {
            points: vec![ServicePoint {
                clients: 4,
                rps: 1234.5,
                p50_ms: 0.8,
                p99_ms: 2.5,
                completed: 600,
                failed: 0,
                anomalies: 0,
            }],
            chaos: ChaosLegReport {
                completed: 100,
                acked_commits: 110,
                resets_after_send: 5,
                ..ChaosLegReport::default()
            },
            ping_ms: Some(0.21),
            server_stats: Some(WireStats {
                requests: 1000,
                commits: 600,
                ..WireStats::default()
            }),
            nodes: 3,
            workers: 8,
        };
        let rendered = report.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("experiment").unwrap().as_str().unwrap(),
            "fig8_service"
        );
        assert_eq!(parsed.get("points").unwrap().as_array().unwrap().len(), 1);
        assert!(parsed.get("chaos").unwrap().get("acked_commits").is_some());
        assert!(parsed.get("server").unwrap().get("commits").is_some());
    }
}
