//! `fig7_throughput_scaling`: does the shim's hot path scale with clients?
//!
//! The paper's Figure 7 sweeps closed-loop clients against a single AFT node
//! and reports throughput. This experiment asks the same question about the
//! *reproduction's own hot path*: it sweeps clients × storage lock stripes ×
//! commit-batch settings over the in-memory
//! [`SimShardedService`](aft_storage::SimShardedService) backend, whose
//! per-stripe request lanes model a storage service's internal parallelism
//! (one Redis-shard-style single-threaded executor per stripe). The
//! `global-lock` variant (1 stripe, no batching) reproduces the pre-striping
//! implementation — every storage access funneled through one lock — and is
//! the baseline every other variant is compared against.
//!
//! Because lane occupancy is simulated (slept) time rather than compute, the
//! sweep measures the *architecture's* parallelism and is meaningful even on
//! a single-core CI host.
//!
//! The results are written as machine-readable `BENCH_throughput.json`
//! (p50/p99 latency, ops/s, anomaly counts per point) so CI can archive a
//! perf trajectory and gate on regressions against a checked-in
//! `BENCH_baseline.json`.

use std::time::Duration;

use aft_core::{AftNode, BatchConfig, NodeConfig};
use aft_faas::{FaasPlatform, PlatformConfig, RetryPolicy};
use aft_storage::{make_backend, BackendConfig, BackendKind, IoConfig, LatencyMode};
use aft_workload::{run_closed_loop, AftDriver, RunConfig, WorkloadConfig};

use crate::json::Json;
use crate::report::Table;

/// One hot-path configuration in the sweep.
#[derive(Debug, Clone)]
pub struct ScalingVariant {
    /// Label used in tables and JSON ("global-lock", "striped", ...).
    pub label: String,
    /// Lock-stripe count for the memory backend's data plane.
    pub stripes: usize,
    /// Maximum commits coalesced into one storage flush.
    pub max_batch: usize,
    /// Group-commit window in microseconds (0 = flush immediately).
    pub max_delay_us: u64,
}

impl ScalingVariant {
    fn new(label: &str, stripes: usize, max_batch: usize, max_delay_us: u64) -> Self {
        ScalingVariant {
            label: label.to_owned(),
            stripes,
            max_batch,
            max_delay_us,
        }
    }

    fn batch_config(&self) -> BatchConfig {
        BatchConfig::default()
            .with_max_batch(self.max_batch)
            .with_max_delay(Duration::from_micros(self.max_delay_us))
    }
}

/// Configuration of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Closed-loop client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Requests each client issues per point.
    pub requests_per_client: usize,
    /// Key-space size.
    pub keys: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// The hot-path variants to compare.
    pub variants: Vec<ScalingVariant>,
    /// Latency scale applied to the service profile (1.0 = calibrated
    /// Redis-like per-operation cost).
    pub latency_scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// The full sweep: clients 1→32 across the three interesting variants.
    pub fn standard() -> Self {
        ScalingConfig {
            client_counts: vec![1, 2, 4, 8, 16, 32],
            requests_per_client: 200,
            keys: 10_000,
            value_size: 256,
            variants: Self::default_variants(),
            latency_scale: 1.0,
            seed: 0xF7_5C,
        }
    }

    /// A sub-minute sweep for CI: the endpoints only (1 and 8 clients).
    pub fn fast() -> Self {
        ScalingConfig {
            client_counts: vec![1, 8],
            requests_per_client: 150,
            keys: 2_000,
            value_size: 128,
            variants: Self::default_variants(),
            latency_scale: 1.0,
            seed: 0xF7_5C,
        }
    }

    /// The three variants every sweep compares:
    /// the pre-striping baseline, striping alone, and striping + batching.
    fn default_variants() -> Vec<ScalingVariant> {
        vec![
            ScalingVariant::new("global-lock", 1, 1, 0),
            ScalingVariant::new("striped", 16, 1, 0),
            ScalingVariant::new("striped+batched", 16, 32, 0),
        ]
    }
}

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// The variant's label.
    pub variant: String,
    /// Lock stripes of the point's backend.
    pub stripes: usize,
    /// Maximum commit batch of the point's node.
    pub max_batch: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Requests completed per second.
    pub ops_per_sec: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests that exhausted retries.
    pub failed: u64,
    /// Read-your-writes anomalies observed (must be 0 through AFT).
    pub ryw_anomalies: u64,
    /// Fractured-read anomalies observed (must be 0 through AFT).
    pub fr_anomalies: u64,
    /// Mean commits coalesced per storage flush.
    pub mean_commit_batch: f64,
}

/// The measured sweep plus derived summary numbers.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Every measured point, in sweep order.
    pub points: Vec<ScalingPoint>,
}

impl ThroughputReport {
    /// The point for (`variant`, `clients`), if measured.
    pub fn point(&self, variant: &str, clients: usize) -> Option<&ScalingPoint> {
        self.points
            .iter()
            .find(|p| p.variant == variant && p.clients == clients)
    }

    /// Throughput of the fully sharded+batched configuration at the lowest
    /// measured client count — the number the CI regression gate tracks.
    pub fn single_client_ops(&self) -> f64 {
        let min_clients = self.points.iter().map(|p| p.clients).min().unwrap_or(1);
        self.point("striped+batched", min_clients)
            .map_or(0.0, |p| p.ops_per_sec)
    }

    /// Multi-client speedup of `striped+batched` over `global-lock` at the
    /// highest measured client count (the ISSUE's ≥2× acceptance number).
    pub fn multi_client_speedup(&self) -> f64 {
        let max_clients = self.points.iter().map(|p| p.clients).max().unwrap_or(1);
        let baseline = self
            .point("global-lock", max_clients)
            .map_or(0.0, |p| p.ops_per_sec);
        let sharded = self
            .point("striped+batched", max_clients)
            .map_or(0.0, |p| p.ops_per_sec);
        if baseline <= 0.0 {
            0.0
        } else {
            sharded / baseline
        }
    }

    /// Total anomalies across every point (must be 0: AFT's guarantees do
    /// not bend under striping or batching).
    pub fn total_anomalies(&self) -> u64 {
        self.points
            .iter()
            .map(|p| p.ryw_anomalies + p.fr_anomalies)
            .sum()
    }

    /// Renders the sweep as an aligned text table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "fig7_throughput_scaling — memory backend, clients × stripes × batch",
            &[
                "variant",
                "stripes",
                "max_batch",
                "clients",
                "ops/s",
                "p50 (ms)",
                "p99 (ms)",
                "mean batch",
                "anomalies",
            ],
        );
        for p in &self.points {
            table.add_row(vec![
                p.variant.clone(),
                p.stripes.to_string(),
                p.max_batch.to_string(),
                p.clients.to_string(),
                format!("{:.0}", p.ops_per_sec),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.2}", p.mean_commit_batch),
                (p.ryw_anomalies + p.fr_anomalies).to_string(),
            ]);
        }
        table
    }

    /// Serialises the report as the `BENCH_throughput.json` document.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("variant", Json::str(&p.variant)),
                    ("stripes", Json::Num(p.stripes as f64)),
                    ("max_batch", Json::Num(p.max_batch as f64)),
                    ("clients", Json::Num(p.clients as f64)),
                    ("ops_per_sec", Json::Num(round2(p.ops_per_sec))),
                    ("p50_ms", Json::Num(round4(p.p50_ms))),
                    ("p99_ms", Json::Num(round4(p.p99_ms))),
                    ("completed", Json::Num(p.completed as f64)),
                    ("failed", Json::Num(p.failed as f64)),
                    ("ryw_anomalies", Json::Num(p.ryw_anomalies as f64)),
                    ("fr_anomalies", Json::Num(p.fr_anomalies as f64)),
                    ("mean_commit_batch", Json::Num(round2(p.mean_commit_batch))),
                ])
            })
            .collect();
        Json::obj(vec![
            ("experiment", Json::str("fig7_throughput_scaling")),
            ("backend", Json::str("memory")),
            (
                "summary",
                Json::obj(vec![
                    (
                        "single_client_ops_per_sec",
                        Json::Num(round2(self.single_client_ops())),
                    ),
                    (
                        "multi_client_speedup",
                        Json::Num(round2(self.multi_client_speedup())),
                    ),
                    ("total_anomalies", Json::Num(self.total_anomalies() as f64)),
                ]),
            ),
            ("points", Json::Arr(points)),
        ])
    }

    /// Compares this run's single-client throughput against a baseline
    /// document (same JSON schema). Returns an error describing the failure
    /// if throughput regressed by more than `max_regression` (a fraction,
    /// e.g. `0.30`), or if anomalies were observed.
    pub fn check_against_baseline(
        &self,
        baseline: &Json,
        max_regression: f64,
    ) -> Result<String, String> {
        if self.total_anomalies() > 0 {
            return Err(format!(
                "{} read-atomicity anomalies observed; AFT must show zero",
                self.total_anomalies()
            ));
        }
        let baseline_ops = baseline
            .get("summary")
            .and_then(|s| s.get("single_client_ops_per_sec"))
            .and_then(Json::as_f64)
            .ok_or("baseline JSON lacks summary.single_client_ops_per_sec")?;
        let current = self.single_client_ops();
        let floor = baseline_ops * (1.0 - max_regression);
        if current < floor {
            Err(format!(
                "single-client throughput regressed: {current:.0} ops/s < {floor:.0} ops/s \
                 (baseline {baseline_ops:.0} - {:.0}%)",
                max_regression * 100.0
            ))
        } else {
            Ok(format!(
                "single-client throughput {current:.0} ops/s within {:.0}% of baseline \
                 {baseline_ops:.0} ops/s",
                max_regression * 100.0
            ))
        }
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

/// Runs the sweep and returns the report.
///
/// Every point gets a fresh backend and node so points never warm each other
/// up; the data cache is disabled so reads exercise the storage stripes
/// (the cache's own striping is covered by its unit tests).
pub fn fig7_throughput_scaling(config: &ScalingConfig) -> ThroughputReport {
    let workload = WorkloadConfig::standard()
        .with_keys(config.keys)
        .with_value_size(config.value_size);
    let mode = if config.latency_scale > 0.0 {
        LatencyMode::Sleep
    } else {
        LatencyMode::Virtual
    };
    let mut points = Vec::new();
    for variant in &config.variants {
        for (i, &clients) in config.client_counts.iter().enumerate() {
            // Through the one shared construction path: `ShardedService` is a
            // first-class BackendKind, so benches and tests select it exactly
            // like the S3/DynamoDB/Redis sims.
            let storage = make_backend(BackendConfig {
                kind: BackendKind::ShardedService,
                mode,
                scale: config.latency_scale,
                seed: config.seed ^ variant.stripes as u64,
                redis_shards: aft_storage::redis::DEFAULT_REDIS_SHARDS,
                stripes: variant.stripes,
            });
            let node_config = NodeConfig {
                data_cache_bytes: 0,
                commit_batch: variant.batch_config(),
                rng_seed: config.seed ^ (i as u64) << 8 ^ variant.stripes as u64,
                // The sharded-service backend models *service-side* occupancy
                // (no deferred latency), so every storage request holds an
                // engine worker for its whole service time. Give the engine
                // one worker per client: the sweep must measure the stripes'
                // parallelism, never be capped by the worker pool.
                io: IoConfig::pipelined().with_workers(clients.max(8)),
                ..NodeConfig::default()
            };
            let node =
                AftNode::new(node_config, storage).expect("memory backend never fails to build");
            let driver = AftDriver::single_node(
                std::sync::Arc::clone(&node),
                FaasPlatform::new(PlatformConfig::test()),
                RetryPolicy::with_attempts(8),
            );
            let run = run_closed_loop(
                &driver,
                &RunConfig::new(workload.clone())
                    .with_clients(clients)
                    .with_requests(config.requests_per_client)
                    .with_seed(config.seed + clients as u64),
            )
            .expect("closed-loop run over the memory backend");
            let batch_stats = node.commit_batch_stats();
            points.push(ScalingPoint {
                variant: variant.label.clone(),
                stripes: variant.stripes,
                max_batch: variant.max_batch,
                clients,
                ops_per_sec: run.throughput_tps(),
                p50_ms: run.latency.median_ms(),
                p99_ms: run.latency.p99_ms(),
                completed: run.completed,
                failed: run.failed,
                ryw_anomalies: run.anomalies.ryw_transactions,
                fr_anomalies: run.anomalies.fr_transactions,
                mean_commit_batch: batch_stats.mean_batch(),
            });
        }
    }
    ThroughputReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ScalingConfig {
        ScalingConfig {
            client_counts: vec![1, 4],
            requests_per_client: 10,
            keys: 100,
            value_size: 64,
            variants: vec![
                ScalingVariant::new("global-lock", 1, 1, 0),
                ScalingVariant::new("striped+batched", 8, 16, 0),
            ],
            // Virtual latency: unit tests must stay fast and deterministic.
            latency_scale: 0.0,
            seed: 7,
        }
    }

    #[test]
    fn sweep_measures_every_point_with_zero_anomalies() {
        let report = fig7_throughput_scaling(&tiny_config());
        assert_eq!(report.points.len(), 4, "2 variants x 2 client counts");
        for p in &report.points {
            assert_eq!(p.completed, p.clients as u64 * 10);
            assert_eq!(p.failed, 0);
            assert!(p.ops_per_sec > 0.0);
        }
        assert_eq!(report.total_anomalies(), 0);
        assert!(report.single_client_ops() > 0.0);
        assert!(report.multi_client_speedup() > 0.0);
    }

    #[test]
    fn json_document_round_trips_with_summary() {
        let report = fig7_throughput_scaling(&tiny_config());
        let doc = report.to_json();
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("experiment").unwrap().as_str().unwrap(),
            "fig7_throughput_scaling"
        );
        assert_eq!(
            parsed.get("points").unwrap().as_array().unwrap().len(),
            report.points.len()
        );
        assert!(parsed
            .get("summary")
            .and_then(|s| s.get("single_client_ops_per_sec"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn baseline_gate_passes_and_fails_correctly() {
        let report = fig7_throughput_scaling(&tiny_config());
        let generous = Json::obj(vec![(
            "summary",
            Json::obj(vec![("single_client_ops_per_sec", Json::Num(1.0))]),
        )]);
        assert!(report.check_against_baseline(&generous, 0.30).is_ok());
        let impossible = Json::obj(vec![(
            "summary",
            Json::obj(vec![(
                "single_client_ops_per_sec",
                Json::Num(f64::MAX / 2.0),
            )]),
        )]);
        assert!(report.check_against_baseline(&impossible, 0.30).is_err());
        let malformed = Json::obj(vec![("nothing", Json::Null)]);
        assert!(report.check_against_baseline(&malformed, 0.30).is_err());
    }

    #[test]
    fn table_has_one_row_per_point() {
        let report = fig7_throughput_scaling(&tiny_config());
        assert_eq!(report.table().len(), report.points.len());
    }
}
