//! `fig13_checkpoint`: does time-to-recovery stay flat as history grows?
//!
//! The §4.2 fault-manager scan and a replacement node's bootstrap both walk
//! the durable Transaction Commit Set. Without checkpoints that walk is a
//! **full replay** — cost proportional to the entire commit history — so a
//! long-lived deployment recovers slower every day it runs. The checkpoint
//! subsystem ([`aft_storage::checkpoint`]) bounds the walk: a replacement
//! bootstraps from the newest valid checkpoint (a CRC-sealed snapshot of the
//! §4.1-pruned committed-version index) plus only the commit-log **tail**
//! the checkpoint does not cover, and log compaction deletes the covered
//! records outright.
//!
//! This experiment sweeps commit-set size (10k → 1M in the full run) per
//! backend with a *fixed* live key-set and a *fixed* tail, and measures the
//! charged (virtual-clock) recovery cost and bytes-read-at-bootstrap for
//! both strategies. The paper-shaped claim the gate enforces: **recovery
//! cost grows with the tail, not the history** — the checkpoint+tail cost
//! at the largest history stays within 3× of the smallest, while full
//! replay grows roughly linearly with history — with zero lost and zero
//! phantom commits versus ground truth at every point. Results land in
//! `BENCH_checkpoint.json`.

use aft_core::bootstrap::warm_metadata_cache_checkpointed;
use aft_core::MetadataCache;
use aft_storage::checkpoint::{compact_log, publish_checkpoint, Checkpoint, CHECKPOINT_KEEP};
use aft_storage::io::{IoConfig, IoEngine, StorageRequest};
use aft_storage::{BackendConfig, BackendKind, LatencyMode, DEFAULT_STRIPES};
use aft_types::codec::encode_commit_record;
use aft_types::{Key, TransactionId, TransactionRecord, Uuid};

use crate::json::Json;
use crate::report::Table;

/// Configuration of the checkpoint recovery sweep.
#[derive(Debug, Clone)]
pub struct CheckpointBenchConfig {
    /// Commit-history sizes to sweep (records seeded before the tail).
    pub sizes: Vec<usize>,
    /// Live key-set size — the committed-version index a checkpoint
    /// snapshots is bounded by this, not by history length.
    pub keys: usize,
    /// Commits appended *after* the checkpoint (the tail a bootstrap must
    /// still replay).
    pub tail: usize,
    /// Bootstrap measurements per (backend, size) cell; p50/p99 are over
    /// these.
    pub trials: usize,
    /// Backend profiles to sweep.
    pub backends: Vec<BackendKind>,
    /// Base RNG seed (backend latency sampling).
    pub seed: u64,
}

impl CheckpointBenchConfig {
    /// The full sweep: 10k → 1M commits across the three evaluated
    /// backends.
    pub fn standard() -> Self {
        CheckpointBenchConfig {
            sizes: vec![10_000, 100_000, 1_000_000],
            keys: 512,
            tail: 1_024,
            trials: 3,
            backends: BackendKind::EVALUATED.to_vec(),
            seed: 0xF1613,
        }
    }

    /// The CI configuration: a 2k → 10k sweep on one backend, enough to
    /// show the separation without minutes of seeding.
    pub fn fast() -> Self {
        CheckpointBenchConfig {
            sizes: vec![2_000, 10_000],
            keys: 128,
            tail: 256,
            trials: 2,
            backends: vec![BackendKind::DynamoDb],
            ..CheckpointBenchConfig::standard()
        }
    }
}

/// One bootstrap measurement (one strategy, one trial).
#[derive(Debug, Clone, Copy, Default)]
struct BootstrapSample {
    /// Charged virtual-clock cost, milliseconds.
    cost_ms: f64,
    /// Bytes fetched from storage.
    bytes_read: u64,
    /// Records loaded into the metadata cache.
    loaded: usize,
}

/// One (backend, history size) cell.
#[derive(Debug, Clone)]
pub struct CheckpointCell {
    /// Backend label.
    pub backend: String,
    /// Commit-history size before the tail.
    pub history: usize,
    /// Tail commits appended after the checkpoint.
    pub tail: usize,
    /// Full-replay trials (measured before the checkpoint exists).
    full: Vec<BootstrapSample>,
    /// Checkpoint+tail trials (measured after checkpoint + compaction).
    ckpt: Vec<BootstrapSample>,
    /// Commit records dropped by compaction.
    pub compacted: usize,
    /// Ground-truth commits missing from the checkpoint+tail bootstrap
    /// (neither loaded nor legitimately superseded). Must be zero.
    pub lost: usize,
    /// Bootstrapped records that were never committed. Must be zero.
    pub phantom: usize,
}

fn percentile(samples: &[BootstrapSample], p: f64, f: impl Fn(&BootstrapSample) -> f64) -> f64 {
    let mut values: Vec<f64> = samples.iter().map(f).collect();
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((values.len() as f64 - 1.0) * p).round() as usize;
    values[idx.min(values.len() - 1)]
}

impl CheckpointCell {
    /// Median charged full-replay cost, ms.
    pub fn full_p50_ms(&self) -> f64 {
        percentile(&self.full, 0.5, |s| s.cost_ms)
    }

    /// 99th-percentile charged full-replay cost, ms.
    pub fn full_p99_ms(&self) -> f64 {
        percentile(&self.full, 0.99, |s| s.cost_ms)
    }

    /// Median charged checkpoint+tail cost, ms.
    pub fn ckpt_p50_ms(&self) -> f64 {
        percentile(&self.ckpt, 0.5, |s| s.cost_ms)
    }

    /// 99th-percentile charged checkpoint+tail cost, ms.
    pub fn ckpt_p99_ms(&self) -> f64 {
        percentile(&self.ckpt, 0.99, |s| s.cost_ms)
    }

    /// Bytes a full-replay bootstrap read (median trial).
    pub fn full_bytes(&self) -> u64 {
        percentile(&self.full, 0.5, |s| s.bytes_read as f64) as u64
    }

    /// Bytes a checkpoint+tail bootstrap read (median trial).
    pub fn ckpt_bytes(&self) -> u64 {
        percentile(&self.ckpt, 0.5, |s| s.bytes_read as f64) as u64
    }
}

/// The whole sweep's results.
#[derive(Debug, Clone)]
pub struct CheckpointReport {
    /// Every cell, in (backend, history size) order.
    pub cells: Vec<CheckpointCell>,
}

impl CheckpointReport {
    /// Total ground-truth commits lost across the sweep.
    pub fn total_lost(&self) -> usize {
        self.cells.iter().map(|c| c.lost).sum()
    }

    /// Total phantom records across the sweep.
    pub fn total_phantom(&self) -> usize {
        self.cells.iter().map(|c| c.phantom).sum()
    }

    fn backends(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.cells.iter().map(|c| c.backend.as_str()).collect();
        labels.dedup();
        labels
    }

    /// The CI gate. Per backend, comparing the largest history to the
    /// smallest:
    ///
    /// * checkpoint+tail recovery p50 grows by at most 3× — recovery cost
    ///   tracks the (fixed) tail, not the history;
    /// * full-replay p50 grows with history: at least `0.2 × size ratio`
    ///   (≥ 20× over the full 100× sweep) and strictly more than the
    ///   checkpoint+tail growth;
    /// * checkpoint+tail reads fewer bytes than full replay at the largest
    ///   history;
    /// * zero lost and zero phantom commits in every cell.
    pub fn check_gate(&self) -> Result<String, String> {
        if self.cells.is_empty() {
            return Err("no cells".into());
        }
        for cell in &self.cells {
            if cell.lost > 0 {
                return Err(format!(
                    "{}/{}: {} ground-truth commits lost by checkpoint+tail bootstrap",
                    cell.backend, cell.history, cell.lost
                ));
            }
            if cell.phantom > 0 {
                return Err(format!(
                    "{}/{}: {} phantom commits after bootstrap",
                    cell.backend, cell.history, cell.phantom
                ));
            }
        }
        for backend in self.backends() {
            let mut cells: Vec<&CheckpointCell> =
                self.cells.iter().filter(|c| c.backend == backend).collect();
            cells.sort_by_key(|c| c.history);
            let (small, large) = match (cells.first(), cells.last()) {
                (Some(s), Some(l)) if s.history < l.history => (*s, *l),
                _ => return Err(format!("{backend}: need at least two history sizes")),
            };
            let size_ratio = large.history as f64 / small.history as f64;
            let ckpt_growth = large.ckpt_p50_ms() / small.ckpt_p50_ms().max(1e-9);
            let full_growth = large.full_p50_ms() / small.full_p50_ms().max(1e-9);
            if ckpt_growth > 3.0 {
                return Err(format!(
                    "{backend}: checkpoint+tail recovery p50 grew {ckpt_growth:.1}x over a \
                     {size_ratio:.0}x history sweep (limit 3x) — recovery cost must track \
                     the tail, not the history"
                ));
            }
            let full_floor = 0.2 * size_ratio;
            if full_growth < full_floor {
                return Err(format!(
                    "{backend}: full-replay p50 grew only {full_growth:.1}x over a \
                     {size_ratio:.0}x sweep (expected >= {full_floor:.1}x) — the baseline \
                     is not history-bound, so the comparison is meaningless"
                ));
            }
            if full_growth <= ckpt_growth {
                return Err(format!(
                    "{backend}: full replay ({full_growth:.1}x) did not outgrow \
                     checkpoint+tail ({ckpt_growth:.1}x)"
                ));
            }
            if large.ckpt_bytes() >= large.full_bytes() {
                return Err(format!(
                    "{backend}: checkpoint+tail read {} bytes at {} commits, full replay {}",
                    large.ckpt_bytes(),
                    large.history,
                    large.full_bytes()
                ));
            }
        }
        let largest = self.cells.iter().map(|c| c.history).max().unwrap_or(0);
        Ok(format!(
            "{} cells clean to {largest} commits: checkpoint+tail recovery flat \
             (<= 3x growth), full replay history-bound, 0 lost, 0 phantom",
            self.cells.len()
        ))
    }

    /// Renders the sweep as an aligned text table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "fig13_checkpoint — recovery cost: full replay vs checkpoint + tail",
            &[
                "backend",
                "history",
                "tail",
                "full p50 (ms)",
                "full p99 (ms)",
                "ckpt p50 (ms)",
                "ckpt p99 (ms)",
                "full MB read",
                "ckpt MB read",
                "compacted",
                "lost",
                "phantom",
            ],
        );
        for cell in &self.cells {
            table.add_row(vec![
                cell.backend.clone(),
                cell.history.to_string(),
                cell.tail.to_string(),
                format!("{:.1}", cell.full_p50_ms()),
                format!("{:.1}", cell.full_p99_ms()),
                format!("{:.1}", cell.ckpt_p50_ms()),
                format!("{:.1}", cell.ckpt_p99_ms()),
                format!("{:.2}", cell.full_bytes() as f64 / 1e6),
                format!("{:.2}", cell.ckpt_bytes() as f64 / 1e6),
                cell.compacted.to_string(),
                cell.lost.to_string(),
                cell.phantom.to_string(),
            ]);
        }
        table
    }

    /// Serialises the report as the `BENCH_checkpoint.json` document.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("backend", Json::str(&c.backend)),
                    ("history_commits", Json::Num(c.history as f64)),
                    ("tail_commits", Json::Num(c.tail as f64)),
                    ("full_replay_p50_ms", Json::Num(round2(c.full_p50_ms()))),
                    ("full_replay_p99_ms", Json::Num(round2(c.full_p99_ms()))),
                    ("ckpt_tail_p50_ms", Json::Num(round2(c.ckpt_p50_ms()))),
                    ("ckpt_tail_p99_ms", Json::Num(round2(c.ckpt_p99_ms()))),
                    ("full_replay_bytes", Json::Num(c.full_bytes() as f64)),
                    ("ckpt_tail_bytes", Json::Num(c.ckpt_bytes() as f64)),
                    ("compacted_records", Json::Num(c.compacted as f64)),
                    ("lost_commits", Json::Num(c.lost as f64)),
                    ("phantom_commits", Json::Num(c.phantom as f64)),
                ])
            })
            .collect();
        let largest = self.cells.iter().map(|c| c.history).max().unwrap_or(0);
        Json::obj(vec![
            ("experiment", Json::str("fig13_checkpoint")),
            (
                "summary",
                Json::obj(vec![
                    ("cells", Json::Num(self.cells.len() as f64)),
                    ("largest_history", Json::Num(largest as f64)),
                    ("lost_commits", Json::Num(self.total_lost() as f64)),
                    ("phantom_commits", Json::Num(self.total_phantom() as f64)),
                ]),
            ),
            ("cells", Json::Arr(cells)),
        ])
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

fn tid(ts: u64) -> TransactionId {
    TransactionId::new(ts, Uuid::from_u128(0xF13_0000_0000u128 | ts as u128))
}

fn record_for(ts: u64, keys: usize) -> TransactionRecord {
    TransactionRecord::new(tid(ts), [Key::new(format!("k{:06}", ts % keys as u64))])
}

/// Seeds commit records `[first, last]` straight into storage via pipelined
/// batched puts — the bench measures *recovery*, so seeding skips the
/// transaction path.
fn seed_commits(io: &IoEngine, first: u64, last: u64, keys: usize) {
    const SEED_BATCH: usize = 1_024;
    let mut batch = Vec::with_capacity(SEED_BATCH);
    for ts in first..=last {
        let record = record_for(ts, keys);
        batch.push((record.storage_key(), encode_commit_record(&record)));
        if batch.len() >= SEED_BATCH {
            io.execute(StorageRequest::PutBatch(std::mem::take(&mut batch)))
                .result
                .expect("seeding cannot fail");
            batch.reserve(SEED_BATCH);
        }
    }
    if !batch.is_empty() {
        io.execute(StorageRequest::PutBatch(batch))
            .result
            .expect("seeding cannot fail");
    }
}

fn measure_bootstrap(io: &IoEngine) -> (BootstrapSample, MetadataCache) {
    let cache = MetadataCache::new();
    let outcome = warm_metadata_cache_checkpointed(io, &cache, usize::MAX, "fig13-bench", None)
        .expect("bootstrap cannot fail without chaos");
    let sample = BootstrapSample {
        cost_ms: outcome.cost.as_secs_f64() * 1_000.0,
        bytes_read: outcome.bytes_read,
        loaded: outcome.loaded(),
    };
    (sample, cache)
}

fn run_cell(
    backend: BackendKind,
    history: usize,
    config: &CheckpointBenchConfig,
) -> CheckpointCell {
    let storage = aft_storage::make_backend(BackendConfig {
        kind: backend,
        mode: LatencyMode::Virtual,
        scale: 1.0,
        seed: config.seed ^ history as u64,
        redis_shards: 2,
        stripes: DEFAULT_STRIPES,
    });
    let io = IoEngine::new(storage, IoConfig::pipelined());

    // Phase 1: the history, and the full-replay baseline over it.
    seed_commits(&io, 1, history as u64, config.keys);
    let full: Vec<BootstrapSample> = (0..config.trials)
        .map(|_| measure_bootstrap(&io).0)
        .collect();

    // Phase 2: checkpoint the §4.1-pruned committed-version index (newest
    // record per live key — its size is bounded by the key-set, not the
    // history), publish it, and compact the covered log.
    let newest_per_key: Vec<TransactionRecord> = (0..config.keys as u64)
        .filter_map(|slot| {
            let h = history as u64;
            // Largest ts in [1, history] with ts % keys == slot.
            let last = h - (h + config.keys as u64 - slot) % config.keys as u64;
            (last >= 1).then(|| record_for(last, config.keys))
        })
        .collect();
    let checkpoint = Checkpoint::new(1, newest_per_key);
    publish_checkpoint(&io, &checkpoint, || Ok(())).expect("publish cannot fail");
    let compaction =
        compact_log(&io, &checkpoint, CHECKPOINT_KEEP).expect("compaction cannot fail");

    // Phase 3: the tail the checkpoint does not cover, then the
    // checkpoint+tail measurements.
    seed_commits(
        &io,
        history as u64 + 1,
        (history + config.tail) as u64,
        config.keys,
    );
    let mut ckpt = Vec::with_capacity(config.trials);
    let mut last_cache = None;
    for _ in 0..config.trials {
        let (sample, cache) = measure_bootstrap(&io);
        assert!(sample.loaded > 0, "bootstrap must load records");
        ckpt.push(sample);
        last_cache = Some(cache);
    }

    // Ground truth: every seeded commit must be in the bootstrapped cache
    // or superseded by a strictly newer version of its key (§4.1); every
    // cached record must have been seeded.
    let cache = last_cache.expect("trials >= 1");
    let mut lost = 0;
    for ts in 1..=(history + config.tail) as u64 {
        let record = record_for(ts, config.keys);
        if cache.is_committed(&record.id) {
            continue;
        }
        let superseded = record.write_set.iter().all(|key| {
            cache
                .latest_version_of(key)
                .is_some_and(|newest| newest > record.id)
        });
        if !superseded {
            lost += 1;
        }
    }
    let phantom = cache
        .all_records()
        .iter()
        .filter(|r| {
            let ts = r.id.timestamp;
            ts < 1 || ts > (history + config.tail) as u64 || r.id != tid(ts)
        })
        .count();

    CheckpointCell {
        backend: backend.label().to_owned(),
        history,
        tail: config.tail,
        full,
        ckpt,
        compacted: compaction.deleted_covered + compaction.deleted_superseded,
        lost,
        phantom,
    }
}

/// Runs the full sweep and returns the report.
pub fn fig13_checkpoint(config: &CheckpointBenchConfig) -> CheckpointReport {
    let mut cells = Vec::with_capacity(config.backends.len() * config.sizes.len());
    for &backend in &config.backends {
        for &history in &config.sizes {
            cells.push(run_cell(backend, history, config));
        }
    }
    CheckpointReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CheckpointBenchConfig {
        CheckpointBenchConfig {
            sizes: vec![500, 5_000],
            keys: 64,
            tail: 100,
            trials: 2,
            // DynamoDB under the virtual clock: latency is charged, not
            // slept, so the cost separation is visible without wall time.
            backends: vec![BackendKind::DynamoDb],
            seed: 0xF1613,
        }
    }

    #[test]
    fn tiny_sweep_passes_the_gate() {
        let report = fig13_checkpoint(&tiny());
        assert_eq!(report.cells.len(), 2);
        let summary = report.check_gate().expect("gate must pass");
        assert!(summary.contains("0 lost"), "{summary}");
        assert_eq!(report.total_lost(), 0);
        assert_eq!(report.total_phantom(), 0);
        for cell in &report.cells {
            assert!(cell.compacted > 0, "compaction must drop covered records");
            assert!(
                cell.ckpt_bytes() < cell.full_bytes(),
                "checkpoint+tail must read fewer bytes"
            );
        }
        // The separation the figure shows: full replay is history-bound,
        // checkpoint+tail is not.
        let small = &report.cells[0];
        let large = &report.cells[1];
        assert!(large.full_p50_ms() > small.full_p50_ms() * 2.0);
        assert!(large.ckpt_p50_ms() <= small.ckpt_p50_ms() * 3.0);
    }

    #[test]
    fn gate_catches_a_missing_separation() {
        let mut report = fig13_checkpoint(&tiny());
        // Sabotage: pretend the checkpoint path got as slow as full replay.
        for cell in &mut report.cells {
            cell.ckpt = cell.full.clone();
        }
        let err = report.check_gate().unwrap_err();
        assert!(err.contains("3x") || err.contains("outgrow"), "{err}");
    }

    #[test]
    fn json_document_round_trips() {
        let report = fig13_checkpoint(&CheckpointBenchConfig {
            sizes: vec![300, 900],
            ..tiny()
        });
        let parsed = Json::parse(&report.to_json().render()).unwrap();
        assert_eq!(
            parsed.get("experiment").unwrap().as_str().unwrap(),
            "fig13_checkpoint"
        );
        let cells = parsed.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 2);
        assert!(parsed
            .get("summary")
            .and_then(|s| s.get("lost_commits"))
            .and_then(Json::as_f64)
            .is_some());
        assert_eq!(report.table().len(), report.cells.len());
    }
}
