//! `fig2_pipelined`: what does pipelining storage I/O buy per backend?
//!
//! The paper's Figure 2 decomposes a request's I/O cost; this experiment
//! asks the follow-up question the I/O-engine refactor answers: for a
//! multi-key transaction, how much commit and read latency does overlapping
//! the storage round trips recover, per backend profile?
//!
//! Two legs per backend, identical workload:
//!
//! * **sequential** — storage wrapped in
//!   [`SequentialEngine`](aft_storage::SequentialEngine) (per-key API calls,
//!   full round-trip charging) and a node with
//!   [`IoConfig::sequential()`](aft_storage::IoConfig::sequential): an
//!   N-key commit pays N+1 round trips back to back — the historical
//!   implementation.
//! * **pipelined** — the plain simulator and
//!   [`IoConfig::pipelined()`](aft_storage::IoConfig::pipelined): the commit
//!   flush overlaps the N data puts, barriers, then appends the record
//!   (§3.3's ordering preserved), and multi-key reads overlap their fallback
//!   fetches.
//!
//! The experiment runs in `LatencyMode::Virtual` at full scale by default:
//! nothing sleeps, and latency is read from the node's per-commit/per-read
//! charge recorders — the per-batch overlap accounting the virtual clock
//! keeps (a concurrent batch charges the max of its samples, not the sum).
//! Results are written as `BENCH_pipelined.json`; `check_gate` fails if any
//! backend's pipelined p50 commit latency regresses past its sequential
//! p50, which CI enforces.

use aft_core::{AftNode, BatchConfig, NodeConfig};
use aft_storage::{
    BackendConfig, BackendKind, IoConfig, LatencyMode, SequentialEngine, SharedStorage,
};
use aft_types::clock::TickingClock;
use aft_types::{payload_of_size, Key};

use crate::json::Json;
use crate::report::Table;

/// Configuration of the pipelining experiment.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Backends to measure (the paper's three evaluated services).
    pub backends: Vec<BackendKind>,
    /// Committed transactions per leg.
    pub commits: usize,
    /// Read-only transactions per leg (each a `get_all` over one group).
    pub reads: usize,
    /// Keys written per transaction (the ISSUE's 8-key shape).
    pub keys_per_txn: usize,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Latency scale factor (1.0 = full calibrated scale; virtual clock
    /// makes that free).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// The full experiment: 200 commits/reads per leg, 8-key transactions.
    pub fn standard() -> Self {
        PipelineConfig {
            backends: BackendKind::EVALUATED.to_vec(),
            commits: 200,
            reads: 200,
            keys_per_txn: 8,
            value_size: 256,
            scale: 1.0,
            seed: 0xF162,
        }
    }

    /// A sub-minute configuration for CI (virtual clock makes even the
    /// standard one fast; this trims sample counts further).
    pub fn fast() -> Self {
        PipelineConfig {
            commits: 80,
            reads: 80,
            ..Self::standard()
        }
    }
}

/// One measured leg: a backend × I/O mode.
#[derive(Debug, Clone)]
pub struct PipelinePoint {
    /// Backend label ("S3", "DynamoDB", "Redis").
    pub backend: String,
    /// "sequential" or "pipelined".
    pub mode: String,
    /// Median simulated storage latency per commit flush, milliseconds.
    pub p50_commit_ms: f64,
    /// 99th-percentile commit flush latency, milliseconds.
    pub p99_commit_ms: f64,
    /// Median simulated storage latency per multi-key read, milliseconds.
    pub p50_read_ms: f64,
    /// Total storage API calls the leg issued.
    pub api_calls: u64,
}

/// The experiment's results.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Every measured leg, sequential before pipelined per backend.
    pub points: Vec<PipelinePoint>,
}

impl PipelineReport {
    /// The point for (`backend`, `mode`), if measured.
    pub fn point(&self, backend: &str, mode: &str) -> Option<&PipelinePoint> {
        self.points
            .iter()
            .find(|p| p.backend == backend && p.mode == mode)
    }

    /// Sequential-over-pipelined p50 commit speedup for one backend
    /// (>1 means pipelining helps).
    pub fn commit_speedup(&self, backend: &str) -> f64 {
        let seq = self
            .point(backend, "sequential")
            .map_or(0.0, |p| p.p50_commit_ms);
        let pipe = self
            .point(backend, "pipelined")
            .map_or(0.0, |p| p.p50_commit_ms);
        if pipe <= 0.0 {
            0.0
        } else {
            seq / pipe
        }
    }

    /// Sequential-over-pipelined p50 read speedup for one backend.
    pub fn read_speedup(&self, backend: &str) -> f64 {
        let seq = self
            .point(backend, "sequential")
            .map_or(0.0, |p| p.p50_read_ms);
        let pipe = self
            .point(backend, "pipelined")
            .map_or(0.0, |p| p.p50_read_ms);
        if pipe <= 0.0 {
            0.0
        } else {
            seq / pipe
        }
    }

    /// The backends measured, in order.
    pub fn backends(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.backend) {
                seen.push(p.backend.clone());
            }
        }
        seen
    }

    /// The CI gate: for every backend, pipelined p50 commit latency must not
    /// regress past sequential (small tolerance for sampling noise). Returns
    /// a summary on success, the failure description otherwise.
    pub fn check_gate(&self) -> Result<String, String> {
        let mut summaries = Vec::new();
        for backend in self.backends() {
            let seq = self
                .point(&backend, "sequential")
                .ok_or_else(|| format!("{backend}: missing sequential leg"))?;
            let pipe = self
                .point(&backend, "pipelined")
                .ok_or_else(|| format!("{backend}: missing pipelined leg"))?;
            if pipe.p50_commit_ms > seq.p50_commit_ms * 1.05 {
                return Err(format!(
                    "{backend}: pipelined p50 commit {:.3} ms regressed past \
                     sequential {:.3} ms",
                    pipe.p50_commit_ms, seq.p50_commit_ms
                ));
            }
            summaries.push(format!("{backend} {:.2}x", self.commit_speedup(&backend)));
        }
        Ok(format!(
            "pipelined p50 commit latency within bounds (speedups: {})",
            summaries.join(", ")
        ))
    }

    /// Renders the experiment as an aligned text table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "fig2_pipelined — sequential vs pipelined storage I/O per backend",
            &[
                "backend",
                "mode",
                "p50 commit (ms)",
                "p99 commit (ms)",
                "p50 read (ms)",
                "API calls",
            ],
        );
        for p in &self.points {
            table.add_row(vec![
                p.backend.clone(),
                p.mode.clone(),
                format!("{:.3}", p.p50_commit_ms),
                format!("{:.3}", p.p99_commit_ms),
                format!("{:.3}", p.p50_read_ms),
                p.api_calls.to_string(),
            ]);
        }
        table
    }

    /// Serialises the report as the `BENCH_pipelined.json` document.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("backend", Json::str(&p.backend)),
                    ("mode", Json::str(&p.mode)),
                    ("p50_commit_ms", Json::Num(round4(p.p50_commit_ms))),
                    ("p99_commit_ms", Json::Num(round4(p.p99_commit_ms))),
                    ("p50_read_ms", Json::Num(round4(p.p50_read_ms))),
                    ("api_calls", Json::Num(p.api_calls as f64)),
                ])
            })
            .collect();
        let speedups = self
            .backends()
            .into_iter()
            .map(|b| {
                let entry = Json::obj(vec![
                    ("commit", Json::Num(round4(self.commit_speedup(&b)))),
                    ("read", Json::Num(round4(self.read_speedup(&b)))),
                ]);
                (b, entry)
            })
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("experiment", Json::str("fig2_pipelined")),
            ("summary", Json::Obj(speedups)),
            ("points", Json::Arr(points)),
        ])
    }
}

fn round4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

/// Runs one leg: `commits` multi-key writes then `reads` multi-key reads
/// against a fresh backend, returning the measured point.
fn run_leg(kind: BackendKind, pipelined: bool, config: &PipelineConfig) -> PipelinePoint {
    let backend_config = BackendConfig {
        kind,
        mode: LatencyMode::Virtual,
        scale: config.scale,
        seed: config.seed ^ kind.label().len() as u64,
        redis_shards: aft_storage::redis::DEFAULT_REDIS_SHARDS,
        stripes: aft_storage::DEFAULT_STRIPES,
    };
    let raw = aft_storage::make_backend(backend_config);
    let storage: SharedStorage = if pipelined {
        raw
    } else {
        SequentialEngine::new(raw)
    };
    let node_config = NodeConfig {
        // No data cache: reads must exercise the storage fallback path.
        data_cache_bytes: 0,
        // No coalescing: each commit is exactly one flush, so the recorded
        // per-flush latency is the per-transaction commit latency.
        commit_batch: BatchConfig::disabled(),
        io: if pipelined {
            IoConfig::pipelined()
        } else {
            IoConfig::sequential()
        },
        bootstrap: false,
        rng_seed: config.seed,
        ..NodeConfig::default()
    };
    let node = AftNode::with_clock(node_config, storage, TickingClock::shared(1_000, 1))
        .expect("node construction over a simulated backend");
    let payload = payload_of_size(config.value_size);

    // Key groups: transaction t writes group (t % groups); a read of the
    // same group later observes one transaction's cowritten set.
    let groups = config.commits.clamp(1, 64);
    let group_keys = |g: usize| -> Vec<Key> {
        (0..config.keys_per_txn)
            .map(|i| Key::new(format!("grp{g:02}/k{i}")))
            .collect()
    };

    for t in 0..config.commits {
        let txid = node.start_transaction();
        for key in group_keys(t % groups) {
            node.put(&txid, key, payload.clone()).unwrap();
        }
        node.commit(&txid).unwrap();
    }
    for r in 0..config.reads {
        let txid = node.start_transaction();
        let values = node.get_all(&txid, &group_keys(r % groups)).unwrap();
        assert!(
            values.iter().all(Option::is_some),
            "all groups were written"
        );
        // Abort rather than commit: a read-only commit's record-only flush
        // would pollute the commit-latency recorder with ~1-RTT samples and
        // shift the reported p50 off the multi-key-commit population this
        // leg measures.
        node.abort(&txid).unwrap();
    }

    let commit = node.stats().commit_storage_latency();
    let read = node.stats().read_storage_latency();
    PipelinePoint {
        backend: kind.label().to_owned(),
        mode: if pipelined { "pipelined" } else { "sequential" }.to_owned(),
        p50_commit_ms: commit.percentile_ms(0.5).unwrap_or(0.0),
        p99_commit_ms: commit.percentile_ms(0.99).unwrap_or(0.0),
        p50_read_ms: read.percentile_ms(0.5).unwrap_or(0.0),
        api_calls: node.storage().stats().total_calls(),
    }
}

/// Runs the experiment and returns the report.
pub fn fig2_pipelined(config: &PipelineConfig) -> PipelineReport {
    let mut points = Vec::new();
    for &kind in &config.backends {
        points.push(run_leg(kind, false, config));
        points.push(run_leg(kind, true, config));
    }
    PipelineReport { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PipelineConfig {
        PipelineConfig {
            commits: 40,
            reads: 40,
            ..PipelineConfig::standard()
        }
    }

    #[test]
    fn s3_8key_commits_gain_at_least_2x_from_pipelining() {
        // The ISSUE's acceptance number: S3 profile, 8-key transactions,
        // virtual-clock mode, ≥2x lower p50 commit latency pipelined vs
        // sequential. (Expected shape: ~9 sequential round trips vs
        // max-of-8 + 1.)
        let config = PipelineConfig {
            backends: vec![BackendKind::S3],
            ..tiny()
        };
        let report = fig2_pipelined(&config);
        let speedup = report.commit_speedup("S3");
        assert!(
            speedup >= 2.0,
            "S3 pipelined commit speedup must be ≥2x, got {speedup:.2}x\n{:?}",
            report.points
        );
        // Reads overlap too.
        assert!(report.read_speedup("S3") >= 2.0);
        assert!(report.check_gate().is_ok());
    }

    #[test]
    fn every_backend_improves_or_holds() {
        let report = fig2_pipelined(&tiny());
        assert_eq!(report.points.len(), 6, "3 backends x 2 modes");
        for backend in report.backends() {
            let speedup = report.commit_speedup(&backend);
            assert!(
                speedup >= 1.0,
                "{backend}: pipelining must never hurt, got {speedup:.2}x"
            );
        }
        report.check_gate().unwrap();
    }

    #[test]
    fn api_call_counts_match_between_modes() {
        // Pipelining reorders round trips; it must not change how many API
        // calls the backend bills (batch-capable backends excepted — they
        // batch in both modes only when the engine uses their batch API).
        let config = PipelineConfig {
            backends: vec![BackendKind::S3, BackendKind::Redis],
            ..tiny()
        };
        let report = fig2_pipelined(&config);
        for backend in ["S3", "Redis"] {
            let seq = report.point(backend, "sequential").unwrap().api_calls;
            let pipe = report.point(backend, "pipelined").unwrap().api_calls;
            assert_eq!(seq, pipe, "{backend}: same per-key API calls in both modes");
        }
    }

    #[test]
    fn json_document_round_trips() {
        let config = PipelineConfig {
            backends: vec![BackendKind::Redis],
            commits: 10,
            reads: 10,
            ..PipelineConfig::standard()
        };
        let report = fig2_pipelined(&config);
        let text = report.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("experiment").unwrap().as_str().unwrap(),
            "fig2_pipelined"
        );
        assert_eq!(parsed.get("points").unwrap().as_array().unwrap().len(), 2);
        assert!(parsed
            .get("summary")
            .and_then(|s| s.get("Redis"))
            .and_then(|r| r.get("commit"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn table_has_one_row_per_point() {
        let config = PipelineConfig {
            backends: vec![BackendKind::DynamoDb],
            commits: 5,
            reads: 5,
            ..PipelineConfig::standard()
        };
        let report = fig2_pipelined(&config);
        assert_eq!(report.table().len(), report.points.len());
    }
}
