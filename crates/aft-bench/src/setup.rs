//! Shared construction of the simulated environment for every experiment.

use std::sync::Arc;
use std::time::Duration;

use aft_chaos::ChaosSpec;
use aft_cluster::{Cluster, ClusterConfig, DisseminationConfig};
use aft_core::api::AftApi;
use aft_core::{AftNode, NodeConfig};
use aft_faas::{FaasPlatform, PlatformConfig, RetryPolicy};
use aft_net::{AftClient, AftServer};
use aft_storage::io::RetryConfig;
use aft_storage::latency::LatencyProfile;
use aft_storage::{BackendConfig, BackendKind, LatencyMode, SharedStorage};
use aft_types::AftResult;
use aft_workload::{AftDriver, ClientMode, DynamoTxnDriver, PlainDriver};

/// The client→AFT-shim RPC hop at full scale (microseconds): roughly one
/// intra-AZ round trip plus request handling, the source of the ~6 ms fixed
/// overhead between "DynamoDB Batch" and "AFT Batch" in Figure 2 once the
/// commit-record write is added.
pub const SHIM_RPC_PROFILE: LatencyProfile = LatencyProfile {
    median_us: 1_200.0,
    p99_us: 4_000.0,
    per_kb_us: 0.4,
};

/// Benchmark environment: latency scale and experiment sizing.
#[derive(Debug, Clone, Copy)]
pub struct BenchEnv {
    /// Global latency scale factor applied to every simulated service.
    pub scale: f64,
    /// Requests per client for latency-style experiments.
    pub requests_per_client: usize,
    /// Whether the fast (smoke-test) mode is active.
    pub fast: bool,
}

impl BenchEnv {
    /// Reads the environment variables described in the crate docs.
    pub fn from_env() -> Self {
        let fast = std::env::var("AFT_BENCH_FAST").is_ok();
        let scale = std::env::var("AFT_BENCH_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.1);
        let requests_per_client = std::env::var("AFT_BENCH_REQUESTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if fast { 30 } else { 200 });
        BenchEnv {
            scale,
            requests_per_client,
            fast,
        }
    }

    /// A tiny environment for unit tests of the harness itself: zero latency.
    pub fn test() -> Self {
        BenchEnv {
            scale: 0.0,
            requests_per_client: 10,
            fast: true,
        }
    }

    /// Scales an experiment size down in fast mode.
    pub fn sized(&self, normal: usize, fast: usize) -> usize {
        if self.fast {
            fast
        } else {
            normal
        }
    }

    /// Scales a duration down in fast mode.
    pub fn timed(&self, normal: Duration, fast: Duration) -> Duration {
        if self.fast {
            fast
        } else {
            normal
        }
    }

    /// The latency mode matching this environment (virtual when scale is 0).
    pub fn mode(&self) -> LatencyMode {
        if self.scale == 0.0 {
            LatencyMode::Virtual
        } else {
            LatencyMode::Sleep
        }
    }

    /// Builds a storage backend of the given kind.
    pub fn storage(&self, kind: BackendKind, seed: u64) -> SharedStorage {
        aft_storage::make_backend(BackendConfig {
            kind,
            mode: self.mode(),
            scale: self.scale,
            seed,
            redis_shards: 2,
            stripes: aft_storage::DEFAULT_STRIPES,
        })
    }

    /// Builds an AFT node over `storage`.
    pub fn node(&self, storage: SharedStorage, caching: bool, seed: u64) -> Arc<AftNode> {
        let config = NodeConfig {
            data_cache_bytes: if caching { 256 * 1024 * 1024 } else { 0 },
            rng_seed: seed,
            ..NodeConfig::default()
        }
        .with_rpc_latency(SHIM_RPC_PROFILE, self.mode(), self.scale);
        AftNode::new(config, storage).expect("node construction only fails on storage errors")
    }

    /// The node configuration template used for cluster experiments.
    pub fn node_template(&self, caching: bool) -> NodeConfig {
        NodeConfig {
            data_cache_bytes: if caching { 256 * 1024 * 1024 } else { 0 },
            ..NodeConfig::default()
        }
        .with_rpc_latency(SHIM_RPC_PROFILE, self.mode(), self.scale)
    }

    /// Builds a multi-node AFT cluster over `storage`.
    pub fn cluster(&self, storage: SharedStorage, nodes: usize, caching: bool) -> Arc<Cluster> {
        let config = ClusterConfig {
            initial_nodes: nodes,
            node_template: self.node_template(caching),
            dissemination: DisseminationConfig::all_to_all()
                .with_interval(Duration::from_millis(if self.fast { 20 } else { 100 })),
            replacement_delay: Duration::ZERO,
            ..ClusterConfig::default()
        };
        Cluster::new(config, storage).expect("cluster construction")
    }

    /// Builds the simulated FaaS platform.
    pub fn platform(&self) -> Arc<FaasPlatform> {
        let mut config = PlatformConfig::aws_like(self.scale);
        config.latency_mode = self.mode();
        FaasPlatform::new(config)
    }

    /// The retry policy the simulated clients use.
    pub fn retry(&self) -> RetryPolicy {
        RetryPolicy::with_attempts(8)
    }

    /// Builds an AFT driver over a fresh single node on a fresh backend.
    pub fn aft_driver(&self, kind: BackendKind, caching: bool, seed: u64) -> AftDriver {
        let storage = self.storage(kind, seed);
        let node = self.node(storage, caching, seed ^ 0xA57);
        AftDriver::single_node(node, self.platform(), self.retry())
            .with_label(aft_label(kind, caching))
    }

    /// Builds a Plain driver over a fresh backend.
    pub fn plain_driver(&self, kind: BackendKind, seed: u64) -> PlainDriver {
        PlainDriver::new(self.storage(kind, seed), self.platform(), self.retry())
    }

    /// Builds a DynamoDB-transaction-mode driver over a fresh table.
    pub fn dynamo_txn_driver(&self, seed: u64) -> DynamoTxnDriver {
        let table = aft_storage::SimDynamo::with_profile(
            aft_storage::ServiceProfile::dynamodb(),
            aft_storage::LatencyModel::new(self.mode(), self.scale),
            seed,
        );
        DynamoTxnDriver::new(table.transaction_mode(), self.platform(), self.retry())
    }
}

/// The one way experiments stand a cluster up as a networked service:
/// every knob of the loopback endpoint — server thread model and worker
/// pool, client pool/retry/chaos — in a single options struct, so
/// `fig8_service`, `fig10_recovery`, and future benches configure the
/// service identically (`ServeOptions { workers: 8, ..Default::default() }`
/// style).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Server worker-pool size.
    pub workers: usize,
    /// Server thread model: the readiness-driven event loop (default) or
    /// the thread-per-connection baseline.
    pub event_driven: bool,
    /// Connection slots preallocated in the event loop's slab (sizing hint
    /// for high-connection sweeps; the slab grows beyond it).
    pub slab_capacity: usize,
    /// Server worker-queue capacity (per-socket backpressure threshold).
    pub queue_capacity: usize,
    /// Server admission limit: queue depth beyond which new requests get a
    /// typed `Overloaded` rejection (`0` disables).
    pub admission_limit: usize,
    /// Server queue-age deadline beyond which requests are shed unexecuted
    /// (`ZERO` disables).
    pub queue_deadline: Duration,
    /// Per-connection fair queuing on the server's worker queue.
    pub fair_queuing: bool,
    /// Client connection-pool size.
    pub pool_size: usize,
    /// Client transport retry/backoff budget.
    pub retry: RetryConfig,
    /// Optional unified fault schedule; the client-side connection layer
    /// consumes its `net` leg (other legs are free for the experiment to
    /// wire into storage/platform injectors from the same seed).
    pub chaos: Option<ChaosSpec>,
    /// Client UUID seed.
    pub seed: u64,
    /// Keep the client-side ack log (experiments verify acks against the
    /// durable commit set).
    pub record_acks: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            event_driven: true,
            slab_capacity: 1_024,
            queue_capacity: 1_024,
            admission_limit: 0,
            queue_deadline: Duration::ZERO,
            fair_queuing: false,
            pool_size: 4,
            retry: RetryConfig::default(),
            chaos: None,
            seed: 0xAF7_11E7,
            record_acks: true,
        }
    }
}

impl ServeOptions {
    /// Overrides the server worker-pool size.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the client connection-pool size.
    pub fn pool_size(mut self, pool_size: usize) -> Self {
        self.pool_size = pool_size;
        self
    }

    /// Enables the full overload-protection stack: admission control at
    /// `admission_limit`, shedding past `queue_deadline`, and per-client
    /// fair queuing.
    pub fn overload_protection(mut self, admission_limit: usize, queue_deadline: Duration) -> Self {
        self.admission_limit = admission_limit;
        self.queue_deadline = queue_deadline;
        self.fair_queuing = true;
        self
    }

    /// Overrides the client UUID seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A served deployment kept alive behind a networked driver: dropping the
/// handle shuts the server down.
pub struct ServiceHandle {
    /// The loopback server fronting the cluster.
    pub server: AftServer,
    /// The SDK client the driver runs through.
    pub client: Arc<AftClient>,
}

/// Serves `cluster` on an ephemeral loopback port and connects a client —
/// the shared construction used by `fig8_service`, the networked
/// `fig8_distributed` variant, and the recovery matrix's network-fault
/// trials.
pub fn serve_cluster(cluster: &Arc<Cluster>, options: &ServeOptions) -> AftResult<ServiceHandle> {
    let server = AftServer::builder()
        .workers(options.workers)
        .event_driven(options.event_driven)
        .slab_capacity(options.slab_capacity)
        .queue_capacity(options.queue_capacity)
        .admission_limit(options.admission_limit)
        .queue_deadline(options.queue_deadline)
        .fair_queuing(options.fair_queuing)
        .serve(Arc::clone(cluster), "127.0.0.1:0")?;
    let mut client = AftClient::builder()
        .pool_size(options.pool_size)
        .retry(options.retry)
        .rng_seed(options.seed)
        .record_acks(options.record_acks);
    if let Some(chaos) = options.chaos.clone() {
        client = client.chaos_spec(chaos);
    }
    let client = client.connect(server.local_addr())?;
    Ok(ServiceHandle { server, client })
}

impl BenchEnv {
    /// Builds the AFT driver for `cluster` in the given [`ClientMode`]:
    /// in-process drivers call the router directly, networked drivers cross
    /// a real loopback socket (the returned handle keeps the server alive).
    pub fn cluster_driver(
        &self,
        cluster: &Arc<Cluster>,
        mode: ClientMode,
        options: &ServeOptions,
    ) -> (AftDriver, Option<ServiceHandle>) {
        match mode {
            ClientMode::InProcess => (
                AftDriver::clustered(Arc::clone(cluster), self.platform(), self.retry()),
                None,
            ),
            ClientMode::Networked => {
                let handle = serve_cluster(cluster, options)
                    .expect("serving a cluster on loopback only fails when bind is refused");
                let api: Arc<dyn AftApi> = Arc::clone(&handle.client) as Arc<dyn AftApi>;
                let driver = AftDriver::from_api(api, self.platform(), self.retry());
                (driver, Some(handle))
            }
        }
    }
}

/// The label used for AFT configurations in the figures ("AFT-D Caching" etc.).
pub fn aft_label(kind: BackendKind, caching: bool) -> String {
    let backend = match kind {
        BackendKind::DynamoDb => "AFT-D",
        BackendKind::Redis => "AFT-R",
        BackendKind::S3 => "AFT-S3",
        BackendKind::Memory => "AFT-Mem",
        BackendKind::ShardedService => "AFT-Svc",
    };
    if caching {
        format!("{backend} Caching")
    } else {
        format!("{backend} No Caching")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aft_workload::{run_closed_loop, RequestDriver, RunConfig, WorkloadConfig};

    #[test]
    fn env_defaults_are_reasonable() {
        let env = BenchEnv::from_env();
        assert!(env.scale >= 0.0);
        assert!(env.requests_per_client > 0);
        let test_env = BenchEnv::test();
        assert_eq!(test_env.mode(), LatencyMode::Virtual);
        assert_eq!(test_env.sized(100, 7), 7);
    }

    #[test]
    fn drivers_built_by_the_env_execute_requests() {
        let env = BenchEnv::test();
        let workload = WorkloadConfig::standard()
            .with_keys(50)
            .with_value_size(128);
        for driver in [
            Box::new(env.aft_driver(BackendKind::DynamoDb, true, 1)) as Box<dyn RequestDriver>,
            Box::new(env.plain_driver(BackendKind::Redis, 2)) as Box<dyn RequestDriver>,
            Box::new(env.dynamo_txn_driver(3)) as Box<dyn RequestDriver>,
        ] {
            let result = run_closed_loop(
                driver.as_ref(),
                &RunConfig::new(workload.clone()).with_requests(5),
            )
            .unwrap();
            assert_eq!(result.completed, 5, "driver {}", driver.name());
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(aft_label(BackendKind::DynamoDb, true), "AFT-D Caching");
        assert_eq!(aft_label(BackendKind::Redis, false), "AFT-R No Caching");
    }
}
