//! Runs the `fig7_throughput_scaling` sweep (clients × stripes × commit
//! batching over the memory backend), prints the result table, and writes
//! machine-readable `BENCH_throughput.json`.
//!
//! Usage:
//!
//! ```text
//! fig7_throughput_scaling [--out PATH] [--baseline PATH] [--max-regression PCT]
//!                         [--write-baseline PATH]
//! ```
//!
//! * `--out PATH` — where to write the report JSON (default
//!   `BENCH_throughput.json`).
//! * `--baseline PATH` — compare against a previous report; exit non-zero if
//!   single-client throughput regressed more than `--max-regression` percent
//!   (default 30) or if any read-atomicity anomaly was observed.
//! * `--write-baseline PATH` — additionally write this run's report to PATH,
//!   for deliberate re-baselining.
//! * `AFT_BENCH_FAST=1` — run the sub-minute CI sweep instead of the full
//!   one.

use aft_bench::scaling::{fig7_throughput_scaling, ScalingConfig};
use aft_bench::Json;

fn main() {
    let mut out_path = "BENCH_throughput.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut max_regression = 0.30;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag_value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[*i - 1]);
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--out" => out_path = flag_value(&mut i),
            "--baseline" => baseline_path = Some(flag_value(&mut i)),
            "--write-baseline" => write_baseline = Some(flag_value(&mut i)),
            "--max-regression" => {
                max_regression = flag_value(&mut i).parse::<f64>().unwrap_or_else(|e| {
                    eprintln!("invalid --max-regression: {e}");
                    std::process::exit(2);
                }) / 100.0;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let fast = std::env::var("AFT_BENCH_FAST").is_ok();
    let config = if fast {
        ScalingConfig::fast()
    } else {
        ScalingConfig::standard()
    };
    println!(
        "fig7_throughput_scaling (fast={fast}): clients {:?}, {} requests/client\n",
        config.client_counts, config.requests_per_client
    );

    let report = fig7_throughput_scaling(&config);
    report.table().print();
    println!(
        "summary: single-client {:.0} ops/s, multi-client speedup {:.2}x, {} anomalies",
        report.single_client_ops(),
        report.multi_client_speedup(),
        report.total_anomalies()
    );

    let rendered = report.to_json().render();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote baseline {path}");
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("failed to read baseline {path}: {e}");
            std::process::exit(1);
        });
        let baseline = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("failed to parse baseline {path}: {e}");
            std::process::exit(1);
        });
        match report.check_against_baseline(&baseline, max_regression) {
            Ok(message) => println!("baseline check OK: {message}"),
            Err(message) => {
                eprintln!("baseline check FAILED: {message}");
                std::process::exit(1);
            }
        }
    }
}
