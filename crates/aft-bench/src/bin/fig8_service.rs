//! Runs the `fig8_service` networked-service sweep over real loopback
//! sockets (throughput/latency per client count, plus a connection-chaos
//! leg), prints the table, writes `BENCH_service.json`, and gates on the
//! service invariants: zero read-atomicity anomalies, zero lost
//! acknowledged commits, zero clean-leg failures, working `Ping`/`Stats`.
//!
//! Usage:
//!
//! ```text
//! fig8_service [--out PATH]
//! ```
//!
//! * `--out PATH` — where to write the report JSON (default
//!   `BENCH_service.json`).
//! * `AFT_BENCH_FAST=1` — run the sub-minute CI sweep instead of the full
//!   one.
//! * `AFT_SERVICE_CONNS=256,1024` — override the connection-scale leg's
//!   resident-connection counts (comma-separated).

use aft_bench::service::{fig8_service, ServiceConfig};

fn main() {
    let mut out_path = "BENCH_service.json".to_owned();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for --out");
                        std::process::exit(2);
                    })
                    .clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let fast = std::env::var("AFT_BENCH_FAST").is_ok();
    let mut config = if fast {
        ServiceConfig::fast()
    } else {
        ServiceConfig::standard()
    };
    if let Ok(conns) = std::env::var("AFT_SERVICE_CONNS") {
        let counts: Vec<usize> = conns
            .split(',')
            .map(|c| {
                c.trim().parse().unwrap_or_else(|_| {
                    eprintln!("AFT_SERVICE_CONNS: {c:?} is not a connection count");
                    std::process::exit(2);
                })
            })
            .collect();
        if !counts.is_empty() {
            config.conn_counts = counts;
        }
    }
    println!(
        "fig8_service (fast={fast}): {} nodes, {} workers, clients {:?}, \
         {} requests/client, chaos reset rate {:.0}%, connection scale {:?}\n",
        config.nodes,
        config.workers,
        config.client_counts,
        config.requests_per_client,
        config.reset_rate * 100.0,
        config.conn_counts,
    );

    let report = fig8_service(&config);
    report.table().print();
    report.conn_table().print();

    if let Err(e) = std::fs::write(&out_path, report.to_json().render()) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    match report.check_gate() {
        Ok(message) => println!("service gate OK: {message}"),
        Err(message) => {
            eprintln!("service gate FAILED: {message}");
            std::process::exit(1);
        }
    }
}
