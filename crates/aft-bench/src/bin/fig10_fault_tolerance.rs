//! Regenerates Figure 10: the throughput timeline of a 4-node cluster across
//! a node failure and the replacement node joining.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig10_fault_tolerance(&env).print();
}
