//! Regenerates Figure 9: throughput with and without global garbage
//! collection, and the rate of superseded-transaction deletion.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig9_gc(&env).print();
}
