//! Regenerates Figure 5: latency across read/write ratios (10 IOs per
//! transaction) for AFT over DynamoDB and Redis.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig5_rw_ratio(&env).print();
}
