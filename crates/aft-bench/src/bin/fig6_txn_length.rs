//! Regenerates Figure 6: latency as the composition length grows from 1 to
//! 10 functions, for AFT over DynamoDB and Redis.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig6_txn_length(&env).print();
}
