//! Regenerates Figure 8: multi-node throughput (40 clients per node) against
//! ideal linear scaling.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig8_distributed(&env).print();
}
