//! Regenerates Figure 3 (end-to-end latency over S3 / DynamoDB / Redis) and
//! Table 2 (consistency anomaly counts).

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    let (latency, anomalies) = experiments::fig3_and_table2(&env);
    latency.print();
    anomalies.print();
}
