//! Regenerates Figure 2: IO latency of 1/5/10 writes to DynamoDB, directly
//! and through AFT, sequential and batched.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig2_io_latency(&env).print();
}
