//! Regenerates Figure 7: single-node throughput as a function of the number
//! of parallel closed-loop clients.

use aft_bench::{experiments, BenchEnv};

fn main() {
    let env = BenchEnv::from_env();
    experiments::fig7_single_node(&env).print();
}
