//! Runs the `fig11_overload` sweep (offered load at 1×–8× measured
//! capacity against the full overload-protection stack, plus a chaos leg
//! at 4×), prints the result table, and writes machine-readable
//! `BENCH_overload.json`.
//!
//! Usage:
//!
//! ```text
//! fig11_overload [--out PATH] [--seed N] [--skip-gate]
//! ```
//!
//! * `--out PATH` — where to write the report JSON (default
//!   `BENCH_overload.json`).
//! * `--seed N` — override the base seed (replay a failing CI run locally:
//!   copy the seed the CI log prints). One seed drives the storage
//!   latency draws, the per-point deployments, and the chaos leg's
//!   connection faults.
//! * `--skip-gate` — do not fail on anomalies / lost commits / goodput
//!   collapse (exploration runs only; CI keeps the gate on).
//! * `AFT_BENCH_FAST=1` — run the trimmed sweep (1× and 4× only, shorter
//!   windows).
//!
//! Unlike the virtual-clock recovery matrix, this sweep runs on *real*
//! worker-thread sleeps (`LatencyMode::Sleep`): saturation is only real
//! when a request costs real worker time, so the standard run takes a few
//! tens of seconds of wall clock.

use aft_bench::overload::{fig11_overload, OverloadConfig};

fn main() {
    let mut out_path = "BENCH_overload.json".to_owned();
    let mut gate = true;
    let mut seed_override: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for --out");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--seed" => {
                i += 1;
                seed_override =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("missing or invalid value for --seed");
                        std::process::exit(2);
                    }));
            }
            "--skip-gate" => gate = false,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let fast = std::env::var("AFT_BENCH_FAST").is_ok();
    let mut config = if fast {
        OverloadConfig::fast()
    } else {
        OverloadConfig::standard()
    };
    if let Some(seed) = seed_override {
        config.seed = seed;
    }
    println!(
        "fig11_overload (fast={fast}, seed={:#x}): multipliers {:?} over a \
         {}-node / {}-worker deployment, admission limit {}, queue deadline \
         {:?}, {:?} per point\n",
        config.seed,
        config.multipliers,
        config.nodes,
        config.workers,
        config.admission_limit,
        config.queue_deadline,
        config.point_duration
    );

    let report = fig11_overload(&config);
    report.table().print();

    let rendered = report.to_json().render();
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if gate {
        match report.check_gate() {
            Ok(message) => println!("gate OK: {message}"),
            Err(message) => {
                // Fast-mode detection is presence-based (`is_ok()`), so the
                // full-sweep replay must leave the variable unset entirely.
                let env_prefix = if fast { "AFT_BENCH_FAST=1 " } else { "" };
                eprintln!(
                    "gate FAILED: {message}\nreplay locally with: \
                     {env_prefix}fig11_overload --seed {}",
                    config.seed
                );
                std::process::exit(1);
            }
        }
    }
}
