//! Runs every experiment in the evaluation back to back (Figures 2-10,
//! Table 2, and the repo's own throughput-scaling sweep) and prints each
//! table. Set `AFT_BENCH_FAST=1` for a quick pass.

use aft_bench::recovery::RecoveryConfig;
use aft_bench::{experiments, recovery, scaling, BenchEnv, ScalingConfig};

fn main() {
    let env = BenchEnv::from_env();
    println!(
        "AFT reproduction — full evaluation (scale={}, fast={})\n",
        env.scale, env.fast
    );
    experiments::fig2_io_latency(&env).print();
    let (fig3, table2) = experiments::fig3_and_table2(&env);
    fig3.print();
    table2.print();
    experiments::fig4_caching_skew(&env).print();
    experiments::fig5_rw_ratio(&env).print();
    experiments::fig6_txn_length(&env).print();
    experiments::fig7_single_node(&env).print();
    experiments::fig8_distributed(&env).print();
    experiments::fig9_gc(&env).print();
    experiments::fig10_fault_tolerance(&env).print();
    let recovery_config = if env.fast {
        RecoveryConfig::fast()
    } else {
        RecoveryConfig::standard()
    };
    recovery::fig10_recovery(&recovery_config).table().print();
    let scaling_config = if env.fast {
        ScalingConfig::fast()
    } else {
        ScalingConfig::standard()
    };
    scaling::fig7_throughput_scaling(&scaling_config)
        .table()
        .print();
}
